//! Fleet fault-injection end-to-end suite — the headline guarantee of the
//! coordinator: a campaign whose workers are **killed mid-shard** and
//! whose shards are re-issued produces a merged sketch state
//! *byte-identical* to an unpartitioned single-process run.
//!
//! These tests spawn real `statvs serve` child processes (via
//! `CARGO_BIN_EXE_statvs`) on ephemeral loopback ports, drive them with
//! the real coordinator, and inject the fault with `SIGKILL` — the same
//! thing a dying fleet machine looks like from the coordinator's side.
//! Determinism makes the assertion possible at all: every sample is a
//! pure function of `(seed, index)`, so the retried shard reproduces the
//! dead worker's lost work bit for bit, and the merged histogram can be
//! compared byte-for-byte against a no-fault reference.

use fleet::coordinator::{Coordinator, FleetConfig, FleetEvent, FleetSpec};
use fleet::{CampaignStore, HttpClient, LocalWorker};
use serve::pool::Engine;
use serve::store::ExperimentSpec;
use stats::artifact::{section_tag, Journal};
use stats::sink::{MergeableSink, WelfordSink};
use stats::Welford;
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use vscore::mc::plan_shards;

/// The compiled `statvs` binary under test.
fn binary() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_statvs"))
}

/// Coordinator tuned for fast fault detection on loopback.
fn config() -> FleetConfig {
    FleetConfig {
        max_attempts: 6,
        shard_deadline: Duration::from_secs(120),
        poll_initial: Duration::from_millis(25),
        poll_max: Duration::from_millis(200),
        max_poll_faults: 2,
        client: HttpClient {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_secs(10),
        },
    }
}

/// The in-process no-fault reference for a campaign spec: one
/// `run_streaming_range` over the whole index range, no HTTP, no shards.
fn reference(spec: &FleetSpec) -> (Vec<u8>, Welford) {
    let engine = Engine::new().expect("reference engine builds");
    let template = engine.template(&spec.circuit).expect("template exists");
    let result = engine
        .execute(&ExperimentSpec {
            circuit: spec.circuit.clone(),
            analysis: spec
                .analysis
                .clone()
                .unwrap_or_else(|| template.analyses[0].to_string()),
            seed: spec.seed,
            offset: 0,
            len: spec.total,
            total: Some(spec.total),
            want_welford: true,
            want_histogram: true,
            want_tdigest: true,
            histogram: spec.histogram.unwrap_or(template.default_histogram),
            tdigest_compression: spec.tdigest_compression.unwrap_or(100.0),
            proposal: (0.0, 1.0),
            threshold: 3.0,
            want_wmoments: false,
            want_whistogram: false,
        })
        .expect("reference run succeeds");
    let moments = WelfordSink::from_bytes(result.welford_bytes.as_ref().unwrap())
        .unwrap()
        .moments();
    (result.histogram_bytes.unwrap(), moments)
}

/// Asserts the pinned exactness contract: histogram bytes identical,
/// Welford count/min/max exact, moments within 1e-12.
fn assert_matches_reference(merged: &fleet::MergedResult, spec: &FleetSpec, label: &str) {
    let (ref_histogram, ref_moments) = reference(spec);
    assert_eq!(
        MergeableSink::to_bytes(merged.histogram.as_ref().unwrap()),
        ref_histogram,
        "{label}: merged histogram bytes diverged from the single-process run"
    );
    assert_eq!(
        merged.observed + merged.failures,
        spec.total as u64,
        "{label}"
    );
    assert_eq!(merged.moments.count(), ref_moments.count(), "{label}");
    assert_eq!(merged.moments.min(), ref_moments.min(), "{label}");
    assert_eq!(merged.moments.max(), ref_moments.max(), "{label}");
    assert!(
        (merged.moments.mean() - ref_moments.mean()).abs() <= 1e-12,
        "{label}: mean {} vs {}",
        merged.moments.mean(),
        ref_moments.mean()
    );
    assert!(
        (merged.moments.variance() - ref_moments.variance()).abs() <= 1e-12,
        "{label}: variance {} vs {}",
        merged.moments.variance(),
        ref_moments.variance()
    );
}

/// THE headline test: two real workers, one killed mid-shard, its shards
/// re-issued — and the merged state is byte-identical to the no-fault,
/// single-process reference anyway.
#[test]
fn killed_worker_is_reissued_and_the_merge_is_byte_identical() {
    // Shards of 1000 sram6t_dc samples take hundreds of milliseconds in a
    // debug build — a wide window to kill a worker mid-shard.
    let spec = FleetSpec {
        circuit: "sram6t_dc".to_string(),
        analysis: Some("dc".to_string()),
        seed: 7,
        total: 6000,
        histogram: Some((0.0, 0.9, 48)),
        tdigest_compression: None,
    };
    let plan = plan_shards(spec.total, 6);

    let mut victim = LocalWorker::spawn(binary(), 2).expect("victim worker boots");
    let survivor = LocalWorker::spawn(binary(), 2).expect("survivor worker boots");
    let victim_addr = victim.addr();
    let coordinator =
        Coordinator::new(vec![victim_addr, survivor.addr()], config()).expect("two workers");

    let (events_tx, events_rx) = mpsc::channel::<FleetEvent>();
    let campaign = {
        let spec = spec.clone();
        let plan = plan.clone();
        std::thread::spawn(move || {
            coordinator.run_shards(&spec, &plan, &mut |event| {
                let _ = events_tx.send(event.clone());
            })
        })
    };

    // Wait until the victim has a shard in flight, give it a moment to be
    // genuinely mid-shard, then kill the process.
    let mut events = Vec::new();
    loop {
        let event = events_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("campaign makes progress");
        let hit = matches!(
            &event,
            FleetEvent::Dispatched { worker, .. } if *worker == victim_addr
        );
        events.push(event);
        if hit {
            break;
        }
    }
    std::thread::sleep(Duration::from_millis(100));
    victim.kill();
    assert!(!victim.is_alive(), "SIGKILL is not negotiable");

    // Drain the remaining events while the campaign finishes.
    events.extend(events_rx.iter());
    let report = campaign
        .join()
        .expect("coordinator thread does not panic")
        .expect("campaign survives the kill");

    // The fault actually happened and was actually handled.
    assert!(
        report.reissues >= 1,
        "killing a worker mid-shard must force at least one re-issue"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, FleetEvent::Retrying { .. })),
        "a retry event must be observed"
    );
    // Every distinct shard completed exactly once in the merge.
    assert_eq!(report.merged.shards, plan.len());

    assert_matches_reference(&report.merged, &spec, "kill/retry campaign");
}

/// Completed `'C'` entries currently journaled in a campaign manifest,
/// read without opening (and thus without ever writing) the file.
fn manifest_entries(manifest: &Path) -> usize {
    let Ok(bytes) = std::fs::read(manifest) else {
        return 0;
    };
    let Ok(journal) = Journal::from_bytes(&bytes) else {
        return 0;
    };
    journal
        .sections
        .iter()
        .filter(|s| section_tag(s) == Some(b'C'))
        .count()
}

/// Resume equivalence, end to end: a real `statvs fleet` coordinator
/// *process* is `SIGKILL`ed mid-campaign after journaling at least one
/// completed shard, then the campaign is resumed from its manifest.
/// Restored shards must not be re-dispatched, and the merged result must
/// be byte-identical to the no-fault single-process reference — a
/// crash costs wall-clock, never correctness.
#[test]
fn sigkilled_campaign_resumes_without_redispatch_and_merges_identically() {
    let spec = FleetSpec {
        circuit: "sram6t_dc".to_string(),
        analysis: Some("dc".to_string()),
        seed: 13,
        total: 6000,
        histogram: Some((0.0, 0.9, 48)),
        tdigest_compression: None,
    };
    const SHARDS: usize = 6;
    let plan = plan_shards(spec.total, SHARDS);

    // The workers are owned by the *test*, not by the doomed coordinator
    // child — killing the coordinator must not take the fleet down.
    let worker_a = LocalWorker::spawn(binary(), 2).expect("worker a boots");
    let worker_b = LocalWorker::spawn(binary(), 2).expect("worker b boots");

    let dir: PathBuf =
        std::env::temp_dir().join(format!("statvs_resume_e2e_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = dir.join("manifest.svaf");

    // First life: the real CLI, journaling into --artifact-dir.
    let mut child = std::process::Command::new(binary())
        .args([
            "fleet",
            "--circuit",
            "sram6t_dc",
            "--analysis",
            "dc",
            "--samples",
            "6000",
            "--shards",
            "6",
            "--seed",
            "13",
            "--histogram",
            "0.0:0.9:48",
            "--worker",
            &worker_a.addr().to_string(),
            "--worker",
            &worker_b.addr().to_string(),
            "--artifact-dir",
        ])
        .arg(&dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("fleet coordinator child spawns");

    // Wait for at least one completed shard to reach the manifest, then
    // SIGKILL the coordinator — mid-campaign, with shards in flight.
    let deadline = Instant::now() + Duration::from_secs(120);
    while manifest_entries(&manifest) == 0 {
        if let Some(status) = child.try_wait().expect("child pollable") {
            panic!("coordinator finished ({status}) before it could be killed");
        }
        assert!(
            Instant::now() < deadline,
            "no shard was journaled within the deadline"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    child.kill().expect("SIGKILL the coordinator");
    let _ = child.wait();
    let journaled = manifest_entries(&manifest);
    assert!(journaled >= 1, "the kill window saw a journaled shard");
    assert!(
        journaled < SHARDS,
        "the campaign must die unfinished for resume to mean anything"
    );

    // Second life: resume from the manifest. Completed shards come back
    // from disk; only the remainder is dispatched.
    let mut store = CampaignStore::open(&dir, &spec).expect("store reopens");
    let coordinator =
        Coordinator::new(vec![worker_a.addr(), worker_b.addr()], config()).expect("two workers");
    let mut events: Vec<FleetEvent> = Vec::new();
    let report = coordinator
        .run_shards_resumable(&spec, &plan, &mut store, &mut |event| {
            events.push(event.clone());
        })
        .expect("resumed campaign succeeds");

    // Every journaled shard was restored, none of them re-dispatched.
    assert_eq!(report.restored, journaled, "all journaled shards restore");
    let restored: Vec<_> = events
        .iter()
        .filter_map(|e| match e {
            FleetEvent::Restored { shard } => Some(*shard),
            _ => None,
        })
        .collect();
    assert_eq!(restored.len(), journaled);
    for shard in &restored {
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, FleetEvent::Dispatched { shard: s, .. } if s == shard)),
            "restored shard {shard} was re-dispatched"
        );
    }
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, FleetEvent::RestoreSkipped { .. })),
        "atomically written artifacts must restore cleanly"
    );
    assert_eq!(report.merged.shards, plan.len());

    // The headline: crash + resume lands on the exact single-process
    // bytes, indistinguishable from a campaign that never died.
    assert_matches_reference(&report.merged, &spec, "killed+resumed campaign");

    let _ = std::fs::remove_dir_all(&dir);
}

/// No-fault determinism: different worker counts and different partitions
/// of the same campaign give byte-identical merged histograms and
/// rounding-identical moments.
#[test]
fn worker_count_and_partition_do_not_change_the_answer() {
    let spec = FleetSpec {
        circuit: "device_idsat".to_string(),
        analysis: None,
        seed: 99,
        total: 400,
        histogram: None,
        tdigest_compression: None,
    };

    let a = LocalWorker::spawn(binary(), 2).expect("worker a boots");
    let b = LocalWorker::spawn(binary(), 2).expect("worker b boots");

    // Campaign one: a single worker, 3 shards.
    let solo = Coordinator::new(vec![a.addr()], config()).unwrap();
    let solo_report = solo
        .run_shards(&spec, &plan_shards(spec.total, 3), &mut |_| {})
        .expect("solo campaign succeeds");

    // Campaign two: both workers, 5 shards — a different partition of the
    // same index space.
    let duo = Coordinator::new(vec![a.addr(), b.addr()], config()).unwrap();
    let duo_report = duo
        .run_shards(&spec, &plan_shards(spec.total, 5), &mut |_| {})
        .expect("duo campaign succeeds");

    assert_matches_reference(&solo_report.merged, &spec, "1 worker / 3 shards");
    assert_matches_reference(&duo_report.merged, &spec, "2 workers / 5 shards");
    assert_eq!(
        MergeableSink::to_bytes(solo_report.merged.histogram.as_ref().unwrap()),
        MergeableSink::to_bytes(duo_report.merged.histogram.as_ref().unwrap()),
        "the two campaigns disagreed with each other"
    );
}
