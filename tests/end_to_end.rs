//! Cross-crate integration tests: the full statistical modeling flow
//! through the facade crate, at reduced sample counts.

use statvs::circuits::cells::InverterSizing;
use statvs::circuits::delay::{DelayBench, GateKind};
use statvs::mosfet::Geometry;
use statvs::stats::{Sampler, Summary};
use statvs::vscore::mc::{device_metric_samples, variances, McFactory};
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};
use statvs::vscore::sensitivity::{BsimBuilder, VsBuilder};

fn quick_config() -> ExtractionConfig {
    ExtractionConfig {
        mc_samples: 500,
        ..ExtractionConfig::default()
    }
}

#[test]
fn extraction_to_device_validation() {
    let report = extract_statistical_vs_model(&quick_config()).expect("pipeline");
    // Statistical VS model reproduces the kit's device-level σ at a
    // geometry in the extraction set.
    let geom = Geometry::from_nm(600.0, 40.0);
    let vdd = report.config.vdd;
    let mut sampler = Sampler::from_seed(99);
    let n = 1200;

    let vs_builder = VsBuilder {
        params: report.nmos.fit.params,
        polarity: statvs::mosfet::Polarity::Nmos,
        geom,
    };
    let kit_builder = BsimBuilder {
        params: report.kit.nmos.params,
        polarity: statvs::mosfet::Polarity::Nmos,
        geom,
    };
    let v_vs = variances(&device_metric_samples(
        &vs_builder,
        &report.nmos.extracted,
        vdd,
        n,
        &mut sampler,
    ));
    let v_kit = variances(&device_metric_samples(
        &kit_builder,
        &report.nmos.truth,
        vdd,
        n,
        &mut sampler,
    ));
    for i in 0..2 {
        let ratio = (v_vs[i] / v_kit[i]).sqrt();
        assert!((0.7..1.4).contains(&ratio), "metric {i}: σ ratio = {ratio}");
    }
}

#[test]
fn circuit_level_sigma_agreement() {
    // The headline claim (paper Fig. 5): circuit delay distributions from
    // the statistical VS model match the golden kit.
    let report = extract_statistical_vs_model(&quick_config()).expect("pipeline");
    let sz = InverterSizing::from_nm(600.0, 300.0, 40.0);
    let n = 60;
    let collect = |family: &str| -> Vec<f64> {
        // One elaborated session per family; samples swap devices in place.
        let mut bench: Option<DelayBench> = None;
        (0..n)
            .filter_map(|trial| {
                let mut f = match family {
                    "vs" => McFactory::vs(
                        report.nmos.fit.params,
                        report.pmos.fit.params,
                        report.nmos.extracted,
                        report.pmos.extracted,
                        Sampler::from_seed(500 + trial),
                    ),
                    _ => McFactory::bsim(
                        report.kit.nmos.params,
                        report.kit.pmos.params,
                        report.nmos.truth,
                        report.pmos.truth,
                        Sampler::from_seed(500 + trial),
                    ),
                };
                let b = match bench.as_mut() {
                    Some(b) => {
                        b.resample(&mut f);
                        b
                    }
                    None => bench.insert(DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f)),
                };
                b.measure_delay(2e-12).ok()
            })
            .collect()
    };
    let d_vs = Summary::from_slice(&collect("vs"));
    let d_kit = Summary::from_slice(&collect("bsim"));
    // Means within 25%, sigmas within a factor 2 at these tiny counts.
    assert!(
        (d_vs.mean / d_kit.mean - 1.0).abs() < 0.25,
        "mean delay: vs {} vs kit {}",
        d_vs.mean,
        d_kit.mean
    );
    let sigma_ratio = d_vs.std / d_kit.std;
    assert!(
        (0.5..2.0).contains(&sigma_ratio),
        "sigma ratio = {sigma_ratio}"
    );
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes every subsystem.
    let _ = statvs::numerics::Matrix::identity(2);
    let _ = statvs::stats::Sampler::from_seed(1);
    let _ = statvs::mosfet::Geometry::from_nm(100.0, 40.0);
    let mut c = statvs::spice::Circuit::new();
    let n = c.node("x");
    c.resistor("R1", n, statvs::spice::Circuit::GROUND, 1.0);
    let _ = statvs::circuits::cells::NominalVsFactory;
}
