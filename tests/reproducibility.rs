//! Determinism guarantees: every Monte Carlo path must be reproducible from
//! its seed — a hard requirement for regenerating the paper's tables.

use statvs::mosfet::Geometry;
use statvs::stats::Sampler;
use statvs::vscore::mc::{device_metric_samples, McFactory};
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};
use statvs::vscore::sensitivity::VsBuilder;

fn quick_config() -> ExtractionConfig {
    ExtractionConfig {
        mc_samples: 300,
        geometries: vec![
            Geometry::from_nm(120.0, 40.0),
            Geometry::from_nm(600.0, 40.0),
            Geometry::from_nm(1500.0, 40.0),
        ],
        ..ExtractionConfig::default()
    }
}

#[test]
fn extraction_is_deterministic() {
    let a = extract_statistical_vs_model(&quick_config()).expect("pipeline");
    let b = extract_statistical_vs_model(&quick_config()).expect("pipeline");
    assert_eq!(
        a.nmos.extracted.to_paper_units(),
        b.nmos.extracted.to_paper_units()
    );
    assert_eq!(a.nmos.fit.params.vt0, b.nmos.fit.params.vt0);
    assert_eq!(a.pmos.fit.params.vxo, b.pmos.fit.params.vxo);
}

#[test]
fn device_mc_is_deterministic_per_seed() {
    let builder = VsBuilder {
        params: statvs::mosfet::vs::VsParams::nmos_40nm(),
        polarity: statvs::mosfet::Polarity::Nmos,
        geom: Geometry::from_nm(300.0, 40.0),
    };
    let spec = statvs::mosfet::MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let run = |seed| {
        let mut s = Sampler::from_seed(seed);
        device_metric_samples(&builder, &spec, 0.9, 50, &mut s)
            .iter()
            .map(|m| m.idsat)
            .collect::<Vec<f64>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn circuit_factories_reproduce_netlists() {
    let spec = statvs::mosfet::MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let geom = Geometry::from_nm(300.0, 40.0);
    let bias = statvs::mosfet::Bias {
        vgs: 0.9,
        vds: 0.9,
        vbs: 0.0,
    };
    let draw = |seed| {
        use statvs::circuits::cells::DeviceFactory;
        let mut f = McFactory::vs(
            statvs::mosfet::vs::VsParams::nmos_40nm(),
            statvs::mosfet::vs::VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(seed),
        );
        (f.nmos(geom).ids(bias), f.pmos(geom).ids(bias))
    };
    assert_eq!(draw(42), draw(42));
    assert_ne!(draw(42), draw(43));
}
