//! Markdown link check over the repo-root documentation.
//!
//! CI runs this as its own step so documentation links cannot rot
//! silently: every inline `[text](target)` link in the checked files must
//! point at an existing file (relative targets), a resolvable heading
//! anchor (`#fragment` targets, GitHub slug rules), or be an absolute URL
//! (shape-checked only — CI has no business depending on external hosts
//! being up).

use std::fs;
use std::path::{Path, PathBuf};

/// The documentation surface the check walks. Extend when a new top-level
/// document appears.
const DOCS: &[&str] = &["README.md", "ARCHITECTURE.md", "ROADMAP.md", "CHANGES.md"];

/// Extracts inline markdown link targets, skipping fenced code blocks and
/// inline code spans (example text legitimately contains `](`-ish noise).
fn link_targets(markdown: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut fenced = false;
    for line in markdown.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if fenced {
            continue;
        }
        // Strip inline code spans before scanning for links.
        let mut cleaned = String::with_capacity(line.len());
        let mut in_code = false;
        for c in line.chars() {
            if c == '`' {
                in_code = !in_code;
            } else if !in_code {
                cleaned.push(c);
            }
        }
        let bytes = cleaned.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                let start = i + 2;
                if let Some(rel_end) = cleaned[start..].find(')') {
                    targets.push(cleaned[start..start + rel_end].to_string());
                    i = start + rel_end;
                }
            }
            i += 1;
        }
    }
    targets
}

/// GitHub's heading-anchor slug: lowercase, spaces to hyphens, everything
/// but alphanumerics / hyphens / underscores dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else if c == '-' || c == '_' {
                Some(c)
            } else {
                None
            }
        })
        .collect()
}

/// All heading anchors a markdown file exposes.
fn anchors(markdown: &str) -> Vec<String> {
    let mut fenced = false;
    markdown
        .lines()
        .filter(|line| {
            if line.trim_start().starts_with("```") {
                fenced = !fenced;
                return false;
            }
            !fenced && line.starts_with('#')
        })
        .map(|line| slug(line.trim_start_matches('#')))
        .collect()
}

#[test]
fn root_markdown_links_resolve() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut errors = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let path = root.join(doc);
        let text = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{doc} must exist at the repo root: {e}"));
        for target in link_targets(&text) {
            checked += 1;
            if target.starts_with("http://") || target.starts_with("https://") {
                if !target.contains('.') {
                    errors.push(format!("{doc}: malformed URL `{target}`"));
                }
                continue;
            }
            if target.starts_with("mailto:") || target.is_empty() {
                continue;
            }
            let (file_part, fragment) = match target.split_once('#') {
                Some((f, frag)) => (f, Some(frag)),
                None => (target.as_str(), None),
            };
            // Resolve the file part against the doc's directory (all the
            // checked docs live at the root, so that is the root).
            let resolved: PathBuf = if file_part.is_empty() {
                path.clone()
            } else {
                root.join(file_part)
            };
            if !resolved.exists() {
                errors.push(format!("{doc}: `{target}` -> missing file {file_part}"));
                continue;
            }
            if let Some(frag) = fragment {
                if resolved.extension().is_some_and(|e| e == "md") {
                    let dest = fs::read_to_string(&resolved).expect("readable markdown");
                    if !anchors(&dest).iter().any(|a| a == frag) {
                        errors.push(format!(
                            "{doc}: `{target}` -> no heading anchor `#{frag}` in {}",
                            Path::new(file_part)
                                .file_name()
                                .map_or(doc.to_string(), |f| f.to_string_lossy().into_owned())
                        ));
                    }
                }
            }
        }
    }
    assert!(
        checked > 0,
        "the link extractor found no links at all — extraction is likely broken"
    );
    assert!(
        errors.is_empty(),
        "broken documentation links:\n{}",
        errors.join("\n")
    );
}

#[test]
fn slug_matches_github_rules() {
    assert_eq!(slug(" Crate graph"), "crate-graph");
    assert_eq!(
        slug(" Fleet aggregation (crates `stats` → `vscore`)"),
        "fleet-aggregation-crates-stats--vscore"
    );
    assert_eq!(
        slug(" Session lifecycle (crate `spice`)"),
        "session-lifecycle-crate-spice"
    );
}

#[test]
fn extractor_sees_links_and_skips_code() {
    let md = "see [A](ARCHITECTURE.md) and [B](ROADMAP.md#open-items)\n\
              ```text\nnot [a](link.md)\n```\n\
              `inline [c](code.md)` but [D](README.md)\n";
    let t = link_targets(md);
    assert_eq!(
        t,
        vec!["ARCHITECTURE.md", "ROADMAP.md#open-items", "README.md"]
    );
}
