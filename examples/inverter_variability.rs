//! Circuit-level Monte Carlo: delay variability of a fanout-of-3 inverter.
//!
//! Builds the paper's Fig. 5 workload at a reduced sample count and prints
//! the delay distribution from both the statistical VS model and the golden
//! kit, plus a textual histogram.
//!
//! Run with `cargo run --release --example inverter_variability`.

use statvs::circuits::cells::InverterSizing;
use statvs::circuits::delay::{DelayBench, GateKind};
use statvs::stats::histogram::Histogram;
use statvs::stats::Summary;
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};

const N_SAMPLES: usize = 150;
const VDD: f64 = 0.9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExtractionConfig {
        mc_samples: 600,
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;
    let sz = InverterSizing::from_nm(600.0, 300.0, 40.0);

    for family in ["vs (statistical)", "bsim (golden kit)"] {
        let mut delays = Vec::with_capacity(N_SAMPLES);
        // One elaborated bench per family: trials swap freshly drawn
        // devices into the live session instead of rebuilding the netlist.
        let mut bench: Option<DelayBench> = None;
        for trial in 0..N_SAMPLES {
            // One independent mismatch draw per transistor per trial.
            let mut factory = if family.starts_with("vs") {
                statvs::vscore::mc::McFactory::vs(
                    report.nmos.fit.params,
                    report.pmos.fit.params,
                    report.nmos.extracted,
                    report.pmos.extracted,
                    statvs::stats::Sampler::from_seed(100 + trial as u64),
                )
            } else {
                statvs::vscore::mc::McFactory::bsim(
                    report.kit.nmos.params,
                    report.kit.pmos.params,
                    report.nmos.truth,
                    report.pmos.truth,
                    statvs::stats::Sampler::from_seed(100 + trial as u64),
                )
            };
            let b = match bench.as_mut() {
                Some(b) => {
                    b.resample(&mut factory);
                    b
                }
                None => bench.insert(DelayBench::fo3(GateKind::Inverter, sz, VDD, &mut factory)),
            };
            let dt = b.default_dt();
            delays.push(b.measure_delay(dt)?);
        }
        let s = Summary::from_slice(&delays);
        println!(
            "\n{family}: mean {:.2} ps, σ {:.3} ps ({:.1}% of mean), skew {:+.2}",
            s.mean * 1e12,
            s.std * 1e12,
            100.0 * s.std / s.mean,
            s.skewness
        );
        // ASCII histogram.
        let h = Histogram::from_data(&delays, 12);
        let max_count = *h.counts().iter().max().unwrap_or(&1) as f64;
        for (i, &c) in h.counts().iter().enumerate() {
            let bar = "#".repeat((40.0 * c as f64 / max_count).round() as usize);
            println!("  {:6.2} ps | {bar}", h.bin_center(i) * 1e12);
        }
    }
    Ok(())
}
