//! Circuit-level Monte Carlo: delay variability of a fanout-of-3 inverter.
//!
//! Builds the paper's Fig. 5 workload at a reduced sample count and prints
//! the delay distribution from both the statistical VS model and the golden
//! kit, plus a textual histogram.
//!
//! Run with `cargo run --release --example inverter_variability`.

use statvs::circuits::cells::InverterSizing;
use statvs::circuits::delay::{DelayBench, GateKind};
use statvs::stats::histogram::Histogram;
use statvs::stats::{Sampler, Summary};
use statvs::vscore::mc::{McFactory, ParallelRunner};
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};

const N_SAMPLES: usize = 150;
const VDD: f64 = 0.9;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExtractionConfig {
        mc_samples: 600,
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;
    let sz = InverterSizing::from_nm(600.0, 300.0, 40.0);

    for family in ["vs (statistical)", "bsim (golden kit)"] {
        // A factory template per family; each Monte Carlo sample re-arms it
        // with that sample's deterministically derived stream.
        let template = if family.starts_with("vs") {
            McFactory::vs(
                report.nmos.fit.params,
                report.pmos.fit.params,
                report.nmos.extracted,
                report.pmos.extracted,
                Sampler::from_seed(0),
            )
        } else {
            McFactory::bsim(
                report.kit.nmos.params,
                report.kit.pmos.params,
                report.nmos.truth,
                report.pmos.truth,
                Sampler::from_seed(0),
            )
        };
        // Shard samples across every available core: each worker
        // elaborates its own bench once, then swaps freshly drawn devices
        // into the live session per sample instead of rebuilding netlists.
        let outcome = ParallelRunner::new(100).run_scalar(
            N_SAMPLES,
            |_, setup| {
                let mut f = template.clone();
                f.set_sampler(setup.clone());
                Ok::<_, statvs::spice::SpiceError>(DelayBench::fo3(
                    GateKind::Inverter,
                    sz,
                    VDD,
                    &mut f,
                ))
            },
            |bench, sampler, _| {
                let mut f = template.clone();
                f.set_sampler(sampler.clone());
                bench.resample(&mut f);
                let dt = bench.default_dt();
                bench.measure_delay(dt)
            },
        )?;
        if outcome.failures > 0 {
            println!("({} functional failures skipped)", outcome.failures);
        }
        if outcome.is_empty() {
            return Err(format!("{family}: every Monte Carlo sample failed").into());
        }
        let delays = outcome.into_values();
        let s = Summary::from_slice(&delays);
        println!(
            "\n{family}: mean {:.2} ps, σ {:.3} ps ({:.1}% of mean), skew {:+.2}",
            s.mean * 1e12,
            s.std * 1e12,
            100.0 * s.std / s.mean,
            s.skewness
        );
        // ASCII histogram.
        let h = Histogram::from_data(&delays, 12);
        let max_count = *h.counts().iter().max().unwrap_or(&1) as f64;
        for (i, &c) in h.counts().iter().enumerate() {
            let bar = "#".repeat((40.0 * c as f64 / max_count).round() as usize);
            println!("  {:6.2} ps | {bar}", h.bin_center(i) * 1e12);
        }
    }
    Ok(())
}
