//! Driving the simulator from a SPICE-format netlist.
//!
//! Parses a ring-oscillator-style chain of inverters written as plain SPICE
//! text (using the built-in `vsn`/`vsp` Virtual Source model cards), runs a
//! transient, and measures the stage delays.
//!
//! Run with `cargo run --release --example netlist_sim`.

use statvs::spice::measure::{cross_time, Edge};
use statvs::spice::{parser, Session, TranOptions};

const NETLIST: &str = "
* three-stage inverter chain, VS 40nm models
VDD vdd 0 DC 0.9
VIN in 0 PULSE(0 0.9 100p 15p 15p 600p 2n)

* stage 1
MP1 n1 in vdd vdd vsp W=600n L=40n
MN1 n1 in 0 0 vsn W=300n L=40n
C1 n1 0 0.5f

* stage 2
MP2 n2 n1 vdd vdd vsp W=600n L=40n
MN2 n2 n1 0 0 vsn W=300n L=40n
C2 n2 0 0.5f

* stage 3
MP3 out n2 vdd vdd vsp W=600n L=40n
MN3 out n2 0 0 vsn W=300n L=40n
CL out 0 1f
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let parsed = parser::parse(NETLIST)?;
    println!(
        "parsed netlist: {} nodes, {} elements",
        parsed.node_count(),
        parsed.elements().len()
    );

    // Elaborate once; the session owns the layout and scratch for any
    // number of analyses on this topology.
    let mut session = Session::elaborate(parsed)?;
    let result = session.tran_owned(&TranOptions::new(1.2e-9, 1.5e-12))?;
    let circuit = session.circuit();
    let t = result.times();
    let vdd_half = 0.45;

    // Stage-by-stage 50% crossing times for the first input edge.
    let mut t_prev = cross_time(
        t,
        &result.voltages(circuit.find_node("in").expect("in")),
        vdd_half,
        Edge::Rising,
        0.0,
    )
    .expect("input edge");
    for (stage, node) in ["n1", "n2", "out"].iter().enumerate() {
        let v = result.voltages(circuit.find_node(node).expect("stage node"));
        let t_cross = cross_time(t, &v, vdd_half, Edge::Any, t_prev).expect("stage switches");
        println!(
            "stage {}: {} crosses 50% at {:.1} ps (stage delay {:.2} ps)",
            stage + 1,
            node,
            t_cross * 1e12,
            (t_cross - t_prev) * 1e12
        );
        t_prev = t_cross;
    }

    // Supply current integral -> dynamic charge per edge.
    let idd = result.vsource_currents(0);
    let q: f64 = t
        .windows(2)
        .zip(idd.windows(2))
        .map(|(tw, iw)| 0.5 * (iw[0] + iw[1]).abs() * (tw[1] - tw[0]))
        .sum();
    println!("total supply charge over the window: {:.2} fC", q * 1e15);
    Ok(())
}
