//! Fleet-scale Monte Carlo aggregation: disjoint shards of one experiment
//! run independently (here sequentially, in a fleet on N processes or
//! machines), serialize their mergeable sketches to bytes, and an
//! aggregator reconstructs and merges them — then the merged tail
//! quantiles are compared against a single run over the same sample space.
//!
//! The partition changes nothing: sample `i` always draws from the pure
//! `(seed, i)` stream, so histogram counts and Welford count/extrema merge
//! *bit-identically*, moments agree to floating-point rounding, and the
//! t-digest's tail quantiles stay within its documented rank-error bound
//! (`crates/core/tests/parallel_mc.rs` pins all three properties).
//!
//! Run with `cargo run --release --example fleet_merge`.
//!
//! This demo is the in-process sketch of what `statvs fleet`
//! (`crates/fleet`) does for real: shards dispatched to `statvs serve`
//! workers over HTTP, lost shards re-issued, payloads merged — same
//! determinism contract, plus fault tolerance.

use statvs::mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use statvs::stats::sink::MergeableSink;
use statvs::stats::{Sampler, TDigest, Welford};
use statvs::vscore::mc::{Histogram, ParallelRunner, WelfordSink};
use statvs::vscore::metrics::DeviceMetrics;
use statvs::vscore::sensitivity::{VariedModel, VsBuilder};

/// One shard's (or the single run's) sink set: tail sketch, distribution
/// shape, moments.
type Sinks = ((TDigest, Histogram), WelfordSink);

const SEED: u64 = 2013;
const TOTAL: usize = 12_000;

fn sinks() -> Sinks {
    (
        // The histogram range brackets the Idsat distribution; out-of-range
        // draws clamp deterministically into the edge bins.
        (TDigest::new(100.0), Histogram::new(0.0, 2e-3, 40)),
        WelfordSink::new(),
    )
}

/// Runs the sample index shard `offset..offset + len` of the shared
/// experiment: σ(Idsat) of a mismatch-sampled 600 nm / 40 nm NMOS device.
fn run_shard(offset: usize, len: usize) -> Result<Sinks, std::convert::Infallible> {
    let builder = VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom: Geometry::from_nm(600.0, 40.0),
    };
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let sample = move |(): &mut (), sampler: &mut Sampler, _i: usize| {
        let delta = spec.sample(builder.geometry(), || sampler.standard_normal());
        Ok::<_, std::convert::Infallible>(
            DeviceMetrics::evaluate(builder.build(delta).as_ref(), 0.9).idsat,
        )
    };
    let mut s = sinks();
    ParallelRunner::new(SEED).run_streaming_range(offset, len, |_, _| Ok(()), sample, &mut s)?;
    Ok(s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- the "fleet": three unequal shards of one 12k-sample experiment ---
    let shards = [(0usize, 5000usize), (5000, 3000), (8000, 4000)];
    let mut digest = TDigest::new(100.0);
    let mut hist = Histogram::new(0.0, 2e-3, 40);
    let mut welford = WelfordSink::new();
    let mut shipped = 0usize;
    for &(offset, len) in &shards {
        let ((d, h), w) = run_shard(offset, len)?;
        // Each sketch crosses a (simulated) process boundary as bytes.
        let d_wire = d.to_bytes();
        let h_wire = MergeableSink::to_bytes(&h);
        let w_wire = w.to_bytes();
        shipped += d_wire.len() + h_wire.len() + w_wire.len();
        digest.merge_from(&TDigest::from_bytes(&d_wire)?);
        MergeableSink::merge_from(&mut hist, &Histogram::from_bytes(&h_wire)?);
        welford.merge_from(&WelfordSink::from_bytes(&w_wire)?);
        println!(
            "shard {offset:>5}..{:<5}  n = {:<5}  wire = {:>4} B",
            offset + len,
            len,
            d_wire.len() + h_wire.len() + w_wire.len()
        );
    }
    let merged: Welford = welford.moments();

    // --- single-run reference over the same index space ---
    let ((ref_digest, ref_hist), ref_welford) = run_shard(0, TOTAL)?;
    let reference = ref_welford.moments();

    println!(
        "\n{} samples in {} shards, {} B of sketch state shipped in total",
        TOTAL,
        shards.len(),
        shipped
    );
    println!(
        "histogram counts merged bit-identically: {}",
        hist.counts() == ref_hist.counts() && hist.total() == ref_hist.total()
    );
    println!(
        "moments: merged mean {:.6e} A vs single-run {:.6e} A (count {} / {})",
        merged.mean(),
        reference.mean(),
        merged.count(),
        reference.count()
    );
    println!(
        "extrema merge exactly: min {} max {}",
        merged.min() == reference.min(),
        merged.max() == reference.max()
    );

    println!("\nIdsat tail quantiles, merged fleet digest vs single-run digest:");
    println!(
        "{:>8}  {:>14}  {:>14}  {:>12}",
        "level", "merged (µA)", "single (µA)", "delta (σ)"
    );
    let sigma = reference.std();
    for p in [0.001, 0.01, 0.05, 0.5, 0.95, 0.99, 0.999] {
        let m = digest.quantile(p).expect("non-empty digest");
        let s = ref_digest.quantile(p).expect("non-empty digest");
        println!(
            "{:>8.3}  {:>14.3}  {:>14.3}  {:>12.4}",
            p,
            m * 1e6,
            s * 1e6,
            (m - s) / sigma
        );
    }
    println!(
        "\ndigest state: {} centroids (compression 100), exact n = {}",
        digest.centroid_count(),
        digest.count()
    );
    Ok(())
}
