//! SRAM static noise margin under within-die variation (paper Fig. 9).
//!
//! Traces a nominal butterfly plot as ASCII art, then runs a parallel
//! Monte Carlo on READ and HOLD static noise margins with the statistical
//! VS model — sharded across every available core, with a confidence-
//! interval stopping rule that ends each run as soon as the mean SNM is
//! pinned down to ±1%. SNM values are never buffered: they stream into a
//! `WelfordSink` (live moments) and a P² quantile sketch (the
//! 5th-percentile yield margin) as the run progresses.
//!
//! Run with `cargo run --release --example sram_snm`.

use statvs::circuits::cells::NominalVsFactory;
use statvs::circuits::sram::{butterfly, SnmBench, SnmMode, SramDevices, SramSizing};
use statvs::stats::Sampler;
use statvs::vscore::mc::{EarlyStop, McFactory, P2Quantiles, ParallelRunner, WelfordSink};
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};

const VDD: f64 = 0.9;
const N_SAMPLES: usize = 400;

fn ascii_butterfly(c1: &[(f64, f64)], c2: &[(f64, f64)]) {
    const W: usize = 56;
    const H: usize = 26;
    let mut grid = vec![vec![' '; W]; H];
    let plot = |grid: &mut Vec<Vec<char>>, pts: &[(f64, f64)], ch: char| {
        for &(x, y) in pts {
            let col = ((x / VDD) * (W - 1) as f64).round() as usize;
            let row = H - 1 - ((y / VDD) * (H - 1) as f64).round() as usize;
            if row < H && col < W {
                grid[row][col] = ch;
            }
        }
    };
    plot(&mut grid, c1, '*');
    plot(&mut grid, c2, 'o');
    println!("  V_R ^   (* = half-cell 1, o = half-cell 2)");
    for row in grid {
        println!("      |{}", row.into_iter().collect::<String>());
    }
    println!("      +{}> V_L", "-".repeat(W));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sz = SramSizing::default();

    // Nominal butterfly (READ mode — the stress case).
    let mut nominal = NominalVsFactory;
    let devices = SramDevices::draw(sz, &mut nominal);
    let (c1, c2) = butterfly(&devices, VDD, SnmMode::Read, 61)?;
    println!("nominal READ butterfly:");
    ascii_butterfly(&c1, &c2);

    // Monte Carlo SNM with the extracted statistical model.
    let config = ExtractionConfig {
        mc_samples: 600,
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;
    let template = McFactory::vs(
        report.nmos.fit.params,
        report.pmos.fit.params,
        report.nmos.extracted,
        report.pmos.extracted,
        Sampler::from_seed(0),
    );
    for (mode, label) in [(SnmMode::Read, "READ"), (SnmMode::Hold, "HOLD")] {
        // Each worker elaborates both half-cell sessions once; every
        // sample swaps six freshly drawn devices in place and re-sweeps
        // with warm starts. The stopping rule ends the run at the first
        // 50-sample round boundary where the 95% CI half-width on the mean
        // SNM drops below 1% — deterministically, whatever the core count.
        //
        // Results stream: each SNM record folds into the moment
        // accumulator and the P² sketch the moment its round completes,
        // so the run holds O(workers) sample memory however large the
        // budget grows.
        let mut sink = (WelfordSink::new(), P2Quantiles::new(&[0.05]));
        let outcome = ParallelRunner::new(3000)
            .check_every(50)
            .early_stop(EarlyStop::relative(0.01).min_samples(100))
            .run_streaming(
                N_SAMPLES,
                |_, setup| {
                    let mut f = template.clone();
                    f.set_sampler(setup.clone());
                    SnmBench::new(sz, VDD, mode, 61, &mut f)
                },
                |bench, sampler, _| {
                    let mut f = template.clone();
                    f.set_sampler(sampler.clone());
                    bench.resample(sz, &mut f)?;
                    bench.snm()
                },
                &mut sink,
            )?;
        let (moments, sketch) = sink;
        let m = moments.moments();
        println!(
            "\n{label} SNM over {} samples ({} budgeted, {} workers): mean {:.1} mV, σ {:.2} mV, min {:.1} mV, p5 {:.1} mV, 95% CI ±{:.1}%",
            m.count(),
            N_SAMPLES,
            outcome.workers,
            m.mean() * 1e3,
            m.std() * 1e3,
            m.min() * 1e3,
            sketch.quantile(0.05).unwrap_or(f64::NAN) * 1e3,
            100.0 * m.ci_half_width(1.96) / m.mean(),
        );
    }
    println!("\n(READ margins sit well below HOLD margins — the paper's most variation-sensitive benchmark.)");
    Ok(())
}
