//! SRAM static noise margin under within-die variation (paper Fig. 9).
//!
//! Traces a nominal butterfly plot as ASCII art, then runs a small Monte
//! Carlo on READ and HOLD static noise margins with the statistical VS
//! model.
//!
//! Run with `cargo run --release --example sram_snm`.

use statvs::circuits::cells::NominalVsFactory;
use statvs::circuits::sram::{butterfly, SnmBench, SnmMode, SramDevices, SramSizing};
use statvs::stats::Summary;
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};

const VDD: f64 = 0.9;
const N_SAMPLES: usize = 200;

fn ascii_butterfly(c1: &[(f64, f64)], c2: &[(f64, f64)]) {
    const W: usize = 56;
    const H: usize = 26;
    let mut grid = vec![vec![' '; W]; H];
    let plot = |grid: &mut Vec<Vec<char>>, pts: &[(f64, f64)], ch: char| {
        for &(x, y) in pts {
            let col = ((x / VDD) * (W - 1) as f64).round() as usize;
            let row = H - 1 - ((y / VDD) * (H - 1) as f64).round() as usize;
            if row < H && col < W {
                grid[row][col] = ch;
            }
        }
    };
    plot(&mut grid, c1, '*');
    plot(&mut grid, c2, 'o');
    println!("  V_R ^   (* = half-cell 1, o = half-cell 2)");
    for row in grid {
        println!("      |{}", row.into_iter().collect::<String>());
    }
    println!("      +{}> V_L", "-".repeat(W));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sz = SramSizing::default();

    // Nominal butterfly (READ mode — the stress case).
    let mut nominal = NominalVsFactory;
    let devices = SramDevices::draw(sz, &mut nominal);
    let (c1, c2) = butterfly(&devices, VDD, SnmMode::Read, 61)?;
    println!("nominal READ butterfly:");
    ascii_butterfly(&c1, &c2);

    // Monte Carlo SNM with the extracted statistical model.
    let config = ExtractionConfig {
        mc_samples: 600,
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;
    for (mode, label) in [(SnmMode::Read, "READ"), (SnmMode::Hold, "HOLD")] {
        let mut snms = Vec::with_capacity(N_SAMPLES);
        // Both half-cell sessions elaborate once; every sample swaps six
        // freshly drawn devices in place and re-sweeps with warm starts.
        let mut bench: Option<SnmBench> = None;
        for trial in 0..N_SAMPLES {
            let mut factory = statvs::vscore::mc::McFactory::vs(
                report.nmos.fit.params,
                report.pmos.fit.params,
                report.nmos.extracted,
                report.pmos.extracted,
                statvs::stats::Sampler::from_seed(3000 + trial as u64),
            );
            let snm = match bench.as_mut() {
                Some(b) => {
                    b.resample(sz, &mut factory)?;
                    b.snm()?
                }
                None => bench
                    .insert(SnmBench::new(sz, VDD, mode, 61, &mut factory)?)
                    .snm()?,
            };
            snms.push(snm);
        }
        let s = Summary::from_slice(&snms);
        println!(
            "\n{label} SNM over {N_SAMPLES} samples: mean {:.1} mV, σ {:.2} mV, min {:.1} mV, skew {:+.2}",
            s.mean * 1e3,
            s.std * 1e3,
            s.min * 1e3,
            s.skewness
        );
    }
    println!("\n(READ margins sit well below HOLD margins — the paper's most variation-sensitive benchmark.)");
    Ok(())
}
