//! Non-Gaussian timing at low supply voltage (paper Fig. 7).
//!
//! Sweeps a NAND2 fanout-of-3 bench across Vdd = 0.9 / 0.7 / 0.55 V and
//! shows how the delay distribution, generated from *purely Gaussian* VS
//! parameters, develops skew and a bending QQ plot as the supply drops —
//! the effect that makes low-power statistical timing hard.
//!
//! Run with `cargo run --release --example low_power_timing`.

use statvs::circuits::cells::InverterSizing;
use statvs::circuits::delay::{DelayBench, GateKind};
use statvs::stats::qq::QqPlot;
use statvs::stats::Summary;
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};

const N_SAMPLES: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = ExtractionConfig {
        mc_samples: 600,
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;
    let sz = InverterSizing::from_nm(300.0, 300.0, 40.0);

    println!("NAND2 FO3 delay vs supply voltage ({N_SAMPLES} Monte Carlo samples each):\n");
    println!(
        "{:>6}  {:>10}  {:>10}  {:>8}  {:>9}  {:>12}",
        "Vdd", "mean", "sigma", "sigma/mu", "skewness", "QQ linearity"
    );
    for vdd in [0.9, 0.7, 0.55] {
        let mut delays = Vec::with_capacity(N_SAMPLES);
        // One session per supply point; every trial swaps devices in place.
        let mut bench: Option<DelayBench> = None;
        for trial in 0..N_SAMPLES {
            let mut factory = statvs::vscore::mc::McFactory::vs(
                report.nmos.fit.params,
                report.pmos.fit.params,
                report.nmos.extracted,
                report.pmos.extracted,
                statvs::stats::Sampler::from_seed(9000 + trial as u64),
            );
            let b = match bench.as_mut() {
                Some(b) => {
                    b.resample(&mut factory);
                    b
                }
                None => bench.insert(DelayBench::fo3(GateKind::Nand2, sz, vdd, &mut factory)),
            };
            if let Ok(d) = b.measure_delay(2e-12) {
                delays.push(d);
            }
        }
        let s = Summary::from_slice(&delays);
        let qq = QqPlot::from_sample(&delays);
        println!(
            "{:>5}V  {:>8.2}ps  {:>8.3}ps  {:>7.1}%  {:>+9.3}  {:>12.5}",
            vdd,
            s.mean * 1e12,
            s.std * 1e12,
            100.0 * s.std / s.mean,
            s.skewness,
            qq.linearity_r
        );
    }
    println!(
        "\nAs Vdd approaches threshold, σ/µ grows and the distribution skews right\n\
         (QQ linearity falls below 1) even though every input parameter is Gaussian —\n\
         reproducing the paper's Fig. 7 observation for dynamic-voltage-scaled designs."
    );
    Ok(())
}
