//! Quickstart: the complete statistical VS modeling flow in one page.
//!
//! 1. Fit the nominal Virtual Source model to the golden kit's I-V curves.
//! 2. Extract the Pelgrom mismatch coefficients with backward propagation
//!    of variance (BPV).
//! 3. Validate: Monte Carlo the statistical VS model against the kit.
//!
//! Run with `cargo run --release --example quickstart`.

use statvs::mosfet::Geometry;
use statvs::stats::Sampler;
use statvs::vscore::bpv::predict_variances;
use statvs::vscore::mc::{device_metric_samples, variances};
use statvs::vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};
use statvs::vscore::sensitivity::VsBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- steps 1 + 2: the pipeline runs fit, kit Monte Carlo, and BPV ---
    let config = ExtractionConfig {
        mc_samples: 800, // keep the example quick
        ..ExtractionConfig::default()
    };
    let report = extract_statistical_vs_model(&config)?;

    println!("fitted NMOS VS parameters:");
    let p = report.nmos.fit.params;
    println!("  VT0  = {:.3} V", p.vt0);
    println!("  δ0   = {:.3} V/V (DIBL)", p.delta0);
    println!("  n0   = {:.2}", p.n0);
    println!("  vxo  = {:.2e} cm/s", p.vxo * 1e2);
    println!("  µ    = {:.0} cm²/(V·s)", p.mu * 1e4);
    println!("  fit ln-RMS = {:.3}", report.nmos.fit.rms_log_error);

    let alphas = report.nmos.extracted.to_paper_units();
    println!("\nextracted mismatch coefficients (paper Table II units):");
    println!("  α1 = {:.2} V·nm   (VT0, RDF)", alphas[0]);
    println!("  α2 = α3 = {:.2} nm (Leff/Weff, LER)", alphas[1]);
    println!("  α4 = {:.0} nm·cm²/(V·s) (µ, stress)", alphas[3]);
    println!(
        "  α5 = {:.2} nm·µF/cm² (Cinv, oxide — measured directly)",
        alphas[4]
    );

    // --- step 3: validate σ(Idsat) at a geometry the extraction never saw ---
    let geom = Geometry::from_nm(450.0, 40.0);
    let builder = VsBuilder {
        params: report.nmos.fit.params,
        polarity: statvs::mosfet::Polarity::Nmos,
        geom,
    };
    let mut sampler = Sampler::from_seed(7);
    let samples = device_metric_samples(
        &builder,
        &report.nmos.extracted,
        report.config.vdd,
        2000,
        &mut sampler,
    );
    let mc = variances(&samples);
    let analytic = predict_variances(&builder, &report.nmos.extracted, report.config.vdd);
    println!("\nvalidation at unseen geometry {geom}:");
    println!(
        "  σ(Idsat):     MC {:.2} µA vs linear propagation {:.2} µA",
        mc[0].sqrt() * 1e6,
        analytic[0].sqrt() * 1e6
    );
    println!(
        "  σ(log10Ioff): MC {:.3} vs linear propagation {:.3}",
        mc[1].sqrt(),
        analytic[1].sqrt()
    );
    Ok(())
}
