//! Result export: CSV waveform dumps for external plotting.

use crate::netlist::{Circuit, NodeId};
use crate::tran::TranResult;
use std::io::{self, Write};

/// Writes selected node waveforms as CSV (`time` first column).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
///
/// # Example
///
/// ```
/// use spice::{Circuit, Session, TranOptions, Waveform};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut c = Circuit::new();
/// let a = c.node("a");
/// c.vsource("V1", a, Circuit::GROUND, Waveform::step(0.0, 1.0, 0.0, 1e-12));
/// c.resistor("R1", a, Circuit::GROUND, 1e3);
/// let mut s = Session::elaborate(c)?;
/// let res = s.tran_owned(&TranOptions::new(1e-9, 1e-11))?;
/// let mut out = Vec::new();
/// spice::io::write_waveforms_csv(&mut out, s.circuit(), &res, &[a])?;
/// assert!(String::from_utf8(out)?.starts_with("time,a\n"));
/// # Ok(())
/// # }
/// ```
pub fn write_waveforms_csv<W: Write>(
    mut w: W,
    circuit: &Circuit,
    result: &TranResult,
    nodes: &[NodeId],
) -> io::Result<()> {
    // Header.
    write!(w, "time")?;
    for &n in nodes {
        write!(w, ",{}", circuit.node_name(n))?;
    }
    writeln!(w)?;
    // Rows.
    let traces: Vec<Vec<f64>> = nodes.iter().map(|&n| result.voltages(n)).collect();
    for (k, &t) in result.times().iter().enumerate() {
        write!(w, "{t:.9e}")?;
        for trace in &traces {
            write!(w, ",{:.9e}", trace[k])?;
        }
        writeln!(w)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::tran::TranOptions;
    use crate::waveform::Waveform;

    #[test]
    fn csv_has_header_and_all_rows() {
        let mut c = Circuit::new();
        let a = c.node("in");
        let b = c.node("out");
        c.vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.0, 1e-12),
        );
        c.resistor("R1", a, b, 1e3);
        c.capacitor("C1", b, Circuit::GROUND, 1e-12);
        let mut s = Session::elaborate(c).unwrap();
        let res = s.tran_owned(&TranOptions::new(1e-9, 0.1e-9)).unwrap();
        let c = s.circuit();
        let mut buf = Vec::new();
        write_waveforms_csv(&mut buf, c, &res, &[a, b]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "time,in,out");
        assert_eq!(lines.len(), res.len() + 1);
        // Every row has 3 comma-separated fields.
        assert!(lines[1..].iter().all(|l| l.split(',').count() == 3));
    }

    #[test]
    fn ground_column_is_zero() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1e3);
        c.capacitor("C1", a, Circuit::GROUND, 1e-15);
        let mut s = Session::elaborate(c).unwrap();
        let res = s.tran_owned(&TranOptions::new(1e-10, 1e-11)).unwrap();
        let mut buf = Vec::new();
        write_waveforms_csv(&mut buf, s.circuit(), &res, &[Circuit::GROUND]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        for line in s.lines().skip(1) {
            let v: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert_eq!(v, 0.0);
        }
    }
}
