//! DC operating point and DC sweeps.

use crate::engine::{newton, Mode, Workspace};
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use crate::waveform::Waveform;

/// A solved DC operating point.
#[derive(Debug, Clone)]
pub struct DcResult {
    x: Vec<f64>,
    nn: usize,
}

impl DcResult {
    pub(crate) fn new(x: Vec<f64>, nn: usize) -> Self {
        DcResult { x, nn }
    }

    /// Voltage of a node (0 for ground).
    pub fn voltage(&self, node: NodeId) -> f64 {
        node.unknown().map_or(0.0, |i| self.x[i])
    }

    /// Branch current of the `k`-th voltage source (by addition order, see
    /// [`Circuit::vsource_index`]). SPICE convention: positive current flows
    /// *into* the positive terminal (so a supply delivering power reports a
    /// negative current).
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.x[self.nn + k]
    }

    /// The raw unknown vector (node voltages then branch currents) — used as
    /// warm start by sweeps and the transient engine.
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Gmin continuation ladder (largest first).
const GMIN_STEPS: [f64; 7] = [1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12];
/// Source-stepping ladder.
const SOURCE_STEPS: [f64; 8] = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95, 1.0];

impl Circuit {
    /// Solves the DC operating point.
    ///
    /// Tries plain Newton first, then gmin stepping, then source stepping.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::NoConvergence`] when all continuation
    /// strategies fail, or netlist/singularity errors from assembly.
    pub fn dc_op(&self) -> Result<DcResult, SpiceError> {
        self.dc_op_from(None)
    }

    /// Solves the DC operating point starting from an initial node-voltage
    /// guess. Useful for bistable circuits (SRAM, latches): the guess
    /// selects which stable state Newton converges to.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::dc_op`].
    pub fn dc_op_with_guess(&self, guess: &[(NodeId, f64)]) -> Result<DcResult, SpiceError> {
        self.dc_op_from(Some(guess))
    }

    fn dc_op_from(&self, guess: Option<&[(NodeId, f64)]>) -> Result<DcResult, SpiceError> {
        self.validate()?;
        let mut ws = Workspace::new(self);
        let nn = self.node_count() - 1;
        let mut x0 = vec![0.0; self.n_unknowns()];
        if let Some(g) = guess {
            for &(node, v) in g {
                if let Some(i) = node.unknown() {
                    x0[i] = v;
                }
            }
        }

        let direct = newton(
            self,
            &x0,
            &Mode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            &mut ws,
        );
        if let Ok(x) = direct {
            return Ok(DcResult::new(x, nn));
        }

        // Gmin stepping: relax with a large shunt conductance, then tighten.
        let mut x = x0.clone();
        let mut ok = true;
        for &gmin in &GMIN_STEPS {
            match newton(
                self,
                &x,
                &Mode::Dc {
                    gmin,
                    source_scale: 1.0,
                },
                &mut ws,
            ) {
                Ok(next) => x = next,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Ok(fin) = newton(
                self,
                &x,
                &Mode::Dc {
                    gmin: 0.0,
                    source_scale: 1.0,
                },
                &mut ws,
            ) {
                return Ok(DcResult::new(fin, nn));
            }
        }

        // Source stepping: ramp all independent sources from zero.
        let mut x = x0;
        let mut stepping_failed = None;
        for &scale in &SOURCE_STEPS {
            match newton(
                self,
                &x,
                &Mode::Dc {
                    gmin: 0.0,
                    source_scale: scale,
                },
                &mut ws,
            ) {
                Ok(next) => x = next,
                Err(e) => {
                    stepping_failed = Some((scale, e));
                    break;
                }
            }
        }
        let Some((scale, e)) = stepping_failed else {
            return Ok(DcResult::new(x, nn));
        };
        // A user-supplied guess can park the continuation in a basin that
        // no longer exists for this sample (e.g. mismatch destroyed one
        // latch state). A bad guess must never be worse than no guess:
        // retry the whole ladder cold.
        if guess.is_some() {
            return self.dc_op_from(None);
        }
        Err(SpiceError::NoConvergence {
            analysis: "dc op",
            detail: format!("source stepping stuck at scale {scale}: {e}"),
        })
    }

    /// Sweeps the DC value of voltage source `source` over `values`,
    /// re-solving with warm starts. The source's waveform is restored
    /// afterwards (the circuit is cloned internally).
    ///
    /// # Errors
    ///
    /// Fails when the source does not exist, the sweep is empty, or any
    /// point fails to converge.
    pub fn dc_sweep(&self, source: &str, values: &[f64]) -> Result<SweepResult, SpiceError> {
        if values.is_empty() {
            return Err(SpiceError::InvalidArgument {
                context: "empty sweep".into(),
            });
        }
        self.vsource_index(source)?;
        let mut c = self.clone();
        let nn = c.node_count() - 1;
        let mut ws = Workspace::new(&c);
        let mut points = Vec::with_capacity(values.len());
        let mut warm: Option<Vec<f64>> = None;
        for &v in values {
            c.set_vsource(source, Waveform::dc(v))?;
            let x0 = warm.clone().unwrap_or_else(|| vec![0.0; c.n_unknowns()]);
            let x = match newton(
                &c,
                &x0,
                &Mode::Dc {
                    gmin: 0.0,
                    source_scale: 1.0,
                },
                &mut ws,
            ) {
                Ok(x) => x,
                // Cold retry with the full continuation ladder.
                Err(_) => c.dc_op()?.raw().to_vec(),
            };
            warm = Some(x.clone());
            points.push(DcResult::new(x, nn));
        }
        Ok(SweepResult {
            values: values.to_vec(),
            points,
        })
    }
}

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept source values.
    pub values: Vec<f64>,
    /// The operating points, aligned with `values`.
    pub points: Vec<DcResult>,
}

impl SweepResult {
    /// Voltage trace of a node across the sweep.
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divider_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, m, 2e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        let op = c.dc_op().unwrap();
        assert!((op.voltage(m) - 1.0 / 3.0).abs() < 1e-6);
        assert!((op.voltage(Circuit::GROUND)).abs() < 1e-12);
        // Source current = -1/3 mA (delivering).
        assert!((op.vsource_current(0) + 1.0 / 3.0e3).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, m, 1e3);
        c.capacitor("C1", m, Circuit::GROUND, 1e-12);
        let op = c.dc_op().unwrap();
        // No DC path to ground through C: node follows the source.
        assert!((op.voltage(m) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sweep_tracks_source() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("Vin", a, Circuit::GROUND, Waveform::dc(0.0));
        c.resistor("R1", a, m, 1e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        let sweep = c.dc_sweep("Vin", &[0.0, 0.5, 1.0, 2.0]).unwrap();
        let vm = sweep.voltages(m);
        for (v, vin) in vm.iter().zip(&sweep.values) {
            assert!((v - vin / 2.0).abs() < 1e-6);
        }
        // The original circuit still has its original source value.
        assert_eq!(
            c.dc_op().unwrap().voltage(a),
            0.0
        );
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1.0);
        assert!(c.dc_sweep("V1", &[]).is_err());
        assert!(c.dc_sweep("nope", &[1.0]).is_err());
    }

    #[test]
    fn guess_selects_units() {
        // A plain linear circuit: the guess must not change the answer.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1e3);
        let op1 = c.dc_op().unwrap();
        let op2 = c.dc_op_with_guess(&[(a, -5.0)]).unwrap();
        assert!((op1.voltage(a) - op2.voltage(a)).abs() < 1e-9);
    }
}
