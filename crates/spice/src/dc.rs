//! DC result types.
//!
//! The solver itself lives in [`crate::session::Session`]; elaborate a
//! session once and run [`crate::session::Analysis::Dc`] /
//! [`crate::session::Analysis::DcSweep`] requests against it.

use crate::netlist::NodeId;

/// A solved DC operating point.
///
/// Accessor naming: scalar-per-node results use the singular (`voltage`),
/// trace-per-node results (sweep, transient, AC) use the plural
/// (`voltages`).
#[derive(Debug, Clone)]
pub struct DcResult {
    x: Vec<f64>,
    nn: usize,
}

impl DcResult {
    pub(crate) fn new(x: Vec<f64>, nn: usize) -> Self {
        DcResult { x, nn }
    }

    /// Voltage of a node (0 for ground).
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> f64 {
        node.unknown().map_or(0.0, |i| self.x[i])
    }

    /// Branch current of the `k`-th voltage source (by addition order, see
    /// [`crate::Circuit::vsource_index`]). SPICE convention: positive
    /// current flows
    /// *into* the positive terminal (so a supply delivering power reports a
    /// negative current).
    #[must_use]
    pub fn vsource_current(&self, k: usize) -> f64 {
        self.x[self.nn + k]
    }

    /// The raw unknown vector (node voltages then branch currents) — used as
    /// warm start by sweeps and the transient engine.
    #[must_use]
    pub fn raw(&self) -> &[f64] {
        &self.x
    }
}

/// Result of a DC sweep: one operating point per swept value.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept source values.
    pub values: Vec<f64>,
    /// The operating points, aligned with `values`.
    pub points: Vec<DcResult>,
}

impl SweepResult {
    /// Voltage trace of a node across the sweep.
    #[must_use]
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }

    /// Branch-current trace of the `k`-th voltage source across the sweep.
    #[must_use]
    pub fn vsource_currents(&self, k: usize) -> Vec<f64> {
        self.points.iter().map(|p| p.vsource_current(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::netlist::Circuit;
    use crate::session::Session;
    use crate::waveform::Waveform;

    #[test]
    fn divider_op() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, m, 2e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        let mut s = Session::elaborate(c).unwrap();
        let op = s.dc_owned().unwrap();
        assert!((op.voltage(m) - 1.0 / 3.0).abs() < 1e-6);
        assert!((op.voltage(Circuit::GROUND)).abs() < 1e-12);
        // Source current = -1/3 mA (delivering).
        assert!((op.vsource_current(0) + 1.0 / 3.0e3).abs() < 1e-9);
    }

    #[test]
    fn capacitor_is_open_in_dc() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, m, 1e3);
        c.capacitor("C1", m, Circuit::GROUND, 1e-12);
        let op = Session::elaborate(c).unwrap().dc_owned().unwrap();
        // No DC path to ground through C: node follows the source.
        assert!((op.voltage(m) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sweep_tracks_source_and_reports_currents() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("Vin", a, Circuit::GROUND, Waveform::dc(0.0));
        c.resistor("R1", a, m, 1e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        let mut s = Session::elaborate(c).unwrap();
        let sweep = s.dc_sweep_owned("Vin", &[0.0, 0.5, 1.0, 2.0]).unwrap();
        let vm = sweep.voltages(m);
        for (v, vin) in vm.iter().zip(&sweep.values) {
            assert!((v - vin / 2.0).abs() < 1e-6);
        }
        let im = sweep.vsource_currents(0);
        for (i, vin) in im.iter().zip(&sweep.values) {
            assert!((i + vin / 2e3).abs() < 1e-8);
        }
        // The session still has its original source value afterwards.
        assert_eq!(s.dc_owned().unwrap().voltage(a), 0.0);
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1.0);
        let mut s = Session::elaborate(c).unwrap();
        assert!(s.dc_sweep_owned("V1", &[]).is_err());
        assert!(s.dc_sweep_owned("nope", &[1.0]).is_err());
    }

    #[test]
    fn guess_does_not_change_linear_answer() {
        // A plain linear circuit: the guess must not change the answer.
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1e3);
        let mut s = Session::elaborate(c).unwrap();
        let op1 = s.dc_owned().unwrap();
        let op2 = s.dc_owned_with_guess(&[(a, -5.0)]).unwrap();
        assert!((op1.voltage(a) - op2.voltage(a)).abs() < 1e-9);
    }
}
