//! Circuit elements.

use crate::netlist::NodeId;
use crate::waveform::Waveform;
use mosfet::MosfetModel;

/// A circuit element instance.
#[derive(Debug, Clone)]
pub enum Element {
    /// Linear resistor between `a` and `b`.
    Resistor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Resistance in ohms (must be > 0).
        r: f64,
    },
    /// Linear capacitor between `a` and `b`.
    Capacitor {
        /// Instance name.
        name: String,
        /// First terminal.
        a: NodeId,
        /// Second terminal.
        b: NodeId,
        /// Capacitance in farads (must be > 0).
        c: f64,
    },
    /// Independent voltage source from `pos` to `neg`.
    Vsource {
        /// Instance name.
        name: String,
        /// Positive terminal.
        pos: NodeId,
        /// Negative terminal.
        neg: NodeId,
        /// Source waveform.
        wave: Waveform,
    },
    /// Independent current source driving current *into* `pos` (out of `neg`).
    Isource {
        /// Instance name.
        name: String,
        /// Terminal receiving the current.
        pos: NodeId,
        /// Terminal sourcing the current.
        neg: NodeId,
        /// Source waveform (amps).
        wave: Waveform,
    },
    /// Four-terminal MOSFET evaluated through a compact model.
    Mosfet {
        /// Instance name.
        name: String,
        /// Drain node.
        d: NodeId,
        /// Gate node.
        g: NodeId,
        /// Source node.
        s: NodeId,
        /// Bulk node.
        b: NodeId,
        /// The compact model instance (owns geometry + mismatch).
        model: Box<dyn MosfetModel>,
    },
}

impl Element {
    /// Instance name.
    pub fn name(&self) -> &str {
        match self {
            Element::Resistor { name, .. }
            | Element::Capacitor { name, .. }
            | Element::Vsource { name, .. }
            | Element::Isource { name, .. }
            | Element::Mosfet { name, .. } => name,
        }
    }

    /// All nodes this element touches.
    pub fn nodes(&self) -> Vec<NodeId> {
        match self {
            Element::Resistor { a, b, .. } | Element::Capacitor { a, b, .. } => vec![*a, *b],
            Element::Vsource { pos, neg, .. } | Element::Isource { pos, neg, .. } => {
                vec![*pos, *neg]
            }
            Element::Mosfet { d, g, s, b, .. } => vec![*d, *g, *s, *b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::Circuit;

    #[test]
    fn names_and_nodes() {
        let mut c = Circuit::new();
        let n1 = c.node("n1");
        let r = Element::Resistor {
            name: "R1".into(),
            a: n1,
            b: Circuit::GROUND,
            r: 1e3,
        };
        assert_eq!(r.name(), "R1");
        assert_eq!(r.nodes(), vec![n1, Circuit::GROUND]);
    }
}
