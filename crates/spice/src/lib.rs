//! A small SPICE-class circuit simulator built on modified nodal analysis.
//!
//! The paper validates its statistical VS model with SPICE-level Monte Carlo
//! on standard cells, a D flip-flop, and a 6T SRAM cell. This crate is the
//! simulation substrate: netlists of resistors, capacitors, independent
//! sources, and compact-model MOSFETs (any [`mosfet::MosfetModel`]), with
//!
//! * **nonlinear DC** operating-point analysis (Newton-Raphson with voltage
//!   step damping, plus gmin and source stepping as continuation fallbacks),
//! * **DC sweeps** with warm starting (butterfly curves, VTCs),
//! * **transient** analysis (trapezoidal with backward-Euler startup,
//!   charge-conserving companion models for device charges),
//! * **measurements** (threshold crossings, propagation delay, source
//!   currents for leakage/power).
//!
//! # Example
//!
//! ```
//! use spice::{Circuit, Waveform};
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! // A resistive divider: 1 V across two 1 kΩ resistors.
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let mid = c.node("mid");
//! c.vsource("V1", vin, Circuit::GROUND, Waveform::dc(1.0));
//! c.resistor("R1", vin, mid, 1e3);
//! c.resistor("R2", mid, Circuit::GROUND, 1e3);
//! let op = c.dc_op()?;
//! assert!((op.voltage(mid) - 0.5).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ac;
pub mod dc;
pub mod elements;
pub mod engine;
pub mod error;
pub mod io;
pub mod measure;
pub mod netlist;
pub mod parser;
pub mod tran;
pub mod waveform;

pub use dc::{DcResult, SweepResult};
pub use error::SpiceError;
pub use netlist::{Circuit, NodeId};
pub use tran::{TranOptions, TranResult};
pub use waveform::Waveform;
