//! A session-based SPICE-class circuit simulator built on modified nodal
//! analysis.
//!
//! The paper validates its statistical VS model with SPICE-level Monte Carlo
//! on standard cells, a D flip-flop, and a 6T SRAM cell — thousands of
//! solves of the *same topology* with resampled device parameters. The
//! crate is organized around that workload:
//!
//! 1. **Build** a [`Circuit`]: netlists of resistors, capacitors,
//!    independent sources, and compact-model MOSFETs (any
//!    [`mosfet::MosfetModel`]).
//! 2. **Elaborate once** into a [`Session`]: validation, node/branch
//!    layout, workspace and LU scratch allocation all happen a single time.
//! 3. **Run many analyses** against the session — each [`Analysis`] request
//!    ([`Analysis::Dc`], [`Analysis::DcSweep`], [`Analysis::Tran`],
//!    [`Analysis::Ac`]) yields a stable [`RunId`] into the session's
//!    [`ResultStore`], or use the `*_owned` shortcuts in hot loops.
//! 4. **Resample in place** for Monte Carlo: [`Session::swap_devices`] /
//!    [`Session::swap_all_mosfets`] replace MOSFET instances without
//!    re-parsing or re-elaborating, the next solve warm-starts from the
//!    previous sample's operating point, and stored results of the
//!    pre-swap circuit are invalidated. DC Monte Carlo batches go through
//!    [`Session::dc_batch`], which stamps and LU-solves K mismatch lanes
//!    at once (bit-identical per lane to the sequential scalar path) on
//!    one topology traversal. AC Monte Carlo batches go through
//!    [`Session::ac_batch`], which also amortizes the guessed
//!    operating-point solve and the [`ac::AcWorkspace`] scratch across
//!    samples.
//!
//! Analyses: nonlinear DC operating point (damped Newton-Raphson with gmin
//! and source-stepping continuation), warm-started DC sweeps (butterfly
//! curves, VTCs), transient (trapezoidal with backward-Euler startup,
//! charge-conserving companion models), AC small-signal sweeps, plus
//! [`measure`] helpers (threshold crossings, propagation delay, source
//! currents for leakage/power).
//!
//! Accessor naming across result types: scalar-per-node accessors are
//! singular ([`DcResult::voltage`]); trace accessors are plural
//! ([`SweepResult::voltages`], [`TranResult::voltages`],
//! [`ac::AcResult::magnitudes`]).
//!
//! # Example
//!
//! ```
//! use spice::{Analysis, Circuit, Session, Waveform};
//!
//! # fn main() -> Result<(), spice::SpiceError> {
//! // A resistive divider: 1 V across two 1 kΩ resistors.
//! let mut c = Circuit::new();
//! let vin = c.node("in");
//! let mid = c.node("mid");
//! c.vsource("V1", vin, Circuit::GROUND, Waveform::dc(1.0));
//! c.resistor("R1", vin, mid, 1e3);
//! c.resistor("R2", mid, Circuit::GROUND, 1e3);
//!
//! // Elaborate once; run as many analyses as needed.
//! let mut s = Session::elaborate(c)?;
//! let op = s.run(Analysis::dc())?;
//! assert!((s.results().dc(op).unwrap().voltage(mid) - 0.5).abs() < 1e-9);
//! let sweep = s.dc_sweep("V1", &[0.0, 1.0, 2.0])?;
//! assert!((sweep.voltages(mid)[2] - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```
//!
//! The pre-0.2 one-shot methods on `Circuit` (`dc_op`, `dc_sweep`, `tran`,
//! `ac_sweep`, and the singular trace accessors) were deprecated in 0.2
//! and removed in 0.3; elaborate a [`Session`] instead.
//!
//! Sessions are `Send`, and [`Session::replicate`] re-elaborates the same
//! topology into an independent session — the setup step of the parallel
//! Monte Carlo executor in the `vscore` crate. `ARCHITECTURE.md` at the
//! repo root diagrams the crate graph, the session lifecycle, and the
//! parallel Monte Carlo data flow.

pub mod ac;
mod batch;
pub mod dc;
pub mod elements;
pub mod engine;
pub mod error;
pub mod io;
pub mod measure;
pub mod netlist;
pub mod parser;
pub mod session;
pub mod tran;
pub mod waveform;

pub use dc::{DcResult, SweepResult};
pub use error::SpiceError;
pub use netlist::{Circuit, NodeId};
pub use session::{Analysis, AnalysisResult, ResultStore, RunId, Session};
pub use tran::{TranOptions, TranResult};
pub use waveform::Waveform;
