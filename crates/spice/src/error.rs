//! Simulator error type.

use std::fmt;

/// Errors produced by circuit construction and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// Newton-Raphson failed to converge even with continuation fallbacks.
    NoConvergence {
        /// Which analysis failed ("dc op", "transient", ...).
        analysis: &'static str,
        /// Detail (iteration count, time point, ...).
        detail: String,
    },
    /// The linear system was singular (usually a floating node or a
    /// voltage-source loop).
    SingularSystem {
        /// Human-readable context.
        context: String,
    },
    /// An element or node reference was invalid.
    BadNetlist {
        /// Human-readable context.
        context: String,
    },
    /// Invalid analysis arguments (non-positive step, empty sweep, ...).
    InvalidArgument {
        /// Human-readable context.
        context: String,
    },
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::NoConvergence { analysis, detail } => {
                write!(f, "{analysis} failed to converge: {detail}")
            }
            SpiceError::SingularSystem { context } => {
                write!(f, "singular MNA system: {context}")
            }
            SpiceError::BadNetlist { context } => write!(f, "bad netlist: {context}"),
            SpiceError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
        }
    }
}

impl std::error::Error for SpiceError {}

impl From<numerics::NumericsError> for SpiceError {
    fn from(e: numerics::NumericsError) -> Self {
        SpiceError::SingularSystem {
            context: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            SpiceError::NoConvergence {
                analysis: "dc op",
                detail: "100 iterations".into(),
            },
            SpiceError::SingularSystem {
                context: "floating node".into(),
            },
            SpiceError::BadNetlist {
                context: "dangling".into(),
            },
            SpiceError::InvalidArgument {
                context: "dt <= 0".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn converts_numerics_errors() {
        let ne = numerics::NumericsError::SingularMatrix { pivot: 2 };
        let se: SpiceError = ne.into();
        assert!(matches!(se, SpiceError::SingularSystem { .. }));
    }
}
