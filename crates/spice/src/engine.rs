//! MNA assembly and the damped Newton-Raphson solver.
//!
//! The unknown vector is `x = [v_1 .. v_{N-1}, i_1 .. i_M]`: node voltages
//! (ground eliminated) followed by voltage-source branch currents. Nonlinear
//! devices are stamped as SPICE-style companion models, so each Newton
//! iteration solves the linear system `A(x_k) · x_{k+1} = b(x_k)`.

use crate::elements::Element;
use crate::error::SpiceError;
use crate::netlist::Circuit;
use mosfet::Bias;
use numerics::{lu::Lu, Matrix};

/// Voltage perturbation for device-model finite differences (V).
pub(crate) const FD_STEP: f64 = 1e-6;
/// Conductance floor from every node to ground (numerical safety net).
pub(crate) const GMIN_FLOOR: f64 = 1e-12;
/// Maximum Newton voltage update per iteration (V) — exponential device
/// damping.
pub(crate) const MAX_DV: f64 = 0.12;
/// Node-voltage convergence tolerance (V).
pub(crate) const V_TOL: f64 = 1e-7;
/// Branch-current convergence tolerance (A).
pub(crate) const I_TOL: f64 = 1e-10;
/// Newton iteration budget per solve.
pub(crate) const MAX_NEWTON: usize = 400;

/// Transient integration method for the current step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrator {
    /// Backward Euler (L-stable; used for the first step and after
    /// waveform breakpoints).
    BackwardEuler,
    /// Trapezoidal rule (second order; the default).
    Trapezoidal,
}

/// Dynamic (charge-storage) state carried between transient steps.
#[derive(Debug, Clone, Default)]
pub struct TranState {
    /// Per-capacitor branch voltage at the previous accepted step.
    pub cap_v: Vec<f64>,
    /// Per-capacitor branch current at the previous accepted step.
    pub cap_i: Vec<f64>,
    /// Per-MOSFET terminal charges `(qg, qd, qs, qb)` at the previous step.
    pub mos_q: Vec<[f64; 4]>,
    /// Per-MOSFET terminal charging currents at the previous step.
    pub mos_i: Vec<[f64; 4]>,
}

/// What kind of system to assemble.
#[derive(Debug, Clone, Copy)]
pub enum Mode<'a> {
    /// DC: capacitors open, charges ignored.
    Dc {
        /// Extra conductance from every node to ground (continuation).
        gmin: f64,
        /// Scale factor on all independent sources (continuation).
        source_scale: f64,
    },
    /// Transient step ending at time `t` with step size `h`.
    Tran {
        /// Integration method for this step.
        method: Integrator,
        /// Step size (s).
        h: f64,
        /// Time at the *end* of the step (s).
        t: f64,
        /// Dynamic state at the beginning of the step.
        state: &'a TranState,
    },
}

/// Scratch space reused across Newton iterations, time steps, and — through
/// [`crate::session::Session`] — across entire analyses and Monte Carlo
/// samples. Holds the MNA system plus the LU factorization storage, so the
/// hot loop performs no per-iteration allocation.
#[derive(Debug)]
pub struct Workspace {
    n: usize,
    nn: usize,
    a: Matrix,
    b: Vec<f64>,
    /// Reused LU factorization storage (order n once initialized).
    lu: Option<Lu>,
    /// Newton update scratch.
    x_new: Vec<f64>,
}

impl Workspace {
    /// Allocates a workspace for the circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.n_unknowns();
        Workspace {
            n,
            nn: circuit.node_count() - 1,
            a: Matrix::zeros(n, n),
            b: vec![0.0; n],
            lu: None,
            x_new: vec![0.0; n],
        }
    }

    /// Number of unknowns.
    pub fn n_unknowns(&self) -> usize {
        self.n
    }

    /// Factors the assembled system into the reused LU storage and solves
    /// `A x = b` into the internal update scratch.
    fn factor_and_solve(&mut self) -> Result<(), SpiceError> {
        if let Some(lu) = self.lu.as_mut() {
            lu.refactor(&self.a)?;
        } else {
            self.lu = Some(Lu::factor(&self.a)?);
        }
        let lu = self.lu.as_ref().expect("factored above");
        lu.solve_into(&self.b, &mut self.x_new)?;
        Ok(())
    }
}

/// Voltage of `node` under the unknown vector `x` (0 for ground).
pub(crate) fn volt(x: &[f64], node: crate::netlist::NodeId) -> f64 {
    node.unknown().map_or(0.0, |i| x[i])
}

/// DC companion-model values of one MOSFET at a bias point: the stamp the
/// Newton loop writes into the conductance block and right-hand side.
pub(crate) struct MosStamp {
    pub(crate) gm: f64,
    pub(crate) gds: f64,
    pub(crate) gmb: f64,
    /// `gm + gds + gmb` — the source-column entry.
    pub(crate) gsum: f64,
    /// Linearization constant `Id - gm·vgs - gds·vds - gmb·vbs`.
    pub(crate) ieq: f64,
}

/// Evaluates the DC companion model of one MOSFET through `ids`.
///
/// Shared by the scalar [`assemble`] and the batched stamp loop
/// ([`crate::batch`]): both paths run this exact finite-difference and
/// linearization sequence, which is what makes batched lanes bit-identical
/// to scalar solves.
///
/// Forward differences: cheaper than central, and Newton only needs an
/// approximate Jacobian (convergence is checked on the update norm, not
/// the Jacobian quality).
pub(crate) fn mos_dc_stamp(ids: impl Fn(Bias) -> f64, bias: Bias, bulk_tied: bool) -> MosStamp {
    let id0 = ids(bias);
    let d_of = |db: Bias| (ids(db) - id0) / FD_STEP;
    let gm = d_of(Bias {
        vgs: bias.vgs + FD_STEP,
        ..bias
    });
    let gds = d_of(Bias {
        vds: bias.vds + FD_STEP,
        ..bias
    });
    let gmb = if bulk_tied {
        0.0
    } else {
        d_of(Bias {
            vbs: bias.vbs + FD_STEP,
            ..bias
        })
    };
    let ieq = id0 - gm * bias.vgs - gds * bias.vds - gmb * bias.vbs;
    MosStamp {
        gm,
        gds,
        gmb,
        gsum: gm + gds + gmb,
        ieq,
    }
}

/// Adds `g` between nodes `a` and `b` in the conductance block.
fn stamp_conductance(ws: &mut Workspace, a: Option<usize>, b: Option<usize>, g: f64) {
    if let Some(i) = a {
        ws.a[(i, i)] += g;
    }
    if let Some(j) = b {
        ws.a[(j, j)] += g;
    }
    if let (Some(i), Some(j)) = (a, b) {
        ws.a[(i, j)] -= g;
        ws.a[(j, i)] -= g;
    }
}

/// Adds a current source of `i_ab` flowing from `a` into `b` (i.e. leaving
/// node `a`), to the right-hand side.
fn stamp_current(ws: &mut Workspace, a: Option<usize>, b: Option<usize>, i_ab: f64) {
    if let Some(i) = a {
        ws.b[i] -= i_ab;
    }
    if let Some(j) = b {
        ws.b[j] += i_ab;
    }
}

/// Assembles the companion-model MNA system at linearization point `x`.
pub fn assemble(circuit: &Circuit, x: &[f64], mode: &Mode<'_>, ws: &mut Workspace) {
    ws.a.fill_zero();
    ws.b.iter_mut().for_each(|v| *v = 0.0);

    let (gmin, source_scale, time) = match mode {
        Mode::Dc {
            gmin, source_scale, ..
        } => (*gmin, *source_scale, 0.0),
        Mode::Tran { t, .. } => (0.0, 1.0, *t),
    };

    // Conductance floor on every node keeps gates/floating nodes pinned.
    for i in 0..ws.nn {
        ws.a[(i, i)] += GMIN_FLOOR + gmin;
    }

    let mut v_idx = 0usize; // voltage-source branch counter
    let mut c_idx = 0usize; // capacitor counter
    let mut m_idx = 0usize; // mosfet counter

    for e in circuit.elements() {
        match e {
            Element::Resistor { a, b, r, .. } => {
                stamp_conductance(ws, a.unknown(), b.unknown(), 1.0 / r);
            }
            Element::Capacitor { a, b, c, .. } => {
                match mode {
                    Mode::Dc { .. } => {} // open in DC
                    Mode::Tran {
                        method, h, state, ..
                    } => {
                        let v_prev = state.cap_v[c_idx];
                        let i_prev = state.cap_i[c_idx];
                        let (geq, ieq) = match method {
                            Integrator::BackwardEuler => {
                                let g = c / h;
                                (g, g * v_prev)
                            }
                            Integrator::Trapezoidal => {
                                let g = 2.0 * c / h;
                                (g, g * v_prev + i_prev)
                            }
                        };
                        stamp_conductance(ws, a.unknown(), b.unknown(), geq);
                        // i = geq * v - ieq; the constant part is a source
                        // from a to b of -ieq.
                        stamp_current(ws, a.unknown(), b.unknown(), -ieq);
                    }
                }
                c_idx += 1;
            }
            Element::Vsource { pos, neg, wave, .. } => {
                let row = ws.nn + v_idx;
                if let Some(i) = pos.unknown() {
                    ws.a[(i, row)] += 1.0;
                    ws.a[(row, i)] += 1.0;
                }
                if let Some(j) = neg.unknown() {
                    ws.a[(j, row)] -= 1.0;
                    ws.a[(row, j)] -= 1.0;
                }
                ws.b[row] = wave.value(time) * source_scale;
                v_idx += 1;
            }
            Element::Isource { pos, neg, wave, .. } => {
                // Current into pos = current leaving neg.
                stamp_current(
                    ws,
                    neg.unknown(),
                    pos.unknown(),
                    wave.value(time) * source_scale,
                );
            }
            Element::Mosfet {
                d, g, s, b, model, ..
            } => {
                let vd = volt(x, *d);
                let vg = volt(x, *g);
                let vs = volt(x, *s);
                let vb = volt(x, *b);
                let bias = Bias {
                    vgs: vg - vs,
                    vds: vd - vs,
                    vbs: vb - vs,
                };
                // --- static current ---
                let bulk_tied = b == s;
                let st = mos_dc_stamp(|db| model.ids(db), bias, bulk_tied);
                // Row d gains +Id (current leaving node d into the channel
                // towards the source); row s gains -Id.
                let du = d.unknown();
                let gu = g.unknown();
                let su = s.unknown();
                let bu = b.unknown();
                // Conductance entries: dI/dv_g = gm, dI/dv_d = gds,
                // dI/dv_b = gmb, dI/dv_s = -(gm + gds + gmb).
                if let Some(i) = du {
                    if let Some(j) = gu {
                        ws.a[(i, j)] += st.gm;
                    }
                    ws.a[(i, i)] += st.gds;
                    if let Some(j) = bu {
                        ws.a[(i, j)] += st.gmb;
                    }
                    if let Some(j) = su {
                        ws.a[(i, j)] -= st.gsum;
                    }
                    ws.b[i] -= st.ieq;
                }
                if let Some(i) = su {
                    if let Some(j) = gu {
                        ws.a[(i, j)] -= st.gm;
                    }
                    if let Some(j) = du {
                        ws.a[(i, j)] -= st.gds;
                    }
                    if let Some(j) = bu {
                        ws.a[(i, j)] -= st.gmb;
                    }
                    ws.a[(i, i)] += st.gsum;
                    ws.b[i] += st.ieq;
                }
                // --- charge storage (transient only) ---
                if let Mode::Tran {
                    method, h, state, ..
                } = mode
                {
                    let q0 = model.charges(bias);
                    let dq = |db: Bias| {
                        let qp = model.charges(db);
                        [
                            (qp.qg - q0.qg) / FD_STEP,
                            (qp.qd - q0.qd) / FD_STEP,
                            (qp.qs - q0.qs) / FD_STEP,
                            (qp.qb - q0.qb) / FD_STEP,
                        ]
                    };
                    // Partial derivatives of each terminal charge wrt vgs/vds/vbs.
                    let c_vgs = dq(Bias {
                        vgs: bias.vgs + FD_STEP,
                        ..bias
                    });
                    let c_vds = dq(Bias {
                        vds: bias.vds + FD_STEP,
                        ..bias
                    });
                    let c_vbs = if bulk_tied {
                        [0.0; 4]
                    } else {
                        dq(Bias {
                            vbs: bias.vbs + FD_STEP,
                            ..bias
                        })
                    };
                    let q_now = [q0.qg, q0.qd, q0.qs, q0.qb];
                    let q_prev = state.mos_q[m_idx];
                    let i_prev = state.mos_i[m_idx];
                    let terms = [gu, du, su, bu];
                    // dq_t/dv_g = c_vgs[t]; dq_t/dv_d = c_vds[t];
                    // dq_t/dv_b = c_vbs[t]; dq_t/dv_s = -(sum).
                    for t_i in 0..4 {
                        let Some(row) = terms[t_i] else { continue };
                        let (k, i_const) = match method {
                            Integrator::BackwardEuler => (1.0 / h, 0.0),
                            Integrator::Trapezoidal => (2.0 / h, -i_prev[t_i]),
                        };
                        // i_t = k (q_t(v) - q_prev) + i_const, linearized at x.
                        let cg = c_vgs[t_i];
                        let cd = c_vds[t_i];
                        let cb = c_vbs[t_i];
                        let cs = -(cg + cd + cb);
                        if let Some(j) = gu {
                            ws.a[(row, j)] += k * cg;
                        }
                        if let Some(j) = du {
                            ws.a[(row, j)] += k * cd;
                        }
                        if let Some(j) = su {
                            ws.a[(row, j)] += k * cs;
                        }
                        if let Some(j) = bu {
                            ws.a[(row, j)] += k * cb;
                        }
                        let lin_at_x = cg * vg + cd * vd + cs * vs + cb * vb;
                        let ieq_t = k * (q_now[t_i] - q_prev[t_i]) + i_const - k * lin_at_x;
                        ws.b[row] -= ieq_t;
                    }
                    m_idx += 1;
                }
            }
        }
    }
}

/// KCL residual of the node equations at `x`: assembles the companion
/// system at `x` and returns `max_i |(A x - b)_i|` over the node rows —
/// the net current error at each node in amps.
pub fn kcl_residual(circuit: &Circuit, x: &[f64], mode: &Mode<'_>, ws: &mut Workspace) -> f64 {
    assemble(circuit, x, mode, ws);
    let mut worst = 0.0_f64;
    for i in 0..ws.nn {
        let mut s = -ws.b[i];
        for j in 0..ws.n {
            s += ws.a[(i, j)] * x[j];
        }
        worst = worst.max(s.abs());
    }
    worst
}

/// KCL current acceptance threshold (A) for weakly-converged iterates.
pub(crate) const KCL_TOL: f64 = 1e-10;

/// Newton-Raphson with per-iteration voltage damping.
///
/// Convergence is declared on the update norm (the classic SPICE criterion)
/// or, for iterates whose updates stall above `V_TOL` while the node
/// equations are already satisfied to sub-nA level, on the KCL residual —
/// the standard remedy for subthreshold regions where conductances approach
/// the gmin floor and the dx criterion becomes meaningless.
///
/// # Errors
///
/// Returns [`SpiceError::SingularSystem`] if the Jacobian cannot be factored
/// and [`SpiceError::NoConvergence`] when the iteration budget is exhausted.
pub fn newton(
    circuit: &Circuit,
    x0: &[f64],
    mode: &Mode<'_>,
    ws: &mut Workspace,
) -> Result<Vec<f64>, SpiceError> {
    let mut x = x0.to_vec();
    for iter in 0..MAX_NEWTON {
        assemble(circuit, &x, mode, ws);
        ws.factor_and_solve()
            .map_err(|e| SpiceError::SingularSystem {
                context: format!("newton iteration {iter}: {e}"),
            })?;
        // Damped update.
        let mut max_dv = 0.0_f64;
        let mut max_di = 0.0_f64;
        for i in 0..ws.n {
            let d = ws.x_new[i] - x[i];
            if i < ws.nn {
                max_dv = max_dv.max(d.abs());
            } else {
                max_di = max_di.max(d.abs());
            }
        }
        let scale = if max_dv > MAX_DV {
            MAX_DV / max_dv
        } else {
            1.0
        };
        for i in 0..ws.n {
            x[i] += scale * (ws.x_new[i] - x[i]);
        }
        if !x.iter().all(|v| v.is_finite()) {
            return Err(SpiceError::NoConvergence {
                analysis: "newton",
                detail: format!("non-finite iterate at iteration {iter}"),
            });
        }
        if scale == 1.0 && max_dv < V_TOL && max_di < I_TOL {
            return Ok(x);
        }
        // Weak-convergence escape: a stalled but current-consistent iterate.
        if scale == 1.0 && max_dv < 1e-4 && iter > 20 {
            let r = kcl_residual(circuit, &x, mode, ws);
            if r < KCL_TOL {
                return Ok(x);
            }
        }
    }
    Err(SpiceError::NoConvergence {
        analysis: "newton",
        detail: format!("no convergence in {MAX_NEWTON} iterations"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;

    #[test]
    fn divider_assembles_and_solves() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(2.0));
        c.resistor("R1", a, m, 1e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        let mut ws = Workspace::new(&c);
        let x = newton(
            &c,
            &vec![0.0; ws.n_unknowns()],
            &Mode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            &mut ws,
        )
        .unwrap();
        assert!((x[a.unknown().unwrap()] - 2.0).abs() < 1e-6);
        assert!((x[m.unknown().unwrap()] - 1.0).abs() < 1e-6);
        // Branch current: 2 V across 2 kΩ = 1 mA, flowing out of the source
        // positive terminal (so the MNA branch current is -1 mA).
        assert!((x[2] + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn isource_into_resistor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.isource("I1", a, Circuit::GROUND, Waveform::dc(1e-3));
        c.resistor("R1", a, Circuit::GROUND, 1e3);
        let mut ws = Workspace::new(&c);
        let x = newton(
            &c,
            &[0.0],
            &Mode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            &mut ws,
        )
        .unwrap();
        assert!((x[0] - 1.0).abs() < 1e-6, "v = {}", x[0]);
    }

    #[test]
    fn floating_node_is_held_by_gmin_floor() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let f = c.node("floating");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, Circuit::GROUND, 1e3);
        c.resistor("R2", f, a, 1e3); // f connects only through R2
        let mut ws = Workspace::new(&c);
        let x = newton(
            &c,
            &vec![0.0; ws.n_unknowns()],
            &Mode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            },
            &mut ws,
        )
        .unwrap();
        // No current path: the floating node floats to ~v(a).
        assert!((x[f.unknown().unwrap()] - 1.0).abs() < 1e-3);
    }
}
