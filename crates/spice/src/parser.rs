//! A SPICE-format netlist parser.
//!
//! Supports the subset a statistical cell-characterization flow needs:
//!
//! ```text
//! * comment lines and trailing comments ($ ...)
//! Rname n1 n2 1k
//! Cname n1 n2 10f
//! Vname n+ n- DC 0.9
//! Vname n+ n- PULSE(0 0.9 1n 10p 10p 500p 2n)
//! Vname n+ n- PWL(0 0 1n 0.9)
//! Iname n+ n- DC 1u
//! Mname d g s b vsn W=600n L=40n
//! .model  — only the four built-in cards: vsn, vsp, bsimn, bsimp
//! .end
//! ```
//!
//! Engineering suffixes (`f p n u m k meg g t`) are accepted on all values.
//! MOSFET model cards instantiate the nominal built-in models; programmatic
//! construction (the [`crate::Circuit`] builder API) remains the path for
//! mismatch-perturbed devices.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::waveform::Waveform;
use mosfet::{bsim::BsimModel, vs::VsModel, Geometry, MosfetModel};

/// Parses an engineering-notation value like `1k`, `10f`, `3.3meg`.
///
/// # Errors
///
/// Returns [`SpiceError::BadNetlist`] for malformed numbers.
pub fn parse_value(token: &str) -> Result<f64, SpiceError> {
    let t = token.trim().to_ascii_lowercase();
    let bad = || SpiceError::BadNetlist {
        context: format!("cannot parse value '{token}'"),
    };
    // Split number prefix from suffix.
    let split = t
        .char_indices()
        .find(|(_, ch)| !(ch.is_ascii_digit() || matches!(ch, '.' | '+' | '-' | 'e')))
        .map(|(i, _)| i)
        .unwrap_or(t.len());
    // Guard: "1e-9" keeps its exponent ("e" is followed by digit/sign).
    let (num_str, suffix) = t.split_at(split);
    let base: f64 = num_str.parse().map_err(|_| bad())?;
    let mult = match suffix {
        "" => 1.0,
        "f" => 1e-15,
        "p" => 1e-12,
        "n" => 1e-9,
        "u" => 1e-6,
        "m" => 1e-3,
        "k" => 1e3,
        "meg" => 1e6,
        "g" => 1e9,
        "t" => 1e12,
        _ => return Err(bad()),
    };
    Ok(base * mult)
}

/// Strips comments and joins `+` continuation lines.
fn preprocess(text: &str) -> Vec<String> {
    let mut lines: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.split('$').next().unwrap_or("").trim();
        if line.is_empty() || line.starts_with('*') {
            continue;
        }
        if let Some(cont) = line.strip_prefix('+') {
            if let Some(prev) = lines.last_mut() {
                prev.push(' ');
                prev.push_str(cont.trim());
                continue;
            }
        }
        lines.push(line.to_string());
    }
    lines
}

/// Parses a source specification (everything after the two node names).
fn parse_source(tokens: &[&str], name: &str) -> Result<Waveform, SpiceError> {
    let bad = |msg: &str| SpiceError::BadNetlist {
        context: format!("source {name}: {msg}"),
    };
    if tokens.is_empty() {
        return Err(bad("missing value"));
    }
    let joined = tokens.join(" ");
    let upper = joined.to_ascii_uppercase();
    if let Some(rest) = upper.strip_prefix("DC") {
        return Ok(Waveform::dc(parse_value(rest.trim())?));
    }
    if upper.starts_with("PULSE") {
        let args = extract_args(&joined)?;
        if args.len() != 7 {
            return Err(bad("PULSE needs 7 arguments (v1 v2 td tr tf pw per)"));
        }
        return Ok(Waveform::Pulse {
            v1: args[0],
            v2: args[1],
            delay: args[2],
            rise: args[3].max(1e-15),
            fall: args[4].max(1e-15),
            width: args[5],
            period: args[6],
        });
    }
    if upper.starts_with("PWL") {
        let args = extract_args(&joined)?;
        if args.len() < 2 || args.len() % 2 != 0 {
            return Err(bad("PWL needs an even number of arguments"));
        }
        let pts: Vec<(f64, f64)> = args.chunks(2).map(|c| (c[0], c[1])).collect();
        if pts.windows(2).any(|w| w[1].0 < w[0].0) {
            return Err(bad("PWL times must be non-decreasing"));
        }
        return Ok(Waveform::Pwl(pts));
    }
    // Bare value.
    Ok(Waveform::dc(parse_value(tokens[0])?))
}

/// Extracts the numbers inside `NAME(a b c)` or `NAME a b c`.
fn extract_args(spec: &str) -> Result<Vec<f64>, SpiceError> {
    let inner: String = match (spec.find('('), spec.rfind(')')) {
        (Some(lo), Some(hi)) if hi > lo => spec[lo + 1..hi].to_string(),
        _ => spec
            .split_whitespace()
            .skip(1)
            .collect::<Vec<_>>()
            .join(" "),
    };
    inner
        .split(|c: char| c.is_whitespace() || c == ',')
        .filter(|s| !s.is_empty())
        .map(parse_value)
        .collect()
}

/// Instantiates a built-in model card.
fn instantiate_model(card: &str, geom: Geometry) -> Result<Box<dyn MosfetModel>, SpiceError> {
    match card.to_ascii_lowercase().as_str() {
        "vsn" => Ok(Box::new(VsModel::nominal_nmos_40nm(geom))),
        "vsp" => Ok(Box::new(VsModel::nominal_pmos_40nm(geom))),
        "bsimn" => Ok(Box::new(BsimModel::nominal_nmos_40nm(geom))),
        "bsimp" => Ok(Box::new(BsimModel::nominal_pmos_40nm(geom))),
        other => Err(SpiceError::BadNetlist {
            context: format!("unknown model card '{other}' (expected vsn/vsp/bsimn/bsimp)"),
        }),
    }
}

/// Parses a netlist into a [`Circuit`].
///
/// # Errors
///
/// Returns [`SpiceError::BadNetlist`] with the offending line on any syntax
/// problem.
pub fn parse(text: &str) -> Result<Circuit, SpiceError> {
    let mut c = Circuit::new();
    for line in preprocess(text) {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let head = tokens[0];
        let err = |msg: String| SpiceError::BadNetlist {
            context: format!("line '{line}': {msg}"),
        };
        let kind = head
            .chars()
            .next()
            .expect("non-empty token")
            .to_ascii_uppercase();
        match kind {
            '.' => {
                let directive = head.to_ascii_lowercase();
                if directive == ".end" {
                    break;
                }
                // .model cards for the built-ins are implicit; other
                // directives are ignored (title-style) rather than fatal.
                continue;
            }
            'R' | 'C' => {
                if tokens.len() != 4 {
                    return Err(err(format!("{kind} element needs 4 fields")));
                }
                let a = c.node(tokens[1]);
                let b = c.node(tokens[2]);
                let v = parse_value(tokens[3])?;
                if v <= 0.0 {
                    return Err(err("value must be positive".into()));
                }
                if kind == 'R' {
                    c.resistor(head, a, b, v);
                } else {
                    c.capacitor(head, a, b, v);
                }
            }
            'V' | 'I' => {
                if tokens.len() < 4 {
                    return Err(err("source needs nodes and a value".into()));
                }
                let pos = c.node(tokens[1]);
                let neg = c.node(tokens[2]);
                let wave = parse_source(&tokens[3..], head)?;
                if kind == 'V' {
                    c.vsource(head, pos, neg, wave);
                } else {
                    c.isource(head, pos, neg, wave);
                }
            }
            'M' => {
                if tokens.len() < 6 {
                    return Err(err("MOSFET needs d g s b model [W= L=]".into()));
                }
                let d = c.node(tokens[1]);
                let g = c.node(tokens[2]);
                let s = c.node(tokens[3]);
                let b = c.node(tokens[4]);
                let card = tokens[5];
                let mut w = 600e-9;
                let mut l = 40e-9;
                for t in &tokens[6..] {
                    let lower = t.to_ascii_lowercase();
                    if let Some(v) = lower.strip_prefix("w=") {
                        w = parse_value(v)?;
                    } else if let Some(v) = lower.strip_prefix("l=") {
                        l = parse_value(v)?;
                    } else {
                        return Err(err(format!("unknown MOSFET parameter '{t}'")));
                    }
                }
                if w <= 0.0 || l <= 0.0 {
                    return Err(err("W and L must be positive".into()));
                }
                let model = instantiate_model(card, Geometry::new(w, l))?;
                c.mosfet(head, d, g, s, b, model);
            }
            other => {
                return Err(err(format!("unsupported element type '{other}'")));
            }
        }
    }
    c.validate()?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_with_suffixes() {
        assert_eq!(parse_value("1k").unwrap(), 1e3);
        assert!((parse_value("10f").unwrap() - 1e-14).abs() < 1e-26);
        assert!((parse_value("3.3meg").unwrap() - 3.3e6).abs() < 1e-3);
        assert!((parse_value("600n").unwrap() - 600e-9).abs() < 1e-18);
        assert!((parse_value("-2.5m").unwrap() + 2.5e-3).abs() < 1e-15);
        assert_eq!(parse_value("1e-9").unwrap(), 1e-9);
        assert_eq!(parse_value("2.0").unwrap(), 2.0);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("1x").is_err());
    }

    #[test]
    fn parses_divider_and_solves() {
        let c = parse(
            "* divider
             V1 in 0 DC 2.0
             R1 in mid 1k
             R2 mid 0 1k
             .end",
        )
        .unwrap();
        let op = crate::session::Session::elaborate(c.clone())
            .unwrap()
            .dc_owned()
            .unwrap();
        let mid = c.find_node("mid").unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parses_pulse_and_pwl_sources() {
        let c = parse(
            "V1 a 0 PULSE(0 0.9 1n 10p 10p 500p 2n)
             V2 b 0 PWL(0 0 1n 0.9)
             R1 a 0 1k
             R2 b 0 1k",
        )
        .unwrap();
        assert_eq!(c.elements().len(), 4);
        // Waveform values at known times.
        if let crate::elements::Element::Vsource { wave, .. } = &c.elements()[0] {
            assert_eq!(wave.value(0.0), 0.0);
            assert!((wave.value(1.2e-9) - 0.9).abs() < 1e-12);
        } else {
            panic!("expected vsource");
        }
    }

    #[test]
    fn parses_mosfet_with_geometry() {
        let c = parse(
            "VDD vdd 0 DC 0.9
             VIN in 0 DC 0.0
             MP out in vdd vdd vsp W=600n L=40n
             MN out in 0 0 vsn W=300n L=40n
             CL out 0 1f",
        )
        .unwrap();
        let op = crate::session::Session::elaborate(c.clone())
            .unwrap()
            .dc_owned()
            .unwrap();
        let out = c.find_node("out").unwrap();
        assert!(
            op.voltage(out) > 0.85,
            "inverter output high: {}",
            op.voltage(out)
        );
    }

    #[test]
    fn continuation_lines_join() {
        let c = parse(
            "V1 a 0
             + DC 1.5
             R1 a 0 1k",
        )
        .unwrap();
        let op = crate::session::Session::elaborate(c.clone())
            .unwrap()
            .dc_owned()
            .unwrap();
        assert!((op.voltage(c.find_node("a").unwrap()) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn comments_and_end_are_respected() {
        let c = parse(
            "* title
             V1 a 0 DC 1.0 $ supply
             R1 a 0 1k
             .end
             R2 ghost 0 1k",
        )
        .unwrap();
        // The post-.end element is ignored.
        assert!(c.find_node("ghost").is_none());
    }

    #[test]
    fn error_cases() {
        assert!(parse("R1 a 0").is_err()); // too few fields
        assert!(parse("R1 a 0 -5").is_err()); // negative resistance
        assert!(parse("Q1 a b c").is_err()); // unsupported element
        assert!(parse("M1 d g s b nomodel").is_err()); // unknown card
        assert!(parse("V1 a 0 PULSE(1 2 3)").is_err()); // short pulse
        assert!(parse("V1 a 0 PWL(1n 1 0 0)").is_err()); // non-monotone PWL
        assert!(parse("").is_err()); // empty netlist
    }

    #[test]
    fn bsim_cards_also_instantiate() {
        let c = parse(
            "VD d 0 DC 0.9
             VG g 0 DC 0.9
             M1 d g 0 0 bsimn W=600n L=40n",
        )
        .unwrap();
        let op = crate::session::Session::elaborate(c)
            .unwrap()
            .dc_owned()
            .unwrap();
        // Drain current flows: the supply sources it.
        assert!(op.vsource_current(0) < -1e-5);
    }
}
