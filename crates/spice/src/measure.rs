//! Waveform measurements: crossings, propagation delay, averages.

use numerics::roots::linear_crossing;

/// Which edge of a signal to look for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Low-to-high crossing.
    Rising,
    /// High-to-low crossing.
    Falling,
    /// Either direction.
    Any,
}

/// All level crossings of a sampled waveform, as `(time, rising)` pairs,
/// linearly interpolated between samples.
///
/// # Panics
///
/// Panics if `times` and `values` differ in length.
pub fn crossings(times: &[f64], values: &[f64], level: f64) -> Vec<(f64, bool)> {
    assert_eq!(times.len(), values.len(), "waveform length mismatch");
    let mut out = Vec::new();
    for i in 1..times.len() {
        let (y0, y1) = (values[i - 1], values[i]);
        if (y0 - level).signum() != (y1 - level).signum() && y0 != y1 {
            if let Some(t) = linear_crossing(times[i - 1], y0, times[i], y1, level) {
                out.push((t, y1 > y0));
            }
        }
    }
    out
}

/// Time of the first crossing of `level` at or after `t_min`, on the given
/// edge. Returns `None` if no such crossing exists.
pub fn cross_time(
    times: &[f64],
    values: &[f64],
    level: f64,
    edge: Edge,
    t_min: f64,
) -> Option<f64> {
    crossings(times, values, level)
        .into_iter()
        .find(|&(t, rising)| {
            t >= t_min
                && match edge {
                    Edge::Rising => rising,
                    Edge::Falling => !rising,
                    Edge::Any => true,
                }
        })
        .map(|(t, _)| t)
}

/// Propagation delay from the input's crossing of `level` (given edge) to
/// the output's next crossing of `level` (any edge).
///
/// Returns `None` when either crossing is missing — e.g. a functional
/// failure in a Monte Carlo sample.
pub fn prop_delay(
    times: &[f64],
    input: &[f64],
    output: &[f64],
    level: f64,
    input_edge: Edge,
) -> Option<f64> {
    let t_in = cross_time(times, input, level, input_edge, 0.0)?;
    let t_out = cross_time(times, output, level, Edge::Any, t_in)?;
    Some(t_out - t_in)
}

/// Trapezoidal time-average of a waveform.
///
/// # Panics
///
/// Panics if the waveform has fewer than 2 points or mismatched lengths.
pub fn average(times: &[f64], values: &[f64]) -> f64 {
    assert_eq!(times.len(), values.len(), "waveform length mismatch");
    assert!(times.len() >= 2, "average needs at least two samples");
    let mut integral = 0.0;
    for i in 1..times.len() {
        integral += 0.5 * (values[i] + values[i - 1]) * (times[i] - times[i - 1]);
    }
    integral / (times[times.len() - 1] - times[0])
}

/// Final settled value (the last sample).
///
/// # Panics
///
/// Panics on empty input.
pub fn final_value(values: &[f64]) -> f64 {
    *values.last().expect("empty waveform")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> (Vec<f64>, Vec<f64>) {
        // 0..1 V over 0..10 ns.
        let times: Vec<f64> = (0..=10).map(|i| i as f64 * 1e-9).collect();
        let values: Vec<f64> = (0..=10).map(|i| i as f64 * 0.1).collect();
        (times, values)
    }

    #[test]
    fn single_rising_crossing() {
        let (t, v) = ramp();
        let c = crossings(&t, &v, 0.55);
        assert_eq!(c.len(), 1);
        assert!(c[0].1);
        assert!((c[0].0 - 5.5e-9).abs() < 1e-15);
    }

    #[test]
    fn edge_filtering() {
        // Triangle: up then down.
        let t: Vec<f64> = (0..=20).map(|i| i as f64).collect();
        let v: Vec<f64> = (0..=20)
            .map(|i| if i <= 10 { i as f64 } else { 20.0 - i as f64 })
            .collect();
        assert!((cross_time(&t, &v, 5.0, Edge::Rising, 0.0).unwrap() - 5.0).abs() < 1e-12);
        assert!((cross_time(&t, &v, 5.0, Edge::Falling, 0.0).unwrap() - 15.0).abs() < 1e-12);
        assert_eq!(cross_time(&t, &v, 5.0, Edge::Rising, 6.0), None);
        assert!((cross_time(&t, &v, 5.0, Edge::Any, 6.0).unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn delay_between_shifted_ramps() {
        let t: Vec<f64> = (0..=100).map(|i| i as f64 * 0.1e-9).collect();
        let vin: Vec<f64> = t.iter().map(|&x| (x / 5e-9).min(1.0)).collect();
        let vout: Vec<f64> = t
            .iter()
            .map(|&x| ((x - 2e-9) / 5e-9).clamp(0.0, 1.0))
            .collect();
        let d = prop_delay(&t, &vin, &vout, 0.5, Edge::Rising).unwrap();
        assert!((d - 2e-9).abs() < 1e-12, "delay = {d}");
    }

    #[test]
    fn missing_crossing_returns_none() {
        let (t, v) = ramp();
        assert_eq!(cross_time(&t, &v, 2.0, Edge::Any, 0.0), None);
        let flat = vec![0.0; t.len()];
        assert_eq!(prop_delay(&t, &v, &flat, 0.5, Edge::Rising), None);
    }

    #[test]
    fn average_of_ramp() {
        let (t, v) = ramp();
        assert!((average(&t, &v) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn final_value_is_last() {
        assert_eq!(final_value(&[1.0, 2.0, 3.0]), 3.0);
    }
}
