//! Netlist construction: nodes, elements, and the circuit builder API.

use crate::elements::Element;
use crate::error::SpiceError;
use crate::waveform::Waveform;
use mosfet::MosfetModel;
use std::collections::HashMap;

/// A circuit node handle. Node 0 is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Index of this node's voltage among the MNA unknowns, or `None` for
    /// ground — the mapping into raw unknown vectors such as
    /// [`crate::dc::DcResult::raw`] and the solution rows of the
    /// [`crate::ac::Linearized`] matrices.
    #[must_use]
    pub fn unknown(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// A circuit under construction: an interned node table plus a list of
/// elements. Analyses ([`crate::dc`], [`crate::tran`]) borrow the circuit
/// immutably, so one netlist can be re-solved cheaply (e.g. in Monte Carlo
/// loops the netlist is rebuilt per sample only because device models
/// change).
#[derive(Debug, Clone, Default)]
pub struct Circuit {
    node_names: Vec<String>,
    by_name: HashMap<String, NodeId>,
    elements: Vec<Element>,
}

impl Circuit {
    /// The ground node (reference, 0 V).
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit (ground pre-registered).
    pub fn new() -> Self {
        let mut c = Circuit {
            node_names: vec!["0".to_string()],
            by_name: HashMap::new(),
            elements: Vec::new(),
        };
        c.by_name.insert("0".to_string(), NodeId(0));
        c.by_name.insert("gnd".to_string(), NodeId(0));
        c
    }

    /// Interns a node by name, creating it on first use.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    pub fn find_node(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// The elements added so far.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Mutable element access for [`crate::session::Session`]'s in-place
    /// device swaps — crate-private so external code cannot invalidate an
    /// elaborated layout.
    pub(crate) fn elements_mut(&mut self) -> &mut [Element] {
        &mut self.elements
    }

    /// The waveform of the voltage source named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] when the source is missing.
    pub fn vsource_waveform(&self, name: &str) -> Result<&Waveform, SpiceError> {
        for e in &self.elements {
            if let Element::Vsource { name: n, wave, .. } = e {
                if n == name {
                    return Ok(wave);
                }
            }
        }
        Err(SpiceError::BadNetlist {
            context: format!("no voltage source named {name}"),
        })
    }

    /// Adds a resistor.
    ///
    /// # Panics
    ///
    /// Panics if `r <= 0`.
    pub fn resistor(&mut self, name: &str, a: NodeId, b: NodeId, r: f64) -> &mut Self {
        assert!(r > 0.0, "resistor {name} must have positive resistance");
        self.elements.push(Element::Resistor {
            name: name.to_string(),
            a,
            b,
            r,
        });
        self
    }

    /// Adds a capacitor.
    ///
    /// # Panics
    ///
    /// Panics if `c <= 0`.
    pub fn capacitor(&mut self, name: &str, a: NodeId, b: NodeId, c: f64) -> &mut Self {
        assert!(c > 0.0, "capacitor {name} must have positive capacitance");
        self.elements.push(Element::Capacitor {
            name: name.to_string(),
            a,
            b,
            c,
        });
        self
    }

    /// Adds an independent voltage source.
    pub fn vsource(&mut self, name: &str, pos: NodeId, neg: NodeId, wave: Waveform) -> &mut Self {
        self.elements.push(Element::Vsource {
            name: name.to_string(),
            pos,
            neg,
            wave,
        });
        self
    }

    /// Adds an independent current source pushing current into `pos`.
    pub fn isource(&mut self, name: &str, pos: NodeId, neg: NodeId, wave: Waveform) -> &mut Self {
        self.elements.push(Element::Isource {
            name: name.to_string(),
            pos,
            neg,
            wave,
        });
        self
    }

    /// Adds a MOSFET with the given compact model instance.
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        model: Box<dyn MosfetModel>,
    ) -> &mut Self {
        self.elements.push(Element::Mosfet {
            name: name.to_string(),
            d,
            g,
            s,
            b,
            model,
        });
        self
    }

    /// Index of the voltage source named `name` among the voltage sources
    /// (its branch-current position), plus a sanity check that it exists.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] when the source is missing.
    pub fn vsource_index(&self, name: &str) -> Result<usize, SpiceError> {
        let mut idx = 0;
        for e in &self.elements {
            if let Element::Vsource { name: n, .. } = e {
                if n == name {
                    return Ok(idx);
                }
                idx += 1;
            }
        }
        Err(SpiceError::BadNetlist {
            context: format!("no voltage source named {name}"),
        })
    }

    /// Replaces the waveform of an existing voltage source (used by sweeps
    /// and the setup-time search).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] when the source is missing.
    pub fn set_vsource(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        for e in &mut self.elements {
            if let Element::Vsource {
                name: n, wave: w, ..
            } = e
            {
                if n == name {
                    *w = wave;
                    return Ok(());
                }
            }
        }
        Err(SpiceError::BadNetlist {
            context: format!("no voltage source named {name}"),
        })
    }

    /// Number of voltage sources (each contributes one branch unknown).
    pub(crate) fn n_vsources(&self) -> usize {
        self.elements
            .iter()
            .filter(|e| matches!(e, Element::Vsource { .. }))
            .count()
    }

    /// Total number of MNA unknowns: node voltages (minus ground) + branch
    /// currents.
    pub(crate) fn n_unknowns(&self) -> usize {
        (self.node_count() - 1) + self.n_vsources()
    }

    /// Validates the netlist: every non-ground node must be reachable from
    /// at least one element terminal (no typo'd dangling references) and at
    /// least one element must exist.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] for empty netlists.
    pub fn validate(&self) -> Result<(), SpiceError> {
        if self.elements.is_empty() {
            return Err(SpiceError::BadNetlist {
                context: "circuit has no elements".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_interning_is_idempotent() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let a2 = c.node("a");
        assert_eq!(a, a2);
        assert_eq!(c.node_count(), 2);
        assert_eq!(c.node_name(a), "a");
    }

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), Circuit::GROUND);
        assert_eq!(c.node("gnd"), Circuit::GROUND);
        assert_eq!(Circuit::GROUND.unknown(), None);
    }

    #[test]
    fn unknown_indices_skip_ground() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let b = c.node("b");
        assert_eq!(a.unknown(), Some(0));
        assert_eq!(b.unknown(), Some(1));
    }

    #[test]
    fn vsource_index_counts_only_vsources() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, 1.0);
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.vsource("V2", a, Circuit::GROUND, Waveform::dc(2.0));
        assert_eq!(c.vsource_index("V1").unwrap(), 0);
        assert_eq!(c.vsource_index("V2").unwrap(), 1);
        assert!(c.vsource_index("V3").is_err());
        assert_eq!(c.n_vsources(), 2);
        assert_eq!(c.n_unknowns(), 3);
    }

    #[test]
    fn set_vsource_replaces_waveform() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.set_vsource("V1", Waveform::dc(2.0)).unwrap();
        if let Element::Vsource { wave, .. } = &c.elements()[0] {
            assert_eq!(wave.dc_value(), 2.0);
        } else {
            panic!("expected vsource");
        }
    }

    #[test]
    fn empty_circuit_fails_validation() {
        assert!(Circuit::new().validate().is_err());
    }

    #[test]
    #[should_panic]
    fn negative_resistance_panics() {
        let mut c = Circuit::new();
        let a = c.node("a");
        c.resistor("R1", a, Circuit::GROUND, -1.0);
    }
}
