//! Transient options/result types and dynamic-state bookkeeping.
//!
//! The integration loop itself (fixed base step with waveform-breakpoint
//! alignment, trapezoidal with backward-Euler restarts, recursive step
//! halving) lives in [`crate::session::Session`]; the state-update kernels
//! it uses are here, next to the element definitions they mirror.

use crate::elements::Element;
use crate::engine::{Integrator, TranState};
use crate::netlist::{Circuit, NodeId};
use mosfet::Bias;

/// Options for a transient analysis ([`crate::session::Analysis::Tran`]).
#[derive(Debug, Clone)]
pub struct TranOptions {
    /// Simulation end time, s.
    pub tstop: f64,
    /// Base time step, s.
    pub dt: f64,
    /// Initial node-voltage guesses for the t=0 operating point (selects the
    /// state of bistable circuits).
    pub ic: Vec<(NodeId, f64)>,
    /// Use trapezoidal integration (second order) with backward-Euler
    /// startup. `false` forces backward Euler everywhere — more damped,
    /// first-order accurate; exposed for the integration-accuracy ablation.
    pub trapezoidal: bool,
}

impl TranOptions {
    /// Creates options with the given stop time and base step.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt <= tstop`.
    pub fn new(tstop: f64, dt: f64) -> Self {
        assert!(dt > 0.0 && dt <= tstop, "need 0 < dt <= tstop");
        TranOptions {
            tstop,
            dt,
            ic: Vec::new(),
            trapezoidal: true,
        }
    }

    /// Adds an initial-condition guess.
    #[must_use]
    pub fn with_ic(mut self, node: NodeId, v: f64) -> Self {
        self.ic.push((node, v));
        self
    }

    /// Forces backward Euler for every step.
    #[must_use]
    pub fn backward_euler(mut self) -> Self {
        self.trapezoidal = false;
        self
    }
}

/// A transient waveform set: all unknowns at every accepted time point.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    snapshots: Vec<Vec<f64>>,
    nn: usize,
}

impl TranResult {
    pub(crate) fn new(times: Vec<f64>, snapshots: Vec<Vec<f64>>, nn: usize) -> Self {
        TranResult {
            times,
            snapshots,
            nn,
        }
    }

    /// The accepted time points, s.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Number of stored points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when no points were stored (cannot happen for a successful run).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Voltage waveform of a node (plural: one value per time point, in
    /// line with [`crate::dc::SweepResult::voltages`]).
    #[must_use]
    pub fn voltages(&self, node: NodeId) -> Vec<f64> {
        match node.unknown() {
            None => vec![0.0; self.len()],
            Some(i) => self.snapshots.iter().map(|x| x[i]).collect(),
        }
    }

    /// Branch-current waveform of the `k`-th voltage source.
    #[must_use]
    pub fn vsource_currents(&self, k: usize) -> Vec<f64> {
        self.snapshots.iter().map(|x| x[self.nn + k]).collect()
    }
}

/// Fills `st` with the dynamic (charge-storage) state implied by the solved
/// operating point `x`, reusing the buffers' capacity.
pub(crate) fn init_state(circuit: &Circuit, x: &[f64], st: &mut TranState) {
    let volt = |n: NodeId| n.unknown().map_or(0.0, |i| x[i]);
    st.cap_v.clear();
    st.cap_i.clear();
    st.mos_q.clear();
    st.mos_i.clear();
    for e in circuit.elements() {
        match e {
            Element::Capacitor { a, b, .. } => {
                st.cap_v.push(volt(*a) - volt(*b));
                st.cap_i.push(0.0);
            }
            Element::Mosfet {
                d, g, s, b, model, ..
            } => {
                let bias = Bias {
                    vgs: volt(*g) - volt(*s),
                    vds: volt(*d) - volt(*s),
                    vbs: volt(*b) - volt(*s),
                };
                let q = model.charges(bias);
                st.mos_q.push([q.qg, q.qd, q.qs, q.qb]);
                st.mos_i.push([0.0; 4]);
            }
            _ => {}
        }
    }
}

/// Writes the dynamic state at the end of an accepted step into `out`
/// (reusing capacity), given the previous state `prev` and the new solution
/// `x`.
pub(crate) fn update_state(
    circuit: &Circuit,
    x: &[f64],
    prev: &TranState,
    h: f64,
    method: Integrator,
    out: &mut TranState,
) {
    let volt = |n: NodeId| n.unknown().map_or(0.0, |i| x[i]);
    out.cap_v.clear();
    out.cap_i.clear();
    out.mos_q.clear();
    out.mos_i.clear();
    let mut c_idx = 0;
    let mut m_idx = 0;
    for e in circuit.elements() {
        match e {
            Element::Capacitor { a, b, c, .. } => {
                let v_new = volt(*a) - volt(*b);
                let v_old = prev.cap_v[c_idx];
                let i_new = match method {
                    Integrator::BackwardEuler => c / h * (v_new - v_old),
                    Integrator::Trapezoidal => 2.0 * c / h * (v_new - v_old) - prev.cap_i[c_idx],
                };
                out.cap_v.push(v_new);
                out.cap_i.push(i_new);
                c_idx += 1;
            }
            Element::Mosfet {
                d, g, s, b, model, ..
            } => {
                let bias = Bias {
                    vgs: volt(*g) - volt(*s),
                    vds: volt(*d) - volt(*s),
                    vbs: volt(*b) - volt(*s),
                };
                let q = model.charges(bias);
                let q_new = [q.qg, q.qd, q.qs, q.qb];
                let q_old = prev.mos_q[m_idx];
                let mut i_new = [0.0; 4];
                for t in 0..4 {
                    i_new[t] = match method {
                        Integrator::BackwardEuler => (q_new[t] - q_old[t]) / h,
                        Integrator::Trapezoidal => {
                            2.0 * (q_new[t] - q_old[t]) / h - prev.mos_i[m_idx][t]
                        }
                    };
                }
                out.mos_q.push(q_new);
                out.mos_i.push(i_new);
                m_idx += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::waveform::Waveform;

    fn session(c: Circuit) -> Session {
        Session::elaborate(c).unwrap()
    }

    /// RC charging: v(t) = V (1 - exp(-t/RC)).
    #[test]
    fn rc_step_response_matches_analytic() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.0, 1e-12),
        );
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let res = session(ckt)
            .tran_owned(&TranOptions::new(5.0 * tau, tau / 100.0))
            .unwrap();
        let v = res.voltages(out);
        for (i, &t) in res.times().iter().enumerate() {
            let expected = 1.0 - (-t / tau).exp();
            assert!(
                (v[i] - expected).abs() < 5e-3,
                "t={t:.3e}: {} vs {}",
                v[i],
                expected
            );
        }
    }

    /// RC discharge through trapezoidal integration conserves monotonicity
    /// (no ringing artifacts).
    #[test]
    fn rc_response_is_monotone() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 1e-9, 1e-12),
        );
        ckt.resistor("R1", vin, out, 1e3);
        ckt.capacitor("C1", out, Circuit::GROUND, 1e-12);
        let res = session(ckt)
            .tran_owned(&TranOptions::new(10e-9, 0.05e-9))
            .unwrap();
        let v = res.voltages(out);
        for w in v.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "ringing: {} -> {}", w[0], w[1]);
        }
        assert!(v[res.len() - 1] > 0.99);
    }

    /// A floating RC divider: two series capacitors divide a step by the
    /// inverse capacitance ratio.
    #[test]
    fn capacitive_divider() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.1e-9, 1e-12),
        );
        ckt.capacitor("C1", vin, mid, 3e-12);
        ckt.capacitor("C2", mid, Circuit::GROUND, 1e-12);
        let res = session(ckt)
            .tran_owned(&TranOptions::new(1e-9, 0.01e-9))
            .unwrap();
        let v = res.voltages(mid);
        // Divider: C1/(C1+C2) = 0.75 right after the step.
        let last = v[res.len() - 1];
        assert!((last - 0.75).abs() < 0.02, "divider = {last}");
    }

    #[test]
    fn pulse_source_waveform_is_tracked() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource(
            "V1",
            a,
            Circuit::GROUND,
            Waveform::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 1e-9,
                rise: 0.1e-9,
                fall: 0.1e-9,
                width: 1e-9,
                period: 0.0,
            },
        );
        ckt.resistor("R1", a, Circuit::GROUND, 1e3);
        let res = session(ckt)
            .tran_owned(&TranOptions::new(4e-9, 0.05e-9))
            .unwrap();
        let v = res.voltages(a);
        let t = res.times();
        // Before the pulse, 0; on the flat top, 1.
        let idx_before = t.iter().position(|&x| x > 0.5e-9).unwrap();
        assert!(v[idx_before].abs() < 1e-9);
        let idx_top = t.iter().position(|&x| x > 1.6e-9).unwrap();
        assert!((v[idx_top] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn bad_options_panic() {
        TranOptions::new(1e-9, 0.0);
    }

    /// Integration-order ablation: at the same step size, trapezoidal beats
    /// backward Euler by a large factor on a smooth RC response.
    #[test]
    fn trapezoidal_beats_backward_euler() {
        let r = 1e3;
        let c = 1e-9;
        let tau = r * c;
        let build = || {
            let mut ckt = Circuit::new();
            let vin = ckt.node("in");
            let out = ckt.node("out");
            ckt.vsource(
                "V1",
                vin,
                Circuit::GROUND,
                Waveform::step(0.0, 1.0, 0.0, 1e-12),
            );
            ckt.resistor("R1", vin, out, r);
            ckt.capacitor("C1", out, Circuit::GROUND, c);
            (ckt, out)
        };
        let max_err = |res: &TranResult, out: NodeId| {
            let v = res.voltages(out);
            res.times()
                .iter()
                .zip(&v)
                .map(|(&t, &vi)| (vi - (1.0 - (-t / tau).exp())).abs())
                .fold(0.0_f64, f64::max)
        };
        let (ckt, out) = build();
        let coarse = tau / 12.0;
        let mut s = session(ckt);
        let trap = s.tran_owned(&TranOptions::new(4.0 * tau, coarse)).unwrap();
        let be = s
            .tran_owned(&TranOptions::new(4.0 * tau, coarse).backward_euler())
            .unwrap();
        let e_trap = max_err(&trap, out);
        let e_be = max_err(&be, out);
        assert!(
            e_trap < 0.4 * e_be,
            "trap err {e_trap:.2e} should be well below BE err {e_be:.2e}"
        );
    }
}
