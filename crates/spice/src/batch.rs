//! Batched K-lane DC stamping and Newton iteration.
//!
//! One pass over the circuit topology writes K MNA systems (one per Monte
//! Carlo lane) into lane-major [`BMatrix`] storage, then a batched Newton
//! loop factors and solves all active lanes through
//! [`numerics::blu::BLu`]. Per-lane state (iterate, damping, convergence,
//! failure) is fully independent: the sharing is *traversal and layout*,
//! never arithmetic, so lane `l` performs exactly the floating-point
//! operation sequence of a scalar [`crate::engine::newton`] solve from the
//! same starting point — the bit-identity contract
//! [`crate::session::Session::dc_batch`] exposes and the
//! `batch_equivalence` suite pins.
//!
//! Static elements (resistors, sources) evaluate once per element and
//! stamp into every active lane; MOSFETs evaluate per lane through
//! [`LaneModels`] — structure-of-arrays columns
//! ([`mosfet::soa::VsSoa`]) when every lane is a Virtual Source model,
//! boxed dynamic dispatch otherwise.

use crate::elements::Element;
use crate::engine::{mos_dc_stamp, volt, GMIN_FLOOR, I_TOL, KCL_TOL, MAX_DV, MAX_NEWTON, V_TOL};
use crate::error::SpiceError;
use crate::netlist::Circuit;
use mosfet::soa::VsSoa;
use mosfet::{Bias, MosfetModel};
use numerics::blu::{BLu, BMatrix};

/// K models for one MOSFET element, one per batch lane.
pub(crate) enum LaneModels<'a> {
    /// All lanes are Virtual Source instances of one polarity: evaluate
    /// through statically dispatched SoA columns (boxed: the column
    /// handles dwarf the `Dyn` variant, and the enum lives in a
    /// per-element `Vec`).
    Soa(Box<VsSoa>),
    /// Mixed or non-VS lanes: per-lane dynamic dispatch.
    Dyn(Vec<&'a dyn MosfetModel>),
}

impl<'a> LaneModels<'a> {
    /// Regroups one model per lane, preferring the SoA fast path.
    pub(crate) fn from_lanes(models: &[&'a dyn MosfetModel]) -> Self {
        let vs: Option<Vec<_>> = models.iter().map(|m| m.as_vs()).collect();
        if let Some(vs) = vs {
            if let Some(soa) = VsSoa::from_models(vs) {
                return LaneModels::Soa(Box::new(soa));
            }
        }
        LaneModels::Dyn(models.to_vec())
    }

    /// Drain current of lane `l` — bit-identical to the boxed model's
    /// `ids` in both arms (see [`VsSoa::ids`]).
    fn ids(&self, l: usize, bias: Bias) -> f64 {
        match self {
            LaneModels::Soa(soa) => soa.ids(l, bias),
            LaneModels::Dyn(models) => models[l].ids(bias),
        }
    }
}

/// Scratch space for batched DC Newton solves, reused across batches by
/// [`crate::session::Session`]. All per-lane vectors are lane-major: lane
/// `l` of an `n`-unknown system occupies `[l*n, (l+1)*n)`.
#[derive(Debug)]
pub(crate) struct BatchWorkspace {
    n: usize,
    nn: usize,
    k: usize,
    a: BMatrix,
    b: Vec<f64>,
    blu: BLu,
    x: Vec<f64>,
    x_new: Vec<f64>,
    active: Vec<bool>,
    check: Vec<bool>,
}

impl BatchWorkspace {
    /// Allocates storage for `k` lanes of an `n`-unknown, `nn`-node system.
    pub(crate) fn new(n: usize, nn: usize, k: usize) -> Result<Self, SpiceError> {
        Ok(BatchWorkspace {
            n,
            nn,
            k,
            a: BMatrix::zeros(n, k)?,
            b: vec![0.0; k * n],
            blu: BLu::new(n, k)?,
            x: vec![0.0; k * n],
            x_new: vec![0.0; k * n],
            active: vec![false; k],
            check: vec![false; k],
        })
    }

    /// Whether this workspace fits a `k`-lane batch of an `n`-unknown system.
    pub(crate) fn fits(&self, n: usize, k: usize) -> bool {
        self.n == n && self.k == k
    }
}

/// Assembles the DC companion-model system for every lane where `active`
/// is `true`, in one pass over the topology. Per lane, the element visit
/// order — and therefore every floating-point accumulation — matches the
/// scalar [`crate::engine::assemble`] exactly.
#[allow(clippy::too_many_arguments)]
fn assemble_batch(
    circuit: &Circuit,
    mos: &[LaneModels<'_>],
    xs: &[f64],
    gmin: f64,
    source_scale: f64,
    active: &[bool],
    a: &mut BMatrix,
    b: &mut [f64],
    nn: usize,
) {
    let n = a.order();
    // Active-lane iteration is allocation-free: `assemble_batch` runs once
    // per Newton iteration, so even one scratch `Vec` here would churn.
    let lanes = move || (0..active.len()).filter(|&l| active[l]);
    for l in lanes() {
        a.zero_lane(l);
        b[l * n..(l + 1) * n].iter_mut().for_each(|v| *v = 0.0);
    }

    // Conductance floor on every node keeps gates/floating nodes pinned.
    for l in lanes() {
        let lane = a.lane_mut(l);
        for i in 0..nn {
            lane[i * n + i] += GMIN_FLOOR + gmin;
        }
    }

    let mut v_idx = 0usize; // voltage-source branch counter
    let mut m_idx = 0usize; // mosfet counter

    for e in circuit.elements() {
        match e {
            Element::Resistor {
                a: na, b: nb, r, ..
            } => {
                let g = 1.0 / r;
                let (iu, ju) = (na.unknown(), nb.unknown());
                for l in lanes() {
                    let lane = a.lane_mut(l);
                    if let Some(i) = iu {
                        lane[i * n + i] += g;
                    }
                    if let Some(j) = ju {
                        lane[j * n + j] += g;
                    }
                    if let (Some(i), Some(j)) = (iu, ju) {
                        lane[i * n + j] -= g;
                        lane[j * n + i] -= g;
                    }
                }
            }
            Element::Capacitor { .. } => {} // open in DC
            Element::Vsource { pos, neg, wave, .. } => {
                let row = nn + v_idx;
                let val = wave.value(0.0) * source_scale;
                let (pu, nu) = (pos.unknown(), neg.unknown());
                for l in lanes() {
                    let lane = a.lane_mut(l);
                    if let Some(i) = pu {
                        lane[i * n + row] += 1.0;
                        lane[row * n + i] += 1.0;
                    }
                    if let Some(j) = nu {
                        lane[j * n + row] -= 1.0;
                        lane[row * n + j] -= 1.0;
                    }
                    b[l * n + row] = val;
                }
                v_idx += 1;
            }
            Element::Isource { pos, neg, wave, .. } => {
                // Current into pos = current leaving neg.
                let i_ab = wave.value(0.0) * source_scale;
                let (nu, pu) = (neg.unknown(), pos.unknown());
                for l in lanes() {
                    if let Some(i) = nu {
                        b[l * n + i] -= i_ab;
                    }
                    if let Some(j) = pu {
                        b[l * n + j] += i_ab;
                    }
                }
            }
            Element::Mosfet { d, g, s, b: nb, .. } => {
                let lm = &mos[m_idx];
                let bulk_tied = nb == s;
                let du = d.unknown();
                let gu = g.unknown();
                let su = s.unknown();
                let bu = nb.unknown();
                for l in lanes() {
                    let x = &xs[l * n..(l + 1) * n];
                    let vd = volt(x, *d);
                    let vg = volt(x, *g);
                    let vs = volt(x, *s);
                    let vb = volt(x, *nb);
                    let bias = Bias {
                        vgs: vg - vs,
                        vds: vd - vs,
                        vbs: vb - vs,
                    };
                    let st = mos_dc_stamp(|db| lm.ids(l, db), bias, bulk_tied);
                    let lane = a.lane_mut(l);
                    if let Some(i) = du {
                        if let Some(j) = gu {
                            lane[i * n + j] += st.gm;
                        }
                        lane[i * n + i] += st.gds;
                        if let Some(j) = bu {
                            lane[i * n + j] += st.gmb;
                        }
                        if let Some(j) = su {
                            lane[i * n + j] -= st.gsum;
                        }
                        b[l * n + i] -= st.ieq;
                    }
                    if let Some(i) = su {
                        if let Some(j) = gu {
                            lane[i * n + j] -= st.gm;
                        }
                        if let Some(j) = du {
                            lane[i * n + j] -= st.gds;
                        }
                        if let Some(j) = bu {
                            lane[i * n + j] -= st.gmb;
                        }
                        lane[i * n + i] += st.gsum;
                        b[l * n + i] += st.ieq;
                    }
                }
                m_idx += 1;
            }
        }
    }
}

/// Batched damped Newton-Raphson: all lanes start from `x0` and iterate
/// together; each lane converges, fails, or exhausts the budget on its
/// own (per-lane failure isolation). Returns one result per lane, where
/// `Ok` holds the lane's solution vector and every error carries the same
/// message the scalar [`crate::engine::newton`] would produce at the same
/// iteration.
pub(crate) fn newton_batch(
    circuit: &Circuit,
    mos: &[LaneModels<'_>],
    x0: &[f64],
    ws: &mut BatchWorkspace,
) -> Vec<Result<Vec<f64>, SpiceError>> {
    let (n, nn, k) = (ws.n, ws.nn, ws.k);
    debug_assert_eq!(x0.len(), n);
    for l in 0..k {
        ws.x[l * n..(l + 1) * n].copy_from_slice(x0);
    }
    ws.active.iter_mut().for_each(|a| *a = true);
    let mut done: Vec<Option<Result<Vec<f64>, SpiceError>>> = (0..k).map(|_| None).collect();

    for iter in 0..MAX_NEWTON {
        if !ws.active.iter().any(|&a| a) {
            break;
        }
        assemble_batch(
            circuit, mos, &ws.x, 0.0, 1.0, &ws.active, &mut ws.a, &mut ws.b, nn,
        );
        ws.blu
            .refactor_batch(&ws.a, &ws.active)
            .expect("batch workspace dimensions are consistent by construction");
        // Lanes whose Jacobian is singular fail exactly like scalar Newton.
        for l in 0..k {
            if ws.active[l] && !ws.blu.lane_ok(l) {
                let e = ws.blu.lane_status(l).clone().unwrap_err();
                done[l] = Some(Err(SpiceError::SingularSystem {
                    context: format!("newton iteration {iter}: {e}"),
                }));
                ws.active[l] = false;
            }
        }
        ws.blu
            .solve_batch(&ws.b, &mut ws.x_new, &ws.active)
            .expect("failed lanes were deactivated above");
        // Per-lane damped update, convergence, and divergence checks —
        // the exact scalar Newton sequence on each lane's own state.
        ws.check.iter_mut().for_each(|c| *c = false);
        for l in 0..k {
            if !ws.active[l] {
                continue;
            }
            let x = &mut ws.x[l * n..(l + 1) * n];
            let x_new = &ws.x_new[l * n..(l + 1) * n];
            let mut max_dv = 0.0_f64;
            let mut max_di = 0.0_f64;
            for i in 0..n {
                let d = x_new[i] - x[i];
                if i < nn {
                    max_dv = max_dv.max(d.abs());
                } else {
                    max_di = max_di.max(d.abs());
                }
            }
            let scale = if max_dv > MAX_DV {
                MAX_DV / max_dv
            } else {
                1.0
            };
            for i in 0..n {
                x[i] += scale * (x_new[i] - x[i]);
            }
            if !x.iter().all(|v| v.is_finite()) {
                done[l] = Some(Err(SpiceError::NoConvergence {
                    analysis: "newton",
                    detail: format!("non-finite iterate at iteration {iter}"),
                }));
                ws.active[l] = false;
                continue;
            }
            if scale == 1.0 && max_dv < V_TOL && max_di < I_TOL {
                done[l] = Some(Ok(x.to_vec()));
                ws.active[l] = false;
                continue;
            }
            // Weak-convergence escape candidate: a stalled but possibly
            // current-consistent iterate — verified below via the KCL
            // residual, matching the scalar escape.
            if scale == 1.0 && max_dv < 1e-4 && iter > 20 {
                ws.check[l] = true;
            }
        }
        if ws.check.iter().any(|&c| c) {
            // Re-assemble only the candidate lanes at their updated
            // iterates; their storage is rebuilt next iteration anyway.
            assemble_batch(
                circuit, mos, &ws.x, 0.0, 1.0, &ws.check, &mut ws.a, &mut ws.b, nn,
            );
            for l in 0..k {
                if !ws.check[l] {
                    continue;
                }
                let lane = ws.a.lane(l);
                let x = &ws.x[l * n..(l + 1) * n];
                let mut worst = 0.0_f64;
                for i in 0..nn {
                    let mut s = -ws.b[l * n + i];
                    for j in 0..n {
                        s += lane[i * n + j] * x[j];
                    }
                    worst = worst.max(s.abs());
                }
                if worst < KCL_TOL {
                    done[l] = Some(Ok(x.to_vec()));
                    ws.active[l] = false;
                }
            }
        }
    }

    done.into_iter()
        .map(|d| {
            d.unwrap_or_else(|| {
                Err(SpiceError::NoConvergence {
                    analysis: "newton",
                    detail: format!("no convergence in {MAX_NEWTON} iterations"),
                })
            })
        })
        .collect()
}
