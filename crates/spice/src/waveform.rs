//! Time-dependent source waveforms.

/// Waveform of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value.
    Dc(f64),
    /// Periodic trapezoidal pulse (SPICE `PULSE`).
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, s.
        delay: f64,
        /// Rise time, s (must be > 0).
        rise: f64,
        /// Fall time, s (must be > 0).
        fall: f64,
        /// Pulse width at `v2`, s.
        width: f64,
        /// Period, s (`0` or `inf` means single-shot).
        period: f64,
    },
    /// Piecewise-linear waveform: sorted `(time, value)` pairs; constant
    /// extrapolation outside the range.
    Pwl(Vec<(f64, f64)>),
}

impl Waveform {
    /// Constant source.
    pub fn dc(v: f64) -> Waveform {
        Waveform::Dc(v)
    }

    /// A single low-to-high step at `t0` with the given rise time.
    pub fn step(v_low: f64, v_high: f64, t0: f64, rise: f64) -> Waveform {
        Waveform::Pwl(vec![(t0, v_low), (t0 + rise, v_high)])
    }

    /// Value at time `t`. For DC analysis use `t = 0` semantics via
    /// [`Waveform::dc_value`].
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < *delay {
                    return *v1;
                }
                let mut tau = t - delay;
                if *period > 0.0 && period.is_finite() {
                    tau %= period;
                }
                if tau < *rise {
                    v1 + (v2 - v1) * tau / rise
                } else if tau < rise + width {
                    *v2
                } else if tau < rise + width + fall {
                    v2 + (v1 - v2) * (tau - rise - width) / fall
                } else {
                    *v1
                }
            }
            Waveform::Pwl(points) => {
                if points.is_empty() {
                    return 0.0;
                }
                if t <= points[0].0 {
                    return points[0].1;
                }
                if t >= points[points.len() - 1].0 {
                    return points[points.len() - 1].1;
                }
                for w in points.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t >= t0 && t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                points[points.len() - 1].1
            }
        }
    }

    /// The value used during DC analysis (time-zero / initial value).
    pub fn dc_value(&self) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse { v1, .. } => *v1,
            Waveform::Pwl(points) => points.first().map_or(0.0, |p| p.1),
        }
    }

    /// Times at which the waveform has slope discontinuities within
    /// `[0, tstop]`; the transient engine aligns steps to these.
    pub fn breakpoints(&self, tstop: f64) -> Vec<f64> {
        match self {
            Waveform::Dc(_) => vec![],
            Waveform::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut out = Vec::new();
                let mut base = *delay;
                loop {
                    for t in [
                        base,
                        base + rise,
                        base + rise + width,
                        base + rise + width + fall,
                    ] {
                        if t <= tstop {
                            out.push(t);
                        }
                    }
                    if *period > 0.0 && period.is_finite() && base + period <= tstop {
                        base += period;
                    } else {
                        break;
                    }
                }
                out
            }
            Waveform::Pwl(points) => points
                .iter()
                .map(|p| p.0)
                .filter(|&t| t >= 0.0 && t <= tstop)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::dc(1.5);
        assert_eq!(w.value(0.0), 1.5);
        assert_eq!(w.value(1e9), 1.5);
        assert_eq!(w.dc_value(), 1.5);
        assert!(w.breakpoints(1.0).is_empty());
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1.0,
            rise: 0.1,
            fall: 0.2,
            width: 0.5,
            period: 0.0,
        };
        assert_eq!(w.value(0.5), 0.0);
        assert!((w.value(1.05) - 0.5).abs() < 1e-12); // mid-rise
        assert_eq!(w.value(1.3), 1.0); // flat top
        assert!((w.value(1.7) - 0.5).abs() < 1e-12); // mid-fall
        assert_eq!(w.value(3.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_periodicity() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 0.0,
            rise: 0.1,
            fall: 0.1,
            width: 0.3,
            period: 1.0,
        };
        assert!((w.value(0.2) - w.value(1.2)).abs() < 1e-12);
        assert!((w.value(0.45) - w.value(2.45)).abs() < 1e-12);
    }

    #[test]
    fn pwl_interpolates_and_extrapolates() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 2.0)]);
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(1.5), 1.0);
        assert_eq!(w.value(5.0), 2.0);
    }

    #[test]
    fn step_constructor() {
        let w = Waveform::step(0.0, 0.9, 1e-9, 10e-12);
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(2e-9), 0.9);
        assert!((w.value(1e-9 + 5e-12) - 0.45).abs() < 1e-9);
    }

    #[test]
    fn breakpoints_cover_edges() {
        let w = Waveform::Pulse {
            v1: 0.0,
            v2: 1.0,
            delay: 1e-9,
            rise: 0.1e-9,
            fall: 0.1e-9,
            width: 0.5e-9,
            period: 0.0,
        };
        let bp = w.breakpoints(10e-9);
        assert_eq!(bp.len(), 4);
        assert!((bp[0] - 1e-9).abs() < 1e-21);
    }
}
