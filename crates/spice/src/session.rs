//! Session-based simulation: elaborate once, run many analyses.
//!
//! [`Session`] is the primary analysis surface of this crate. It takes
//! ownership of a finished [`Circuit`], elaborates it once (validation,
//! node/branch layout, workspace and LU scratch allocation), and then runs
//! any number of analyses against that fixed topology:
//!
//! * every [`Analysis`] request returns a stable [`RunId`] into the
//!   session's [`ResultStore`];
//! * `*_owned` convenience methods bypass the store for hot loops;
//! * [`Session::swap_devices`] / [`Session::swap_all_mosfets`] resample
//!   MOSFET instances *in place* — the Monte Carlo fast path: no re-parse,
//!   no re-elaboration, and the next DC solve warm-starts from the previous
//!   sample's operating point (stored results of the pre-swap circuit are
//!   invalidated);
//! * [`Session::ac_batch`] runs resample→sweep AC Monte Carlo batches,
//!   amortizing the guessed operating-point solve and reusing one cached
//!   [`AcWorkspace`] across all samples;
//! * [`Session::set_source`] retargets a stimulus (setup/hold searches,
//!   sweeps) without rebuilding the netlist.

use crate::ac::{AcResult, AcWorkspace};
use crate::batch::{newton_batch, BatchWorkspace, LaneModels};
use crate::dc::{DcResult, SweepResult};
use crate::elements::Element;
use crate::engine::{newton, Integrator, Mode, TranState, Workspace};
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use crate::tran::{TranOptions, TranResult};
use crate::waveform::Waveform;
use mosfet::MosfetModel;
use std::collections::HashMap;

/// Gmin continuation ladder (largest first).
const GMIN_STEPS: [f64; 7] = [1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10, 1e-12];
/// Source-stepping ladder.
const SOURCE_STEPS: [f64; 8] = [0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 0.95, 1.0];
/// Maximum binary step-halving depth on transient Newton failure.
const MAX_HALVINGS: usize = 10;

/// Stable identifier of one analysis run within a session.
///
/// Ids are monotonically increasing and never reused, even after
/// [`ResultStore::take`] or [`ResultStore::clear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunId(u64);

impl std::fmt::Display for RunId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "run#{}", self.0)
    }
}

/// An analysis request for [`Session::run`].
#[derive(Debug, Clone)]
pub enum Analysis {
    /// Nonlinear DC operating point; `guess` seeds the Newton iteration
    /// (empty for a cold start) and selects the state of bistable circuits.
    Dc {
        /// Initial node-voltage guesses.
        guess: Vec<(NodeId, f64)>,
    },
    /// DC sweep of the named voltage source over `values`, warm-started
    /// point to point. The source's waveform is restored afterwards.
    DcSweep {
        /// Voltage source to sweep.
        source: String,
        /// Swept DC values.
        values: Vec<f64>,
    },
    /// Transient analysis.
    Tran(TranOptions),
    /// AC small-signal sweep: linearize at the DC operating point selected
    /// by `guess` (empty for a cold start), apply a unit excitation on
    /// `source`, solve at each frequency.
    Ac {
        /// Voltage source carrying the unit AC excitation.
        source: String,
        /// Sweep frequencies, Hz (all positive).
        freqs: Vec<f64>,
        /// Operating-point guesses for bistable circuits.
        guess: Vec<(NodeId, f64)>,
    },
}

impl Analysis {
    /// A cold-start DC operating point request.
    #[must_use]
    pub fn dc() -> Self {
        Analysis::Dc { guess: Vec::new() }
    }

    /// A DC operating point request seeded with node-voltage guesses.
    #[must_use]
    pub fn dc_with_guess(guess: &[(NodeId, f64)]) -> Self {
        Analysis::Dc {
            guess: guess.to_vec(),
        }
    }

    /// A DC sweep request.
    #[must_use]
    pub fn dc_sweep(source: &str, values: &[f64]) -> Self {
        Analysis::DcSweep {
            source: source.to_string(),
            values: values.to_vec(),
        }
    }

    /// A transient request.
    #[must_use]
    pub fn tran(opts: TranOptions) -> Self {
        Analysis::Tran(opts)
    }

    /// An AC sweep request (cold-start operating point).
    #[must_use]
    pub fn ac(source: &str, freqs: &[f64]) -> Self {
        Analysis::Ac {
            source: source.to_string(),
            freqs: freqs.to_vec(),
            guess: Vec::new(),
        }
    }

    /// An AC sweep request with operating-point guesses.
    #[must_use]
    pub fn ac_with_guess(source: &str, freqs: &[f64], guess: &[(NodeId, f64)]) -> Self {
        Analysis::Ac {
            source: source.to_string(),
            freqs: freqs.to_vec(),
            guess: guess.to_vec(),
        }
    }
}

/// A completed analysis result.
#[derive(Debug, Clone)]
pub enum AnalysisResult {
    /// DC operating point.
    Dc(DcResult),
    /// DC sweep.
    Sweep(SweepResult),
    /// Transient waveforms.
    Tran(TranResult),
    /// AC sweep.
    Ac(AcResult),
}

impl AnalysisResult {
    /// Short kind label ("dc", "sweep", "tran", "ac").
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisResult::Dc(_) => "dc",
            AnalysisResult::Sweep(_) => "sweep",
            AnalysisResult::Tran(_) => "tran",
            AnalysisResult::Ac(_) => "ac",
        }
    }

    /// The DC result, if this run was a DC operating point.
    #[must_use]
    pub fn as_dc(&self) -> Option<&DcResult> {
        match self {
            AnalysisResult::Dc(r) => Some(r),
            _ => None,
        }
    }

    /// The sweep result, if this run was a DC sweep.
    #[must_use]
    pub fn as_sweep(&self) -> Option<&SweepResult> {
        match self {
            AnalysisResult::Sweep(r) => Some(r),
            _ => None,
        }
    }

    /// The transient result, if this run was a transient.
    #[must_use]
    pub fn as_tran(&self) -> Option<&TranResult> {
        match self {
            AnalysisResult::Tran(r) => Some(r),
            _ => None,
        }
    }

    /// The AC result, if this run was an AC sweep.
    #[must_use]
    pub fn as_ac(&self) -> Option<&AcResult> {
        match self {
            AnalysisResult::Ac(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the DC result, if applicable.
    #[must_use]
    pub fn into_dc(self) -> Option<DcResult> {
        match self {
            AnalysisResult::Dc(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the sweep result, if applicable.
    #[must_use]
    pub fn into_sweep(self) -> Option<SweepResult> {
        match self {
            AnalysisResult::Sweep(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the transient result, if applicable.
    #[must_use]
    pub fn into_tran(self) -> Option<TranResult> {
        match self {
            AnalysisResult::Tran(r) => Some(r),
            _ => None,
        }
    }

    /// Consumes into the AC result, if applicable.
    #[must_use]
    pub fn into_ac(self) -> Option<AcResult> {
        match self {
            AnalysisResult::Ac(r) => Some(r),
            _ => None,
        }
    }
}

/// Completed runs of a session, keyed by [`RunId`].
///
/// Runs are stored in completion order; ids are strictly increasing, so
/// lookups binary-search. Long-lived Monte Carlo sessions should either use
/// the `*_owned` methods on [`Session`] (which bypass the store) or call
/// [`ResultStore::clear`] periodically.
///
/// In-place circuit mutation ([`Session::swap_device`] and friends,
/// [`Session::set_source`]) invalidates the store: results recorded before
/// the mutation describe a circuit that no longer exists, so their ids stop
/// resolving ([`ResultStore::get`] returns `None`; ids are never reused).
#[derive(Debug, Clone, Default)]
pub struct ResultStore {
    runs: Vec<(RunId, AnalysisResult)>,
}

impl ResultStore {
    /// Looks up a run by id.
    #[must_use]
    pub fn get(&self, id: RunId) -> Option<&AnalysisResult> {
        self.runs
            .binary_search_by_key(&id, |(k, _)| *k)
            .ok()
            .map(|i| &self.runs[i].1)
    }

    /// Removes and returns a run by id.
    pub fn take(&mut self, id: RunId) -> Option<AnalysisResult> {
        self.runs
            .binary_search_by_key(&id, |(k, _)| *k)
            .ok()
            .map(|i| self.runs.remove(i).1)
    }

    /// The DC result of a run, if it exists and was a DC operating point.
    #[must_use]
    pub fn dc(&self, id: RunId) -> Option<&DcResult> {
        self.get(id).and_then(AnalysisResult::as_dc)
    }

    /// The sweep result of a run, if it exists and was a DC sweep.
    #[must_use]
    pub fn sweep(&self, id: RunId) -> Option<&SweepResult> {
        self.get(id).and_then(AnalysisResult::as_sweep)
    }

    /// The transient result of a run, if it exists and was a transient.
    #[must_use]
    pub fn tran(&self, id: RunId) -> Option<&TranResult> {
        self.get(id).and_then(AnalysisResult::as_tran)
    }

    /// The AC result of a run, if it exists and was an AC sweep.
    #[must_use]
    pub fn ac(&self, id: RunId) -> Option<&AcResult> {
        self.get(id).and_then(AnalysisResult::as_ac)
    }

    /// Number of stored runs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True when no runs are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Iterates stored runs in completion order.
    pub fn iter(&self) -> impl Iterator<Item = (RunId, &AnalysisResult)> {
        self.runs.iter().map(|(id, r)| (*id, r))
    }

    /// Drops all stored runs (ids are never reused).
    pub fn clear(&mut self) {
        self.runs.clear();
    }
}

/// A persistent simulation session: one elaborated circuit, reusable
/// scratch, many analyses.
///
/// # Example
///
/// ```
/// use spice::{Analysis, Circuit, Session, Waveform};
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// let mut c = Circuit::new();
/// let vin = c.node("in");
/// let mid = c.node("mid");
/// c.vsource("V1", vin, Circuit::GROUND, Waveform::dc(1.0));
/// c.resistor("R1", vin, mid, 1e3);
/// c.resistor("R2", mid, Circuit::GROUND, 1e3);
///
/// let mut s = Session::elaborate(c)?;
/// let op = s.run(Analysis::dc())?;
/// assert!((s.results().dc(op).unwrap().voltage(mid) - 0.5).abs() < 1e-9);
/// // Same elaboration, different stimulus: no rebuild.
/// s.set_source("V1", Waveform::dc(2.0))?;
/// let op2 = s.dc()?;
/// assert!((op2.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    circuit: Circuit,
    ws: Workspace,
    /// Number of node-voltage unknowns (nodes minus ground).
    nn: usize,
    /// Element index of every MOSFET, by instance name.
    mos_by_name: HashMap<String, usize>,
    store: ResultStore,
    next_run: u64,
    /// Last converged DC unknown vector — warm start for the next DC solve.
    warm: Option<Vec<f64>>,
    /// Transient dynamic-state double buffer, reused across runs.
    state: TranState,
    state_scratch: TranState,
    /// AC sweep scratch (linearization + complex system), allocated on the
    /// first AC request and reused for every sweep after that.
    ac_ws: Option<AcWorkspace>,
    /// Batched DC scratch (K-lane matrices + batched LU), allocated on the
    /// first [`Session::dc_batch`] call and reused while the lane count
    /// stays the same.
    batch_ws: Option<BatchWorkspace>,
}

impl Session {
    /// Validates and elaborates a circuit into a ready session.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] for invalid netlists (e.g. empty,
    /// or duplicate MOSFET instance names).
    pub fn elaborate(circuit: Circuit) -> Result<Self, SpiceError> {
        circuit.validate()?;
        let mut mos_by_name = HashMap::new();
        for (idx, e) in circuit.elements().iter().enumerate() {
            if let Element::Mosfet { name, .. } = e {
                if mos_by_name.insert(name.clone(), idx).is_some() {
                    return Err(SpiceError::BadNetlist {
                        context: format!("duplicate MOSFET instance name {name}"),
                    });
                }
            }
        }
        let ws = Workspace::new(&circuit);
        let nn = circuit.node_count() - 1;
        Ok(Session {
            circuit,
            ws,
            nn,
            mos_by_name,
            store: ResultStore::default(),
            next_run: 0,
            warm: None,
            state: TranState::default(),
            state_scratch: TranState::default(),
            ac_ws: None,
            batch_ws: None,
        })
    }

    /// Re-elaborates this session's circuit into an independent session —
    /// fresh workspace, result store, and warm-start state, same topology
    /// and current device models.
    ///
    /// This is the worker-setup path of parallel Monte Carlo: elaborate a
    /// topology once on the coordinating thread, then hand each worker its
    /// own replica ([`Session`] is `Send`; every worker swaps devices and
    /// warm-starts independently). Results stored in this session are not
    /// copied.
    ///
    /// # Errors
    ///
    /// Re-validation cannot fail for a circuit that already elaborated, but
    /// the signature mirrors [`Session::elaborate`].
    ///
    /// # Example
    ///
    /// ```
    /// use spice::{Circuit, Session, Waveform};
    ///
    /// # fn main() -> Result<(), spice::SpiceError> {
    /// let mut c = Circuit::new();
    /// let a = c.node("a");
    /// c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
    /// c.resistor("R1", a, Circuit::GROUND, 1e3);
    /// let mut s = Session::elaborate(c)?;
    /// let mut replica = s.replicate()?; // e.g. moved into a worker thread
    /// assert_eq!(
    ///     s.dc()?.voltage(a).to_bits(),
    ///     replica.dc()?.voltage(a).to_bits(),
    /// );
    /// # Ok(())
    /// # }
    /// ```
    pub fn replicate(&self) -> Result<Self, SpiceError> {
        Session::elaborate(self.circuit.clone())
    }

    /// The elaborated circuit (read-only: the session owns the layout, so
    /// structural edits go through [`Session::swap_devices`] and
    /// [`Session::set_source`]).
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Completed runs.
    #[must_use]
    pub fn results(&self) -> &ResultStore {
        &self.store
    }

    /// Mutable access to completed runs (for [`ResultStore::take`] /
    /// [`ResultStore::clear`]).
    pub fn results_mut(&mut self) -> &mut ResultStore {
        &mut self.store
    }

    /// Runs an analysis and stores the result under a fresh [`RunId`].
    ///
    /// # Errors
    ///
    /// Propagates convergence, singularity, and argument errors from the
    /// underlying analysis.
    pub fn run(&mut self, analysis: Analysis) -> Result<RunId, SpiceError> {
        let result = self.run_inner(analysis)?;
        let id = RunId(self.next_run);
        self.next_run += 1;
        self.store.runs.push((id, result));
        Ok(id)
    }

    /// Runs an analysis and returns the result directly, bypassing the
    /// store — the zero-overhead path for Monte Carlo loops.
    ///
    /// # Errors
    ///
    /// Same as [`Session::run`].
    pub fn run_owned(&mut self, analysis: Analysis) -> Result<AnalysisResult, SpiceError> {
        self.run_inner(analysis)
    }

    fn run_inner(&mut self, analysis: Analysis) -> Result<AnalysisResult, SpiceError> {
        match analysis {
            Analysis::Dc { guess } => {
                let g = if guess.is_empty() {
                    None
                } else {
                    Some(guess.as_slice())
                };
                let x = self.solve_dc_vec(g)?;
                Ok(AnalysisResult::Dc(DcResult::new(x, self.nn)))
            }
            Analysis::DcSweep { source, values } => self
                .run_dc_sweep(&source, &values)
                .map(AnalysisResult::Sweep),
            Analysis::Tran(opts) => self.run_tran(&opts).map(AnalysisResult::Tran),
            Analysis::Ac {
                source,
                freqs,
                guess,
            } => {
                let g = if guess.is_empty() {
                    None
                } else {
                    Some(guess.as_slice())
                };
                self.run_ac(&source, &freqs, g).map(AnalysisResult::Ac)
            }
        }
    }

    // ---- typed convenience wrappers -------------------------------------

    /// DC operating point; result stored and borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc(&mut self) -> Result<&DcResult, SpiceError> {
        let id = self.run(Analysis::dc())?;
        Ok(self.store.dc(id).expect("just stored"))
    }

    /// DC operating point with node-voltage guesses; result stored and
    /// borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc_with_guess(&mut self, guess: &[(NodeId, f64)]) -> Result<&DcResult, SpiceError> {
        let id = self.run(Analysis::dc_with_guess(guess))?;
        Ok(self.store.dc(id).expect("just stored"))
    }

    /// DC sweep; result stored and borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc_sweep(&mut self, source: &str, values: &[f64]) -> Result<&SweepResult, SpiceError> {
        let id = self.run(Analysis::dc_sweep(source, values))?;
        Ok(self.store.sweep(id).expect("just stored"))
    }

    /// Transient; result stored and borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn tran(&mut self, opts: &TranOptions) -> Result<&TranResult, SpiceError> {
        let id = self.run(Analysis::Tran(opts.clone()))?;
        Ok(self.store.tran(id).expect("just stored"))
    }

    /// AC sweep (cold operating point); result stored and borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn ac(&mut self, source: &str, freqs: &[f64]) -> Result<&AcResult, SpiceError> {
        let id = self.run(Analysis::ac(source, freqs))?;
        Ok(self.store.ac(id).expect("just stored"))
    }

    /// AC sweep with operating-point guesses; result stored and borrowed.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn ac_with_guess(
        &mut self,
        source: &str,
        freqs: &[f64],
        guess: &[(NodeId, f64)],
    ) -> Result<&AcResult, SpiceError> {
        let id = self.run(Analysis::ac_with_guess(source, freqs, guess))?;
        Ok(self.store.ac(id).expect("just stored"))
    }

    /// DC operating point, returned by value without touching the store.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc_owned(&mut self) -> Result<DcResult, SpiceError> {
        Ok(self
            .run_owned(Analysis::dc())?
            .into_dc()
            .expect("dc request yields dc result"))
    }

    /// [`Session::dc_owned`] with guesses.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc_owned_with_guess(&mut self, guess: &[(NodeId, f64)]) -> Result<DcResult, SpiceError> {
        Ok(self
            .run_owned(Analysis::dc_with_guess(guess))?
            .into_dc()
            .expect("dc request yields dc result"))
    }

    /// DC sweep, returned by value without touching the store.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn dc_sweep_owned(
        &mut self,
        source: &str,
        values: &[f64],
    ) -> Result<SweepResult, SpiceError> {
        Ok(self
            .run_owned(Analysis::dc_sweep(source, values))?
            .into_sweep()
            .expect("sweep request yields sweep result"))
    }

    /// Transient, returned by value without touching the store.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn tran_owned(&mut self, opts: &TranOptions) -> Result<TranResult, SpiceError> {
        Ok(self
            .run_owned(Analysis::Tran(opts.clone()))?
            .into_tran()
            .expect("tran request yields tran result"))
    }

    /// AC sweep, returned by value without touching the store.
    ///
    /// # Errors
    ///
    /// See [`Session::run`].
    pub fn ac_owned(
        &mut self,
        source: &str,
        freqs: &[f64],
        guess: &[(NodeId, f64)],
    ) -> Result<AcResult, SpiceError> {
        Ok(self
            .run_owned(Analysis::ac_with_guess(source, freqs, guess))?
            .into_ac()
            .expect("ac request yields ac result"))
    }

    // ---- in-place mutation ----------------------------------------------

    /// Replaces the waveform of an existing voltage source (sweeps, setup
    /// and hold searches) without re-elaboration.
    ///
    /// Results stored before the change describe a circuit that no longer
    /// exists, so the [`ResultStore`] is invalidated: their [`RunId`]s stop
    /// resolving (see [`Session::swap_device`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] when the source is missing.
    pub fn set_source(&mut self, name: &str, wave: Waveform) -> Result<(), SpiceError> {
        self.circuit.set_vsource(name, wave)?;
        self.store.clear();
        Ok(())
    }

    /// Replaces the compact model of one MOSFET instance in place. The
    /// node/branch layout, workspace, and LU scratch all stay valid; the
    /// next DC solve warm-starts from the previous operating point.
    ///
    /// Results stored before the swap were computed on a circuit that no
    /// longer exists; keeping them readable would silently mix samples, so
    /// the [`ResultStore`] is invalidated — stale [`RunId`]s stop resolving
    /// ([`ResultStore::get`] returns `None`). Extract anything you need
    /// (e.g. via [`ResultStore::take`]) before mutating, or use the
    /// `*_owned` methods, whose results the store never holds.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] when no MOSFET has that name.
    pub fn swap_device(
        &mut self,
        name: &str,
        model: Box<dyn MosfetModel>,
    ) -> Result<(), SpiceError> {
        let idx = *self
            .mos_by_name
            .get(name)
            .ok_or_else(|| SpiceError::BadNetlist {
                context: format!("no MOSFET named {name}"),
            })?;
        match &mut self.circuit.elements_mut()[idx] {
            Element::Mosfet { model: slot, .. } => {
                *slot = model;
                self.store.clear();
                Ok(())
            }
            _ => unreachable!("mos_by_name only indexes MOSFETs"),
        }
    }

    /// Replaces several MOSFET models in place; returns the number swapped.
    /// Stored results are invalidated, as for [`Session::swap_device`].
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::BadNetlist`] on the first unknown instance
    /// name (earlier swaps in the batch remain applied).
    pub fn swap_devices<I, S>(&mut self, swaps: I) -> Result<usize, SpiceError>
    where
        I: IntoIterator<Item = (S, Box<dyn MosfetModel>)>,
        S: AsRef<str>,
    {
        let mut n = 0;
        for (name, model) in swaps {
            self.swap_device(name.as_ref(), model)?;
            n += 1;
        }
        Ok(n)
    }

    /// Resamples every MOSFET in the circuit: `f` receives each instance's
    /// name and current model and returns the replacement. Returns the
    /// number of devices swapped. This is the circuit-level Monte Carlo
    /// inner loop — pair it with a mismatch-sampling factory. Stored
    /// results are invalidated, as for [`Session::swap_device`].
    pub fn swap_all_mosfets<F>(&mut self, mut f: F) -> usize
    where
        F: FnMut(&str, &dyn MosfetModel) -> Box<dyn MosfetModel>,
    {
        let mut n = 0;
        for e in self.circuit.elements_mut() {
            if let Element::Mosfet { name, model, .. } = e {
                *model = f(name, model.as_ref());
                n += 1;
            }
        }
        if n > 0 {
            self.store.clear();
        }
        n
    }

    /// Number of MOSFET instances in the elaborated circuit.
    #[must_use]
    pub fn mosfet_count(&self) -> usize {
        self.mos_by_name.len()
    }

    /// Drops the warm-start operating point, forcing the next DC solve to
    /// run the full continuation ladder from zero. Rarely needed — swapping
    /// devices intentionally keeps the warm start — but useful when a
    /// stimulus change moves the circuit to a very different region.
    pub fn invalidate_warm_start(&mut self) {
        self.warm = None;
    }

    /// The last converged DC unknown vector, if any — the point the next
    /// warm-started solve departs from.
    #[must_use]
    pub fn warm_start(&self) -> Option<&[f64]> {
        self.warm.as_deref()
    }

    /// Replaces the warm-start vector with a caller-provided operating
    /// point (e.g. one captured from [`Session::warm_start`] on another
    /// session). The batched-vs-scalar equivalence suite uses this to pin
    /// scalar reference solves to the exact entry state of a batch.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidArgument`] when `x` does not have one
    /// entry per circuit unknown.
    pub fn seed_warm_start(&mut self, x: Vec<f64>) -> Result<(), SpiceError> {
        let n = self.circuit.n_unknowns();
        if x.len() != n {
            return Err(SpiceError::InvalidArgument {
                context: format!(
                    "warm-start vector length {} for {n}-unknown circuit",
                    x.len()
                ),
            });
        }
        self.warm = Some(x);
        Ok(())
    }

    /// Solves the DC operating point of K Monte Carlo lanes in one batched
    /// pass: one traversal of the topology stamps all K MNA systems
    /// (structure-of-arrays MOSFET evaluation where possible), and a K-lane
    /// batched LU factors and solves them together.
    ///
    /// Each lane is a set of device swaps applied *for that lane only* —
    /// the session's own circuit is left unchanged (unlike
    /// [`Session::swap_devices`], and no stored results are invalidated).
    /// Every lane starts from the same entry state the scalar path would
    /// use: the `guess` node overrides when `Some` (matching
    /// [`Session::dc_owned_with_guess`]), otherwise the session's warm
    /// start (matching [`Session::dc_owned`]).
    ///
    /// **Determinism contract:** lane `i` is bit-identical to running the
    /// scalar path sequentially — swap lane `i`'s devices, solve with the
    /// same guess/warm entry state. The batched Newton runs the exact
    /// scalar operation sequence per lane, and any lane the batched plain
    /// Newton cannot converge falls back to the full scalar continuation
    /// ladder individually (per-lane failure isolation: one bad draw fails
    /// one lane, never the batch). After the batch, the session's warm
    /// start is what a sequential sweep would leave: the last lane's
    /// solution on success, cleared on failure.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidArgument`] for an empty batch (`K = 0`)
    /// and [`SpiceError::BadNetlist`] when a lane names an unknown MOSFET —
    /// both checked before any solve. Per-lane convergence failures are
    /// reported in the corresponding entry of the returned vector.
    ///
    /// # Example
    ///
    /// ```
    /// use mosfet::{vs::VsModel, Geometry, MosfetModel};
    /// use spice::{Circuit, Session, Waveform};
    ///
    /// # fn main() -> Result<(), spice::SpiceError> {
    /// // A diode-connected NMOS under a 10 kΩ load.
    /// let mut c = Circuit::new();
    /// let vdd = c.node("vdd");
    /// let d = c.node("d");
    /// c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(0.9));
    /// c.resistor("RL", vdd, d, 10e3);
    /// let dev = |w_nm| VsModel::nominal_nmos_40nm(Geometry::from_nm(w_nm, 40.0));
    /// c.mosfet("MN", d, d, Circuit::GROUND, Circuit::GROUND, Box::new(dev(300.0)));
    /// let mut s = Session::elaborate(c)?;
    ///
    /// // Two Monte Carlo lanes: nominal and a wider (stronger) device.
    /// let lanes = vec![
    ///     vec![("MN", dev(300.0).clone_box())],
    ///     vec![("MN", dev(600.0).clone_box())],
    /// ];
    /// let ops = s.dc_batch(lanes, None)?;
    /// let v_nom = ops[0].as_ref().unwrap().voltage(d);
    /// let v_wide = ops[1].as_ref().unwrap().voltage(d);
    /// assert!(v_wide < v_nom); // stronger pulldown sits lower
    /// # Ok(())
    /// # }
    /// ```
    pub fn dc_batch<S>(
        &mut self,
        lanes: Vec<Vec<(S, Box<dyn MosfetModel>)>>,
        guess: Option<&[(NodeId, f64)]>,
    ) -> Result<Vec<Result<DcResult, SpiceError>>, SpiceError>
    where
        S: AsRef<str>,
    {
        let k = lanes.len();
        if k == 0 {
            return Err(SpiceError::InvalidArgument {
                context: "dc_batch requires at least one lane (K = 0)".into(),
            });
        }
        // Resolve every lane's swaps to element indices up front, so an
        // unknown device name costs no solve.
        let mut overrides: Vec<Vec<(usize, Box<dyn MosfetModel>)>> = Vec::with_capacity(k);
        for lane in lanes {
            let mut resolved = Vec::with_capacity(lane.len());
            for (name, model) in lane {
                let name = name.as_ref();
                let idx = *self
                    .mos_by_name
                    .get(name)
                    .ok_or_else(|| SpiceError::BadNetlist {
                        context: format!("no MOSFET named {name}"),
                    })?;
                resolved.push((idx, model));
            }
            overrides.push(resolved);
        }

        // Shared entry state: exactly the x0 the scalar path would build.
        let n = self.circuit.n_unknowns();
        let mut x0 = vec![0.0; n];
        match guess {
            Some(g) => {
                for &(node, v) in g {
                    if let Some(i) = node.unknown() {
                        x0[i] = v;
                    }
                }
            }
            None => {
                if let Some(w) = &self.warm {
                    x0.copy_from_slice(w);
                }
            }
        }

        if !self.batch_ws.as_ref().is_some_and(|ws| ws.fits(n, k)) {
            self.batch_ws = Some(BatchWorkspace::new(n, self.nn, k)?);
        }

        // Batched phase: plain Newton on all lanes at once.
        let outcomes = {
            // Per-MOSFET lane tables: the session's current model unless the
            // lane overrides it (last override wins, as sequential
            // `swap_devices` would leave it).
            let mut tables: Vec<Vec<&dyn MosfetModel>> = Vec::new();
            let mut mos_idx: Vec<usize> = Vec::new();
            for (idx, e) in self.circuit.elements().iter().enumerate() {
                if let Element::Mosfet { model, .. } = e {
                    mos_idx.push(idx);
                    tables.push(vec![model.as_ref(); k]);
                }
            }
            for (l, lane) in overrides.iter().enumerate() {
                for (idx, model) in lane {
                    // `mos_idx` is built in element order, so it is sorted;
                    // every override index came from `mos_by_name`.
                    let ord = mos_idx
                        .binary_search(idx)
                        .expect("override index resolves to a MOSFET element");
                    tables[ord][l] = model.as_ref();
                }
            }
            let lane_models: Vec<LaneModels<'_>> =
                tables.iter().map(|t| LaneModels::from_lanes(t)).collect();
            let ws = self.batch_ws.as_mut().expect("allocated above");
            newton_batch(&self.circuit, &lane_models, &x0, ws)
        };

        // Fallback phase: lanes the batched plain Newton could not converge
        // rerun the full scalar continuation ladder individually, from the
        // same entry state (bit-identical by construction — it is the same
        // code the scalar path runs).
        let entry_warm = self.warm.clone();
        let mut results: Vec<Result<Vec<f64>, SpiceError>> = Vec::with_capacity(k);
        for (l, out) in outcomes.into_iter().enumerate() {
            match out {
                Ok(x) => results.push(Ok(x)),
                Err(_) => {
                    self.warm.clone_from(&entry_warm);
                    let lane = &mut overrides[l];
                    for (idx, model) in lane.iter_mut() {
                        if let Element::Mosfet { model: slot, .. } =
                            &mut self.circuit.elements_mut()[*idx]
                        {
                            std::mem::swap(slot, model);
                        }
                    }
                    // The batched phase already ran (and failed) the exact
                    // plain-Newton attempt `solve_dc_vec` would start with,
                    // so resume the scalar procedure at the ladder.
                    let r = self.solve_dc_ladder(guess, &x0);
                    for (idx, model) in lane.iter_mut().rev() {
                        if let Element::Mosfet { model: slot, .. } =
                            &mut self.circuit.elements_mut()[*idx]
                        {
                            std::mem::swap(slot, model);
                        }
                    }
                    results.push(r);
                }
            }
        }

        // Exit warm start: what a sequential scalar sweep of the lanes
        // would leave behind — the last lane's solution, or nothing if the
        // last lane failed.
        self.warm = match results.last() {
            Some(Ok(x)) => Some(x.clone()),
            _ => None,
        };
        Ok(results
            .into_iter()
            .map(|r| r.map(|x| DcResult::new(x, self.nn)))
            .collect())
    }

    // ---- analysis engines -----------------------------------------------

    /// Nonlinear DC solve with warm starting and the continuation ladder.
    fn solve_dc_vec(&mut self, guess: Option<&[(NodeId, f64)]>) -> Result<Vec<f64>, SpiceError> {
        let n = self.circuit.n_unknowns();
        let mut x0 = vec![0.0; n];
        match guess {
            Some(g) => {
                for &(node, v) in g {
                    if let Some(i) = node.unknown() {
                        x0[i] = v;
                    }
                }
            }
            None => {
                // Warm start: the previous converged point of this session.
                // For resampled-device Monte Carlo the new solution is close,
                // so plain Newton usually lands in a handful of iterations.
                if let Some(w) = &self.warm {
                    x0.copy_from_slice(w);
                }
            }
        }

        let dc = Mode::Dc {
            gmin: 0.0,
            source_scale: 1.0,
        };
        if let Ok(x) = newton(&self.circuit, &x0, &dc, &mut self.ws) {
            self.warm = Some(x.clone());
            return Ok(x);
        }
        self.solve_dc_ladder(guess, &x0)
    }

    /// The continuation ladder [`Session::solve_dc_vec`] falls back to once
    /// plain Newton from `x0` has failed: gmin stepping, then source
    /// stepping, then — for a guessed or warm entry whose basin may no
    /// longer exist for this sample — one cold retry of the whole
    /// procedure. [`Session::dc_batch`] enters here directly for lanes
    /// whose batched phase failed: that phase *is* the plain-Newton attempt
    /// from the same entry state (bit-identical by construction), so
    /// rerunning it before the ladder would be pure redundant work.
    fn solve_dc_ladder(
        &mut self,
        guess: Option<&[(NodeId, f64)]>,
        x0: &[f64],
    ) -> Result<Vec<f64>, SpiceError> {
        let n = self.circuit.n_unknowns();
        let dc = Mode::Dc {
            gmin: 0.0,
            source_scale: 1.0,
        };
        // Gmin stepping: relax with a large shunt conductance, then tighten.
        let cold = vec![0.0; n];
        let start: &[f64] = if guess.is_some() { x0 } else { &cold };
        let mut x = start.to_vec();
        let mut ok = true;
        for &gmin in &GMIN_STEPS {
            match newton(
                &self.circuit,
                &x,
                &Mode::Dc {
                    gmin,
                    source_scale: 1.0,
                },
                &mut self.ws,
            ) {
                Ok(next) => x = next,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            if let Ok(fin) = newton(&self.circuit, &x, &dc, &mut self.ws) {
                self.warm = Some(fin.clone());
                return Ok(fin);
            }
        }

        // Source stepping: ramp all independent sources from zero.
        let mut x = start.to_vec();
        let mut stepping_failed = None;
        for &scale in &SOURCE_STEPS {
            match newton(
                &self.circuit,
                &x,
                &Mode::Dc {
                    gmin: 0.0,
                    source_scale: scale,
                },
                &mut self.ws,
            ) {
                Ok(next) => x = next,
                Err(e) => {
                    stepping_failed = Some((scale, e));
                    break;
                }
            }
        }
        let Some((scale, e)) = stepping_failed else {
            self.warm = Some(x.clone());
            return Ok(x);
        };
        // A user-supplied guess can park the continuation in a basin that no
        // longer exists for this sample (e.g. mismatch destroyed one latch
        // state). A bad guess must never be worse than no guess: retry the
        // whole ladder cold. The same applies to a stale warm start.
        if guess.is_some() || self.warm.is_some() {
            self.warm = None;
            return self.solve_dc_vec(None);
        }
        Err(SpiceError::NoConvergence {
            analysis: "dc op",
            detail: format!("source stepping stuck at scale {scale}: {e}"),
        })
    }

    /// DC sweep with point-to-point warm starts; restores the swept
    /// source's waveform afterwards.
    fn run_dc_sweep(&mut self, source: &str, values: &[f64]) -> Result<SweepResult, SpiceError> {
        if values.is_empty() {
            return Err(SpiceError::InvalidArgument {
                context: "empty sweep".into(),
            });
        }
        self.circuit.vsource_index(source)?;
        let saved = self.circuit.vsource_waveform(source)?.clone();
        let result = self.sweep_points(source, values);
        self.circuit
            .set_vsource(source, saved)
            .expect("source existed above");
        result
    }

    fn sweep_points(&mut self, source: &str, values: &[f64]) -> Result<SweepResult, SpiceError> {
        let n = self.circuit.n_unknowns();
        let mut points = Vec::with_capacity(values.len());
        let mut warm: Option<Vec<f64>> = None;
        for &v in values {
            self.circuit.set_vsource(source, Waveform::dc(v))?;
            let x0 = warm.clone().unwrap_or_else(|| vec![0.0; n]);
            let x = match newton(
                &self.circuit,
                &x0,
                &Mode::Dc {
                    gmin: 0.0,
                    source_scale: 1.0,
                },
                &mut self.ws,
            ) {
                Ok(x) => x,
                // Cold retry with the full continuation ladder.
                Err(_) => {
                    self.warm = None;
                    self.solve_dc_vec(None)?
                }
            };
            warm = Some(x.clone());
            points.push(DcResult::new(x, self.nn));
        }
        Ok(SweepResult {
            values: values.to_vec(),
            points,
        })
    }

    /// Transient run: DC initial point, breakpoint-aligned fixed grid,
    /// trapezoidal integration with backward-Euler restarts, recursive step
    /// halving on Newton failure.
    fn run_tran(&mut self, opts: &TranOptions) -> Result<TranResult, SpiceError> {
        let mut x = self.solve_dc_vec(if opts.ic.is_empty() {
            None
        } else {
            Some(&opts.ic)
        })?;
        crate::tran::init_state(&self.circuit, &x, &mut self.state);

        // Build the time grid: multiples of dt plus all waveform breakpoints.
        let mut grid: Vec<f64> = Vec::new();
        let n_steps = (opts.tstop / opts.dt).ceil() as usize;
        for k in 1..=n_steps {
            grid.push((k as f64 * opts.dt).min(opts.tstop));
        }
        for e in self.circuit.elements() {
            let wave = match e {
                Element::Vsource { wave, .. } | Element::Isource { wave, .. } => wave,
                _ => continue,
            };
            for bp in wave.breakpoints(opts.tstop) {
                if bp > 0.0 {
                    grid.push(bp);
                }
            }
        }
        grid.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        grid.dedup_by(|a, b| (*a - *b).abs() < 1e-18);

        let mut times = Vec::with_capacity(grid.len() + 1);
        let mut snapshots = Vec::with_capacity(grid.len() + 1);
        times.push(0.0);
        snapshots.push(x.clone());

        let mut t_prev = 0.0;
        // Breakpoint times where integration must restart with BE.
        let mut restart = true;
        let bp_set: Vec<f64> = {
            let mut v: Vec<f64> = self
                .circuit
                .elements()
                .iter()
                .filter_map(|e| match e {
                    Element::Vsource { wave, .. } | Element::Isource { wave, .. } => {
                        Some(wave.breakpoints(opts.tstop))
                    }
                    _ => None,
                })
                .flatten()
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
            v
        };

        for &t in &grid {
            let h = t - t_prev;
            if h <= 0.0 {
                continue;
            }
            let method = if restart || !opts.trapezoidal {
                Integrator::BackwardEuler
            } else {
                Integrator::Trapezoidal
            };
            self.advance(&mut x, t_prev, t, method, 0)?;
            times.push(t);
            snapshots.push(x.clone());
            // Restart integration right after crossing a breakpoint.
            restart = bp_set
                .iter()
                .any(|&bp| bp > t_prev + 1e-18 && bp <= t + 1e-18);
            t_prev = t;
        }

        // The transient leaves the circuit at t=tstop; the stored warm start
        // (the t=0 operating point) is still the right DC seed.
        Ok(TranResult::new(times, snapshots, self.nn))
    }

    /// One integration step from `t0` to `t1`, with recursive halving.
    fn advance(
        &mut self,
        x: &mut Vec<f64>,
        t0: f64,
        t1: f64,
        method: Integrator,
        depth: usize,
    ) -> Result<(), SpiceError> {
        let h = t1 - t0;
        let mode = Mode::Tran {
            method,
            h,
            t: t1,
            state: &self.state,
        };
        match newton(&self.circuit, x, &mode, &mut self.ws) {
            Ok(x_new) => {
                crate::tran::update_state(
                    &self.circuit,
                    &x_new,
                    &self.state,
                    h,
                    method,
                    &mut self.state_scratch,
                );
                std::mem::swap(&mut self.state, &mut self.state_scratch);
                *x = x_new;
                Ok(())
            }
            Err(e) => {
                if depth >= MAX_HALVINGS {
                    return Err(SpiceError::NoConvergence {
                        analysis: "transient",
                        detail: format!("step at t={t1:.3e} failed after halving: {e}"),
                    });
                }
                let tm = 0.5 * (t0 + t1);
                // Sub-steps restart with BE for robustness.
                self.advance(x, t0, tm, Integrator::BackwardEuler, depth + 1)?;
                self.advance(x, tm, t1, Integrator::BackwardEuler, depth + 1)
            }
        }
    }

    /// AC small-signal sweep at the (possibly guess-selected) operating
    /// point, through the cached [`AcWorkspace`].
    fn run_ac(
        &mut self,
        source: &str,
        freqs: &[f64],
        guess: Option<&[(NodeId, f64)]>,
    ) -> Result<AcResult, SpiceError> {
        self.validate_ac_args(source, freqs)?;
        let x_op = self.solve_dc_vec(guess)?;
        self.sweep_ac(source, freqs, &x_op)
    }

    /// Rejects bad AC arguments *before* any operating-point work, so a
    /// typo'd source name or empty frequency list costs no Newton solve
    /// and leaves the warm-start state untouched. (The [`AcWorkspace`]
    /// re-checks on its own public path.)
    fn validate_ac_args(&self, source: &str, freqs: &[f64]) -> Result<(), SpiceError> {
        if freqs.is_empty() || freqs.iter().any(|&f| f <= 0.0) {
            return Err(SpiceError::InvalidArgument {
                context: "AC sweep needs positive frequencies".into(),
            });
        }
        self.circuit.vsource_index(source).map(|_| ())
    }

    /// Runs one AC sweep of a resample→sweep Monte Carlo batch: like
    /// [`Session::ac_owned`] with `guess`, but the operating point
    /// warm-starts from the previous solve whenever one exists, falling
    /// back to the guessed continuation ladder only when plain Newton
    /// fails. After [`Session::swap_devices`] the new operating point is a
    /// small perturbation of the previous sample's, so consecutive calls
    /// amortize the expensive guessed solve across the whole batch (the
    /// linearization and complex-system storage are reused too, via the
    /// session's cached [`AcWorkspace`]).
    ///
    /// The first call (or the first after
    /// [`Session::invalidate_warm_start`]) behaves exactly like
    /// [`Session::ac_owned`]: `guess` selects the state of bistable
    /// circuits. Later calls keep honouring the guess: if the warm solve
    /// converges to a *different* stable state than the guess selects
    /// (an extreme mismatch draw flipped a marginal cell), the warm start
    /// is discarded and the solve re-pins the basin from the guess — the
    /// result never silently depends on the sample order.
    ///
    /// # Errors
    ///
    /// Same as [`Session::ac_owned`].
    ///
    /// # Example
    ///
    /// ```
    /// use mosfet::{vs::VsModel, Geometry};
    /// use spice::{Circuit, Session, Waveform};
    ///
    /// # fn main() -> Result<(), spice::SpiceError> {
    /// // A diode-connected NMOS under a 1 kΩ load: one stable state, so
    /// // the guess is empty; the second sweep warm-starts.
    /// let mut c = Circuit::new();
    /// let vdd = c.node("vdd");
    /// let d = c.node("d");
    /// c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(0.9));
    /// c.resistor("RL", vdd, d, 1e3);
    /// let nom = || VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0));
    /// c.mosfet("MN", d, d, Circuit::GROUND, Circuit::GROUND, Box::new(nom()));
    /// let mut s = Session::elaborate(c)?;
    /// let first = s.ac_batch("VDD", &[1e9], &[])?;
    /// s.swap_device("MN", Box::new(nom()))?; // Monte Carlo resample
    /// let second = s.ac_batch("VDD", &[1e9], &[])?;
    /// let (a, b) = (first.magnitudes(d)[0], second.magnitudes(d)[0]);
    /// assert!((a - b).abs() < 1e-9 * a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn ac_batch(
        &mut self,
        source: &str,
        freqs: &[f64],
        guess: &[(NodeId, f64)],
    ) -> Result<AcResult, SpiceError> {
        self.validate_ac_args(source, freqs)?;
        let x_op = self.solve_dc_warm_or_guess(guess)?;
        self.sweep_ac(source, freqs, &x_op)
    }

    /// Warm-or-guess DC solve backing [`Session::ac_batch`]: plain Newton
    /// from the previous operating point when one exists, otherwise (or on
    /// failure, or when the warm solution lands in a different stable
    /// state than `guess` selects) the full guessed path of
    /// [`Session::dc_with_guess`].
    fn solve_dc_warm_or_guess(&mut self, guess: &[(NodeId, f64)]) -> Result<Vec<f64>, SpiceError> {
        if let Some(w) = self.warm.clone() {
            let dc = Mode::Dc {
                gmin: 0.0,
                source_scale: 1.0,
            };
            if let Ok(x) = newton(&self.circuit, &w, &dc, &mut self.ws) {
                if basin_matches(&x, guess) {
                    self.warm = Some(x.clone());
                    return Ok(x);
                }
                // Converged, but in the wrong stable state: the previous
                // sample's basin no longer corresponds to the guess (e.g.
                // an extreme draw flipped a marginal cell). Fall through
                // and re-pin from the guess, so batch results never depend
                // on sample order.
            }
            // Stale warm start (e.g. an extreme mismatch draw): retry from
            // the caller's guess as a cold ac_with_guess would.
            self.warm = None;
        }
        self.solve_dc_vec(if guess.is_empty() { None } else { Some(guess) })
    }

    /// Sweeps the cached [`AcWorkspace`] at a solved operating point.
    fn sweep_ac(
        &mut self,
        source: &str,
        freqs: &[f64],
        x_op: &[f64],
    ) -> Result<AcResult, SpiceError> {
        let ws = self
            .ac_ws
            .get_or_insert_with(|| AcWorkspace::for_circuit(&self.circuit));
        ws.sweep(&self.circuit, x_op, source, freqs)
    }
}

/// True when the solved unknown vector `x` lies in the stable state the
/// guess selects: every guessed node must sit within half the guess span
/// (max minus min guessed value) of its guessed voltage. A flipped latch
/// node is a full span away, a merely disturbed one (e.g. the read-upset
/// low node of an SRAM cell) well under half. A guess naming fewer than
/// two distinct values carries no basin information and always matches.
fn basin_matches(x: &[f64], guess: &[(NodeId, f64)]) -> bool {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in guess {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span = hi - lo;
    if !(span > 0.0) {
        return true;
    }
    guess.iter().all(|&(node, v)| match node.unknown() {
        Some(i) => (x[i] - v).abs() <= 0.5 * span,
        None => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use mosfet::{vs::VsModel, Geometry};

    fn divider() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let a = c.node("a");
        let m = c.node("m");
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        c.resistor("R1", a, m, 2e3);
        c.resistor("R2", m, Circuit::GROUND, 1e3);
        (c, a, m)
    }

    fn inverter(vdd_v: f64, vin_v: f64) -> (Circuit, NodeId) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let vin = c.node("in");
        let out = c.node("out");
        c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(vdd_v));
        c.vsource("VIN", vin, Circuit::GROUND, Waveform::dc(vin_v));
        c.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0))),
        );
        c.mosfet(
            "MN",
            out,
            vin,
            Circuit::GROUND,
            Circuit::GROUND,
            Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0))),
        );
        (c, out)
    }

    #[test]
    fn run_ids_are_stable_and_typed() {
        let (c, a, m) = divider();
        let mut s = Session::elaborate(c).unwrap();
        let id0 = s.run(Analysis::dc()).unwrap();
        let id1 = s.run(Analysis::dc_sweep("V1", &[0.0, 1.0])).unwrap();
        assert_ne!(id0, id1);
        assert!(id0 < id1);
        let op = s.results().dc(id0).unwrap();
        assert!((op.voltage(m) - 1.0 / 3.0).abs() < 1e-6);
        assert!((op.voltage(a) - 1.0).abs() < 1e-6);
        // Kind mismatch yields None, not a panic.
        assert!(s.results().tran(id0).is_none());
        assert_eq!(s.results().get(id0).unwrap().kind(), "dc");
        assert_eq!(s.results().len(), 2);
        // take() removes; ids are never reused.
        let taken = s.results_mut().take(id0).unwrap();
        assert!(taken.as_dc().is_some());
        assert!(s.results().get(id0).is_none());
        let id2 = s.run(Analysis::dc()).unwrap();
        assert!(id2 > id1);
    }

    #[test]
    fn owned_runs_bypass_store() {
        let (c, _, m) = divider();
        let mut s = Session::elaborate(c).unwrap();
        let op = s.dc_owned().unwrap();
        assert!((op.voltage(m) - 1.0 / 3.0).abs() < 1e-6);
        assert!(s.results().is_empty());
    }

    #[test]
    fn sweep_restores_source_waveform() {
        let (c, a, m) = divider();
        let mut s = Session::elaborate(c).unwrap();
        let sweep = s.dc_sweep_owned("V1", &[0.0, 0.6, 3.0]).unwrap();
        let vm = sweep.voltages(m);
        for (v, vin) in vm.iter().zip(&sweep.values) {
            assert!((v - vin / 3.0).abs() < 1e-6);
        }
        // The original 1 V DC value is restored.
        let op = s.dc_owned().unwrap();
        assert!((op.voltage(a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn warm_started_resolve_matches_fresh_elaboration() {
        // Solve, swap in a slightly different device, re-solve warm; a
        // fresh cold session on the same swapped netlist must agree.
        let (c, out) = inverter(0.9, 0.45);
        let mut warm = Session::elaborate(c.clone()).unwrap();
        let _ = warm.dc_owned().unwrap();
        let weaker = VsModel::nominal_nmos_40nm(Geometry::from_nm(240.0, 40.0));
        warm.swap_device("MN", Box::new(weaker.clone())).unwrap();
        let v_warm = warm.dc_owned().unwrap().voltage(out);

        let mut cold_c = c;
        // Rebuild the same swapped netlist from scratch.
        let mut cold = {
            cold_c.set_vsource("VIN", Waveform::dc(0.45)).unwrap();
            let mut s = Session::elaborate(cold_c).unwrap();
            s.swap_device("MN", Box::new(weaker)).unwrap();
            s
        };
        let v_cold = cold.dc_owned().unwrap().voltage(out);
        assert!(
            (v_warm - v_cold).abs() < 1e-6,
            "warm {v_warm} vs cold {v_cold}"
        );
    }

    #[test]
    fn swap_device_changes_solution_in_place() {
        let (c, out) = inverter(0.9, 0.0);
        let mut s = Session::elaborate(c).unwrap();
        let hi = s.dc_owned().unwrap().voltage(out);
        assert!(hi > 0.85, "inverter high = {hi}");
        // Swap the PMOS for a much weaker device: the high level persists
        // (statics), but the operating point genuinely re-solves.
        s.swap_device(
            "MP",
            Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(80.0, 40.0))),
        )
        .unwrap();
        let hi2 = s.dc_owned().unwrap().voltage(out);
        assert!(hi2 > 0.8);
        assert_ne!(hi, hi2);
        assert!(s
            .swap_device(
                "NOPE",
                Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(80.0, 40.0)))
            )
            .is_err());
    }

    #[test]
    fn replicate_is_independent() {
        fn assert_send<T: Send>(_: &T) {}
        let (c, out) = inverter(0.9, 0.45);
        let mut s = Session::elaborate(c).unwrap();
        let v = s.dc_owned().unwrap().voltage(out);
        let mut r = s.replicate().unwrap();
        assert_send(&r); // replicas cross thread boundaries
                         // Same cold-start solve path: bit-identical result.
        assert_eq!(r.dc_owned().unwrap().voltage(out).to_bits(), v.to_bits());
        // Mutating the replica leaves the original untouched.
        r.swap_device(
            "MN",
            Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(150.0, 40.0))),
        )
        .unwrap();
        let v_r = r.dc_owned().unwrap().voltage(out);
        assert!((v_r - v).abs() > 1e-6, "weaker NMOS must move the output");
        // (Warm-started, so only approximately equal to the cold solve.)
        assert!((s.dc_owned().unwrap().voltage(out) - v).abs() < 1e-9);
    }

    #[test]
    fn swap_all_mosfets_counts_devices() {
        let (c, _) = inverter(0.9, 0.45);
        let mut s = Session::elaborate(c).unwrap();
        assert_eq!(s.mosfet_count(), 2);
        let n = s.swap_all_mosfets(|_, old| old.clone_box());
        assert_eq!(n, 2);
    }

    #[test]
    fn duplicate_mosfet_names_rejected() {
        let mut c = Circuit::new();
        let a = c.node("a");
        let g = Geometry::from_nm(300.0, 40.0);
        c.vsource("V1", a, Circuit::GROUND, Waveform::dc(0.9));
        c.mosfet(
            "M1",
            a,
            a,
            Circuit::GROUND,
            Circuit::GROUND,
            Box::new(VsModel::nominal_nmos_40nm(g)),
        );
        c.mosfet(
            "M1",
            a,
            a,
            Circuit::GROUND,
            Circuit::GROUND,
            Box::new(VsModel::nominal_nmos_40nm(g)),
        );
        assert!(Session::elaborate(c).is_err());
    }

    #[test]
    fn empty_circuit_rejected_at_elaboration() {
        assert!(Session::elaborate(Circuit::new()).is_err());
    }

    #[test]
    fn tran_runs_through_session() {
        let r = 1e3;
        let cap = 1e-9;
        let tau = r * cap;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, 1.0, 0.0, 1e-12),
        );
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, cap);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s
            .tran_owned(&TranOptions::new(5.0 * tau, tau / 100.0))
            .unwrap();
        let v = res.voltages(out);
        for (i, &t) in res.times().iter().enumerate() {
            let expected = 1.0 - (-t / tau).exp();
            assert!((v[i] - expected).abs() < 5e-3, "t={t:.3e}");
        }
        // A second run on the same session gives the same answer (state
        // buffers are reused, not stale).
        let res2 = s
            .tran_owned(&TranOptions::new(5.0 * tau, tau / 100.0))
            .unwrap();
        let v2 = res2.voltages(out);
        for (a, b) in v.iter().zip(&v2) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn swap_invalidates_stored_results() {
        let (c, out) = inverter(0.9, 0.45);
        let mut s = Session::elaborate(c).unwrap();
        let id = s.run(Analysis::dc()).unwrap();
        assert!(s.results().dc(id).is_some());
        // In-place mutation: the stored run described a different circuit.
        s.swap_device(
            "MN",
            Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(150.0, 40.0))),
        )
        .unwrap();
        assert!(
            s.results().get(id).is_none(),
            "stale RunId must not resolve"
        );
        assert!(s.results().is_empty());
        // Ids keep increasing across the invalidation.
        let id2 = s.run(Analysis::dc()).unwrap();
        assert!(id2 > id);
        assert!(s.results().dc(id2).is_some());
        // swap_all_mosfets and set_source invalidate too.
        s.swap_all_mosfets(|_, old| old.clone_box());
        assert!(s.results().get(id2).is_none());
        let id3 = s.run(Analysis::dc()).unwrap();
        s.set_source("VIN", Waveform::dc(0.4)).unwrap();
        assert!(s.results().get(id3).is_none());
        let _ = out;
    }

    /// An asymmetric cross-coupled inverter pair (latch): two stable
    /// states with distinct small-signal transfers.
    fn latch() -> (Circuit, NodeId, NodeId) {
        let mut c = Circuit::new();
        let vdd = c.node("vdd");
        let a = c.node("a");
        let b = c.node("b");
        c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(0.9));
        let nmos = |w| Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(w, 40.0)));
        let pmos = |w| Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(w, 40.0)));
        // Inverter 1 (input a, output b) is stronger than inverter 2.
        c.mosfet("MP1", b, a, vdd, vdd, pmos(600.0));
        c.mosfet("MN1", b, a, Circuit::GROUND, Circuit::GROUND, nmos(300.0));
        c.mosfet("MP2", a, b, vdd, vdd, pmos(300.0));
        c.mosfet("MN2", a, b, Circuit::GROUND, Circuit::GROUND, nmos(150.0));
        (c, a, b)
    }

    #[test]
    fn ac_batch_repins_basin_when_warm_state_disagrees_with_guess() {
        let (c, a, b) = latch();
        let freqs = [1e9];
        // Park the session's warm start in the "a high" state...
        let mut s = Session::elaborate(c.clone()).unwrap();
        let op = s.dc_owned_with_guess(&[(a, 0.9), (b, 0.0)]).unwrap();
        assert!(op.voltage(a) > 0.6, "latch must latch: {}", op.voltage(a));
        // ...then request the opposite basin: the warm Newton solve
        // converges (to the wrong state) and must be discarded.
        let guess = [(a, 0.0), (b, 0.9)];
        let got = s.ac_batch("VDD", &freqs, &guess).unwrap();
        let mut fresh = Session::elaborate(c.clone()).unwrap();
        let want = fresh.ac_owned("VDD", &freqs, &guess).unwrap();
        for node in [a, b] {
            let (x, y) = (got.magnitudes(node)[0], want.magnitudes(node)[0]);
            assert!((x - y).abs() < 1e-9 * y.max(1e-12), "{x} vs {y}");
        }
        // The check is not vacuous: the two states have visibly different
        // transfers in this asymmetric latch.
        let mut flipped = Session::elaborate(c).unwrap();
        let other = flipped
            .ac_owned("VDD", &freqs, &[(a, 0.9), (b, 0.0)])
            .unwrap();
        assert!(
            (other.magnitudes(a)[0] - want.magnitudes(a)[0]).abs() > 1e-3 * want.magnitudes(a)[0],
            "states indistinguishable: the repin test proves nothing"
        );
    }

    #[test]
    fn bad_ac_args_rejected_before_any_solve() {
        // A typo'd source or bad frequency list must not cost a DC solve
        // or touch the warm-start state.
        let (c, out) = inverter(0.9, 0.42);
        let mut s = Session::elaborate(c).unwrap();
        assert!(matches!(
            s.ac_owned("VIN", &[], &[]),
            Err(SpiceError::InvalidArgument { .. })
        ));
        assert!(matches!(
            s.ac_batch("VIN", &[-1.0], &[]),
            Err(SpiceError::InvalidArgument { .. })
        ));
        assert!(matches!(
            s.ac_batch("nope", &[1e6], &[]),
            Err(SpiceError::BadNetlist { .. })
        ));
        // No solve happened: the first real solve is still cold (this is
        // observable as the warm start being unset — a dc() now must equal
        // a fresh session's cold solve bit for bit).
        let v = s.dc_owned().unwrap().voltage(out);
        let (c2, out2) = inverter(0.9, 0.42);
        let v2 = Session::elaborate(c2)
            .unwrap()
            .dc_owned()
            .unwrap()
            .voltage(out2);
        assert_eq!(v.to_bits(), v2.to_bits());
    }

    #[test]
    fn ac_batch_matches_guessed_ac_after_swaps() {
        // ac_batch warm-starts the operating point across resamples; the
        // result must match the per-call guessed path on the same devices.
        let (c, out) = inverter(0.9, 0.42);
        let freqs = [1e6, 1e9, 1e11];
        let mut batched = Session::elaborate(c.clone()).unwrap();
        let mut reference = Session::elaborate(c).unwrap();
        for w_nm in [300.0, 280.0, 320.0, 260.0] {
            let dev = VsModel::nominal_nmos_40nm(Geometry::from_nm(w_nm, 40.0));
            batched.swap_device("MN", Box::new(dev.clone())).unwrap();
            reference.swap_device("MN", Box::new(dev)).unwrap();
            reference.invalidate_warm_start();
            let a = batched.ac_batch("VIN", &freqs, &[]).unwrap();
            let b = reference.ac_owned("VIN", &freqs, &[]).unwrap();
            for (x, y) in a.magnitudes(out).iter().zip(b.magnitudes(out)) {
                assert!((x - y).abs() < 1e-6 * y.max(1e-12), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn ac_runs_through_session() {
        let r = 1e3;
        let cap = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * cap);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, cap);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s.ac("V1", &[fc]).unwrap();
        let mag = res.magnitudes(out);
        assert!((mag[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
        assert!(s.run(Analysis::ac("V1", &[])).is_err());
        assert!(s.run(Analysis::ac("nope", &[1.0])).is_err());
    }
}
