//! AC small-signal analysis.
//!
//! Linearizes the circuit at its DC operating point into conductance and
//! capacitance matrices `(G, C)`, then solves `(G + jωC) x = b` across a
//! frequency sweep with a unit-magnitude excitation on one voltage source —
//! the analysis the paper's Table IV runs on the SRAM cell ("SRAM AC").
//!
//! Run it through [`crate::session::Analysis::Ac`] (or the
//! [`crate::Session::ac`]/[`crate::Session::ac_owned`] wrappers); Monte
//! Carlo loops that resample devices between sweeps should use
//! [`crate::Session::ac_batch`], which warm-starts the operating point from
//! the previous sample. Either way the heavy lifting happens in an
//! [`AcWorkspace`]: one pair of real `(G, C)` matrices refilled in place
//! per linearization ([`Circuit::linearize_into`]), and one complex matrix,
//! one factorization, and one right-hand side reused for every frequency
//! point ([`CMatrix::assign_gc`] + [`numerics::complex::CLu`]) — the sweep
//! hot loop performs no allocation beyond the returned solution vectors.

use crate::elements::Element;
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use mosfet::Bias;
use numerics::complex::{CLu, CMatrix, C64};
use numerics::Matrix;

/// Perturbation step for small-signal linearization (V).
const FD_STEP: f64 = 1e-6;

/// Result of an AC sweep: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// Unknown vectors of all frequency points, concatenated (point `k`
    /// occupies `k*n..(k+1)*n`) — one allocation per sweep.
    solutions: Vec<C64>,
    /// Unknowns per frequency point.
    n: usize,
}

impl AcResult {
    /// Swept frequencies, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage trace of a node across the sweep (0 for ground;
    /// plural, in line with [`crate::dc::SweepResult::voltages`]).
    #[must_use]
    pub fn voltages(&self, node: NodeId) -> Vec<C64> {
        match node.unknown() {
            None => vec![C64::ZERO; self.freqs.len()],
            Some(i) => self.solutions.chunks_exact(self.n).map(|x| x[i]).collect(),
        }
    }

    /// Voltage magnitude trace of a node across the sweep.
    #[must_use]
    pub fn magnitudes(&self, node: NodeId) -> Vec<f64> {
        self.voltages(node).into_iter().map(C64::abs).collect()
    }

    /// Voltage phase trace (radians) of a node across the sweep.
    #[must_use]
    pub fn phases(&self, node: NodeId) -> Vec<f64> {
        self.voltages(node).into_iter().map(C64::arg).collect()
    }
}

/// Small-signal matrices at an operating point.
#[derive(Debug, Clone)]
pub struct Linearized {
    /// Conductance matrix (includes voltage-source branch rows).
    pub g: Matrix,
    /// Capacitance matrix (zero in the branch rows).
    pub c: Matrix,
    nn: usize,
}

impl Linearized {
    /// Allocates zeroed small-signal matrices sized for `circuit` — the
    /// storage [`Circuit::linearize_into`] refills per operating point.
    #[must_use]
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n = circuit.n_unknowns();
        Linearized {
            g: Matrix::zeros(n, n),
            c: Matrix::zeros(n, n),
            nn: circuit.node_count() - 1,
        }
    }
}

impl Circuit {
    /// Linearizes every element at the operating-point unknown vector
    /// `x_op` (as returned by [`crate::dc::DcResult::raw`]).
    pub fn linearize(&self, x_op: &[f64]) -> Linearized {
        let mut lin = Linearized::for_circuit(self);
        self.linearize_into(x_op, &mut lin);
        lin
    }

    /// [`Circuit::linearize`] into existing storage — no allocation. The
    /// Monte Carlo hot path: one [`Linearized`] is refilled per sample.
    ///
    /// # Panics
    ///
    /// Panics if `lin` was not sized for this circuit (see
    /// [`Linearized::for_circuit`]).
    pub fn linearize_into(&self, x_op: &[f64], lin: &mut Linearized) {
        let nn = self.node_count() - 1;
        let n = self.n_unknowns();
        assert!(
            lin.g.rows() == n && lin.c.rows() == n && lin.nn == nn,
            "linearize_into: storage sized for order {} (nn {}), circuit has {n} ({nn})",
            lin.g.rows(),
            lin.nn,
        );
        lin.g.fill_zero();
        lin.c.fill_zero();
        let g = &mut lin.g;
        let c = &mut lin.c;
        let volt = |node: NodeId| node.unknown().map_or(0.0, |i| x_op[i]);
        let stamp_g = |gm: &mut Matrix, a: Option<usize>, b: Option<usize>, v: f64| {
            if let Some(i) = a {
                gm[(i, i)] += v;
            }
            if let Some(j) = b {
                gm[(j, j)] += v;
            }
            if let (Some(i), Some(j)) = (a, b) {
                gm[(i, j)] -= v;
                gm[(j, i)] -= v;
            }
        };
        let mut v_idx = 0usize;
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, r, .. } => {
                    stamp_g(g, a.unknown(), b.unknown(), 1.0 / r);
                }
                Element::Capacitor { a, b, c: cap, .. } => {
                    stamp_g(c, a.unknown(), b.unknown(), *cap);
                }
                Element::Vsource { pos, neg, .. } => {
                    let row = nn + v_idx;
                    if let Some(i) = pos.unknown() {
                        g[(i, row)] += 1.0;
                        g[(row, i)] += 1.0;
                    }
                    if let Some(j) = neg.unknown() {
                        g[(j, row)] -= 1.0;
                        g[(row, j)] -= 1.0;
                    }
                    v_idx += 1;
                }
                Element::Isource { .. } => {} // open in small signal
                Element::Mosfet {
                    d,
                    g: gate,
                    s,
                    b,
                    model,
                    ..
                } => {
                    let bias = Bias {
                        vgs: volt(*gate) - volt(*s),
                        vds: volt(*d) - volt(*s),
                        vbs: volt(*b) - volt(*s),
                    };
                    let id0 = model.ids(bias);
                    let d_of = |db: Bias| (model.ids(db) - id0) / FD_STEP;
                    let gm = d_of(Bias {
                        vgs: bias.vgs + FD_STEP,
                        ..bias
                    });
                    let gds = d_of(Bias {
                        vds: bias.vds + FD_STEP,
                        ..bias
                    });
                    let gmb = if b == s {
                        0.0
                    } else {
                        d_of(Bias {
                            vbs: bias.vbs + FD_STEP,
                            ..bias
                        })
                    };
                    let (du, gu, su, bu) = (d.unknown(), gate.unknown(), s.unknown(), b.unknown());
                    let gsum = gm + gds + gmb;
                    // Drain row of the transconductance stamp.
                    if let Some(i) = du {
                        if let Some(j) = gu {
                            g[(i, j)] += gm;
                        }
                        g[(i, i)] += gds;
                        if let Some(j) = bu {
                            g[(i, j)] += gmb;
                        }
                        if let Some(j) = su {
                            g[(i, j)] -= gsum;
                        }
                    }
                    if let Some(i) = su {
                        if let Some(j) = gu {
                            g[(i, j)] -= gm;
                        }
                        if let Some(j) = du {
                            g[(i, j)] -= gds;
                        }
                        if let Some(j) = bu {
                            g[(i, j)] -= gmb;
                        }
                        g[(i, i)] += gsum;
                    }
                    // Charge derivatives -> capacitance stamps.
                    let q0 = model.charges(bias);
                    let dq = |db: Bias| {
                        let qp = model.charges(db);
                        [
                            (qp.qg - q0.qg) / FD_STEP,
                            (qp.qd - q0.qd) / FD_STEP,
                            (qp.qs - q0.qs) / FD_STEP,
                            (qp.qb - q0.qb) / FD_STEP,
                        ]
                    };
                    let c_vgs = dq(Bias {
                        vgs: bias.vgs + FD_STEP,
                        ..bias
                    });
                    let c_vds = dq(Bias {
                        vds: bias.vds + FD_STEP,
                        ..bias
                    });
                    let c_vbs = if b == s {
                        [0.0; 4]
                    } else {
                        dq(Bias {
                            vbs: bias.vbs + FD_STEP,
                            ..bias
                        })
                    };
                    let terms = [gu, du, su, bu];
                    for (t_i, &row) in terms.iter().enumerate() {
                        let Some(row) = row else { continue };
                        let cg = c_vgs[t_i];
                        let cd = c_vds[t_i];
                        let cb = c_vbs[t_i];
                        let cs = -(cg + cd + cb);
                        if let Some(j) = gu {
                            c[(row, j)] += cg;
                        }
                        if let Some(j) = du {
                            c[(row, j)] += cd;
                        }
                        if let Some(j) = su {
                            c[(row, j)] += cs;
                        }
                        if let Some(j) = bu {
                            c[(row, j)] += cb;
                        }
                    }
                }
            }
        }
        // Gmin floor on node diagonals (matches the DC assembly).
        for i in 0..nn {
            g[(i, i)] += 1e-12;
        }
    }
}

/// Reusable AC sweep scratch: real `(G, C)` linearization storage plus the
/// complex system `(G + jωC)`, its LU factorization, and the right-hand
/// side, all allocated once and refilled per operating point / frequency.
///
/// [`crate::Session`] caches one of these and routes every
/// [`crate::session::Analysis::Ac`] request (and [`crate::Session::ac_batch`])
/// through it; build one directly when driving sweeps from your own
/// operating points.
///
/// # Example
///
/// ```
/// use spice::ac::AcWorkspace;
/// use spice::{Circuit, Session, Waveform};
///
/// # fn main() -> Result<(), spice::SpiceError> {
/// // An RC low-pass: |H(fc)| = 1/sqrt(2) at the corner.
/// let mut c = Circuit::new();
/// let vin = c.node("in");
/// let out = c.node("out");
/// c.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
/// c.resistor("R1", vin, out, 1e3);
/// c.capacitor("C1", out, Circuit::GROUND, 1e-9);
/// let fc = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
///
/// let mut s = Session::elaborate(c.clone())?;
/// let op = s.dc_owned()?;
/// let mut ws = AcWorkspace::for_circuit(&c);
/// let res = ws.sweep(&c, op.raw(), "V1", &[fc])?;
/// assert!((res.magnitudes(out)[0] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
/// // Re-sweeping reuses every buffer — no further allocation of matrices.
/// let _again = ws.sweep(&c, op.raw(), "V1", &[fc / 10.0, fc, fc * 10.0])?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AcWorkspace {
    lin: Linearized,
    /// Assembled `G + jωC` for the current frequency point.
    m: CMatrix,
    /// Reused complex LU storage (initialized on the first point).
    lu: Option<CLu>,
    /// Unit-excitation right-hand side.
    b: Vec<C64>,
    /// Solution scratch for the current point.
    x: Vec<C64>,
}

impl AcWorkspace {
    /// Allocates a workspace sized for `circuit`.
    #[must_use]
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n = circuit.n_unknowns();
        AcWorkspace {
            lin: Linearized::for_circuit(circuit),
            m: CMatrix::zeros(n),
            lu: None,
            b: vec![C64::ZERO; n],
            x: vec![C64::ZERO; n],
        }
    }

    /// Linearizes `circuit` at `x_op`, applies a unit AC excitation to the
    /// voltage source named `source`, and solves at every frequency —
    /// refilling this workspace's storage instead of allocating.
    ///
    /// # Errors
    ///
    /// Fails if the source is missing, the frequency list is
    /// empty/non-positive, or a frequency point is singular.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was sized for a different circuit layout
    /// (see [`AcWorkspace::for_circuit`]).
    pub fn sweep(
        &mut self,
        circuit: &Circuit,
        x_op: &[f64],
        source: &str,
        freqs: &[f64],
    ) -> Result<AcResult, SpiceError> {
        if freqs.is_empty() || freqs.iter().any(|&f| f <= 0.0) {
            return Err(SpiceError::InvalidArgument {
                context: "AC sweep needs positive frequencies".into(),
            });
        }
        let src_idx = circuit.vsource_index(source)?;
        circuit.linearize_into(x_op, &mut self.lin);
        self.b.iter_mut().for_each(|v| *v = C64::ZERO);
        self.b[self.lin.nn + src_idx] = C64::ONE;
        let n = self.b.len();
        let mut solutions = Vec::with_capacity(freqs.len() * n);
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            self.m.assign_gc(&self.lin.g, &self.lin.c, omega);
            let singular = |e| SpiceError::SingularSystem {
                context: format!("AC point at {f:.3e} Hz: {e}"),
            };
            let lu = match self.lu.as_mut() {
                Some(lu) => {
                    lu.refactor(&self.m).map_err(singular)?;
                    lu
                }
                None => self.lu.insert(CLu::factor(&self.m).map_err(singular)?),
            };
            lu.solve_into(&self.b, &mut self.x).map_err(singular)?;
            solutions.extend_from_slice(&self.x);
        }
        Ok(AcResult {
            freqs: freqs.to_vec(),
            solutions,
            n,
        })
    }
}

/// Logarithmically spaced frequency points (decade sweep), starting at
/// `f_start` and always ending exactly at `f_stop` — for non-integer decade
/// spans the last regular point past `f_stop` is replaced by `f_stop`
/// itself, so the sweep covers its full range.
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `points_per_decade > 0`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start && points_per_decade > 0);
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    let mut freqs: Vec<f64> = (0..n)
        .map(|i| f_start * 10f64.powf(i as f64 / points_per_decade as f64))
        // Strictly below f_stop with a relative guard, so an integer-decade
        // span does not emit a rounding-level near-duplicate of the stop.
        .filter(|&f| f < f_stop * (1.0 - 1e-9))
        .collect();
    freqs.push(f_stop);
    freqs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::waveform::Waveform;
    use mosfet::{vs::VsModel, Geometry};

    #[test]
    fn rc_lowpass_bode() {
        let r = 1e3;
        let c = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s
            .ac_owned("V1", &[fc / 100.0, fc, fc * 100.0], &[])
            .unwrap();
        let mag = res.magnitudes(out);
        let ph = res.phases(out);
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband |H| = {}", mag[0]);
        assert!(
            (mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "|H(fc)| = {}",
            mag[1]
        );
        assert!(mag[2] < 0.011, "stopband |H| = {}", mag[2]);
        assert!(
            (ph[1] + std::f64::consts::FRAC_PI_4).abs() < 1e-3,
            "phase(fc) = {}",
            ph[1]
        );
    }

    #[test]
    fn inverter_small_signal_gain_rolls_off() {
        // Bias an inverter near its switching threshold; low-frequency gain
        // is well above 1 and falls at high frequency.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(0.9));
        ckt.vsource("VIN", vin, Circuit::GROUND, Waveform::dc(0.42));
        ckt.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0))),
        );
        ckt.mosfet(
            "MN",
            out,
            vin,
            Circuit::GROUND,
            Circuit::GROUND,
            Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0))),
        );
        ckt.capacitor("CL", out, Circuit::GROUND, 1e-15);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s.ac_owned("VIN", &[1e6, 1e12], &[]).unwrap();
        let mag = res.magnitudes(out);
        assert!(mag[0] > 2.0, "low-frequency gain = {}", mag[0]);
        assert!(mag[1] < 0.5 * mag[0], "gain must roll off: {mag:?}");
    }

    #[test]
    fn log_sweep_spacing() {
        let f = log_sweep(1e3, 1e6, 10);
        assert_eq!(f.len(), 31);
        assert!((f[10] / f[0] - 10.0).abs() < 1e-9);
        // Integer decade span: ends exactly at the stop, no near-duplicate.
        assert_eq!(*f.last().unwrap(), 1e6);
        assert!(f[29] < 1e6 * 0.95);
    }

    #[test]
    fn log_sweep_reaches_stop_on_non_integer_spans() {
        // Regression: 1e3 -> 5e5 spans 2.699 decades; the old endpoint
        // filter dropped the final generated point and topped out at
        // ~3.98e5 Hz, never reaching the requested stop.
        let f = log_sweep(1e3, 5e5, 10);
        assert_eq!(f[0], 1e3);
        assert_eq!(*f.last().unwrap(), 5e5);
        for w in f.windows(2) {
            assert!(w[1] > w[0], "not ascending: {} -> {}", w[0], w[1]);
        }
        // The regular grid is intact below the clamped endpoint.
        assert!((f[10] / f[0] - 10.0).abs() < 1e-9);
        // A fractional-decade stop lands between the last two grid points.
        assert!(f[f.len() - 2] < 5e5 && f[f.len() - 2] > 3.9e5);
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let mut s = Session::elaborate(ckt).unwrap();
        assert!(s.ac_owned("V1", &[], &[]).is_err());
        assert!(s.ac_owned("V1", &[-1.0], &[]).is_err());
        assert!(s.ac_owned("nope", &[1.0], &[]).is_err());
    }

    #[test]
    #[should_panic]
    fn log_sweep_validates() {
        log_sweep(0.0, 1e3, 10);
    }
}
