//! AC small-signal analysis.
//!
//! Linearizes the circuit at its DC operating point into conductance and
//! capacitance matrices `(G, C)`, then solves `(G + jωC) x = b` across a
//! frequency sweep with a unit-magnitude excitation on one voltage source —
//! the analysis the paper's Table IV runs on the SRAM cell ("SRAM AC").
//! Run it through [`crate::session::Analysis::Ac`]; the [`Circuit`] methods
//! below are deprecated one-shot shims.

use crate::elements::Element;
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use crate::session::Session;
use mosfet::Bias;
use numerics::complex::{CMatrix, C64};
use numerics::Matrix;

/// Perturbation step for small-signal linearization (V).
const FD_STEP: f64 = 1e-6;

/// Result of an AC sweep: complex node voltages per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    /// One complex unknown vector per frequency point.
    solutions: Vec<Vec<C64>>,
}

impl AcResult {
    /// Swept frequencies, Hz.
    #[must_use]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Complex voltage trace of a node across the sweep (0 for ground;
    /// plural, in line with [`crate::dc::SweepResult::voltages`]).
    #[must_use]
    pub fn voltages(&self, node: NodeId) -> Vec<C64> {
        match node.unknown() {
            None => vec![C64::ZERO; self.freqs.len()],
            Some(i) => self.solutions.iter().map(|x| x[i]).collect(),
        }
    }

    /// Voltage magnitude trace of a node across the sweep.
    #[must_use]
    pub fn magnitudes(&self, node: NodeId) -> Vec<f64> {
        self.voltages(node).into_iter().map(C64::abs).collect()
    }

    /// Voltage phase trace (radians) of a node across the sweep.
    #[must_use]
    pub fn phases(&self, node: NodeId) -> Vec<f64> {
        self.voltages(node).into_iter().map(C64::arg).collect()
    }

    /// Deprecated alias of [`AcResult::voltages`].
    #[deprecated(
        since = "0.2.0",
        note = "renamed to voltages (trace accessors are plural)"
    )]
    #[must_use]
    pub fn voltage(&self, node: NodeId) -> Vec<C64> {
        self.voltages(node)
    }

    /// Deprecated alias of [`AcResult::magnitudes`].
    #[deprecated(
        since = "0.2.0",
        note = "renamed to magnitudes (trace accessors are plural)"
    )]
    #[must_use]
    pub fn magnitude(&self, node: NodeId) -> Vec<f64> {
        self.magnitudes(node)
    }

    /// Deprecated alias of [`AcResult::phases`].
    #[deprecated(
        since = "0.2.0",
        note = "renamed to phases (trace accessors are plural)"
    )]
    #[must_use]
    pub fn phase(&self, node: NodeId) -> Vec<f64> {
        self.phases(node)
    }
}

/// Solves a linearized system across a frequency sweep with a unit
/// excitation on the `src_idx`-th voltage source. Shared by the session
/// engine and the legacy shims.
pub(crate) fn sweep_linearized(
    lin: &Linearized,
    src_idx: usize,
    freqs: &[f64],
) -> Result<AcResult, SpiceError> {
    let n = lin.g.rows();
    let mut b = vec![C64::ZERO; n];
    b[lin.nn + src_idx] = C64::ONE;
    let mut solutions = Vec::with_capacity(freqs.len());
    for &f in freqs {
        let omega = 2.0 * std::f64::consts::PI * f;
        let m = CMatrix::from_gc(&lin.g, &lin.c, omega);
        let x = m.solve(&b).map_err(|e| SpiceError::SingularSystem {
            context: format!("AC point at {f:.3e} Hz: {e}"),
        })?;
        solutions.push(x);
    }
    Ok(AcResult {
        freqs: freqs.to_vec(),
        solutions,
    })
}

/// Small-signal matrices at an operating point.
#[derive(Debug, Clone)]
pub struct Linearized {
    /// Conductance matrix (includes voltage-source branch rows).
    pub g: Matrix,
    /// Capacitance matrix (zero in the branch rows).
    pub c: Matrix,
    nn: usize,
}

impl Circuit {
    /// Linearizes every element at the operating-point unknown vector
    /// `x_op` (as returned by [`crate::dc::DcResult::raw`]).
    pub fn linearize(&self, x_op: &[f64]) -> Linearized {
        let nn = self.node_count() - 1;
        let n = self.n_unknowns();
        let mut g = Matrix::zeros(n, n);
        let mut c = Matrix::zeros(n, n);
        let volt = |node: NodeId| node.unknown().map_or(0.0, |i| x_op[i]);
        let stamp_g = |gm: &mut Matrix, a: Option<usize>, b: Option<usize>, v: f64| {
            if let Some(i) = a {
                gm[(i, i)] += v;
            }
            if let Some(j) = b {
                gm[(j, j)] += v;
            }
            if let (Some(i), Some(j)) = (a, b) {
                gm[(i, j)] -= v;
                gm[(j, i)] -= v;
            }
        };
        let mut v_idx = 0usize;
        for e in self.elements() {
            match e {
                Element::Resistor { a, b, r, .. } => {
                    stamp_g(&mut g, a.unknown(), b.unknown(), 1.0 / r);
                }
                Element::Capacitor { a, b, c: cap, .. } => {
                    stamp_g(&mut c, a.unknown(), b.unknown(), *cap);
                }
                Element::Vsource { pos, neg, .. } => {
                    let row = nn + v_idx;
                    if let Some(i) = pos.unknown() {
                        g[(i, row)] += 1.0;
                        g[(row, i)] += 1.0;
                    }
                    if let Some(j) = neg.unknown() {
                        g[(j, row)] -= 1.0;
                        g[(row, j)] -= 1.0;
                    }
                    v_idx += 1;
                }
                Element::Isource { .. } => {} // open in small signal
                Element::Mosfet {
                    d,
                    g: gate,
                    s,
                    b,
                    model,
                    ..
                } => {
                    let bias = Bias {
                        vgs: volt(*gate) - volt(*s),
                        vds: volt(*d) - volt(*s),
                        vbs: volt(*b) - volt(*s),
                    };
                    let id0 = model.ids(bias);
                    let d_of = |db: Bias| (model.ids(db) - id0) / FD_STEP;
                    let gm = d_of(Bias {
                        vgs: bias.vgs + FD_STEP,
                        ..bias
                    });
                    let gds = d_of(Bias {
                        vds: bias.vds + FD_STEP,
                        ..bias
                    });
                    let gmb = if b == s {
                        0.0
                    } else {
                        d_of(Bias {
                            vbs: bias.vbs + FD_STEP,
                            ..bias
                        })
                    };
                    let (du, gu, su, bu) = (d.unknown(), gate.unknown(), s.unknown(), b.unknown());
                    let gsum = gm + gds + gmb;
                    // Drain row of the transconductance stamp.
                    if let Some(i) = du {
                        if let Some(j) = gu {
                            g[(i, j)] += gm;
                        }
                        g[(i, i)] += gds;
                        if let Some(j) = bu {
                            g[(i, j)] += gmb;
                        }
                        if let Some(j) = su {
                            g[(i, j)] -= gsum;
                        }
                    }
                    if let Some(i) = su {
                        if let Some(j) = gu {
                            g[(i, j)] -= gm;
                        }
                        if let Some(j) = du {
                            g[(i, j)] -= gds;
                        }
                        if let Some(j) = bu {
                            g[(i, j)] -= gmb;
                        }
                        g[(i, i)] += gsum;
                    }
                    // Charge derivatives -> capacitance stamps.
                    let q0 = model.charges(bias);
                    let dq = |db: Bias| {
                        let qp = model.charges(db);
                        [
                            (qp.qg - q0.qg) / FD_STEP,
                            (qp.qd - q0.qd) / FD_STEP,
                            (qp.qs - q0.qs) / FD_STEP,
                            (qp.qb - q0.qb) / FD_STEP,
                        ]
                    };
                    let c_vgs = dq(Bias {
                        vgs: bias.vgs + FD_STEP,
                        ..bias
                    });
                    let c_vds = dq(Bias {
                        vds: bias.vds + FD_STEP,
                        ..bias
                    });
                    let c_vbs = if b == s {
                        [0.0; 4]
                    } else {
                        dq(Bias {
                            vbs: bias.vbs + FD_STEP,
                            ..bias
                        })
                    };
                    let terms = [gu, du, su, bu];
                    for (t_i, &row) in terms.iter().enumerate() {
                        let Some(row) = row else { continue };
                        let cg = c_vgs[t_i];
                        let cd = c_vds[t_i];
                        let cb = c_vbs[t_i];
                        let cs = -(cg + cd + cb);
                        if let Some(j) = gu {
                            c[(row, j)] += cg;
                        }
                        if let Some(j) = du {
                            c[(row, j)] += cd;
                        }
                        if let Some(j) = su {
                            c[(row, j)] += cs;
                        }
                        if let Some(j) = bu {
                            c[(row, j)] += cb;
                        }
                    }
                }
            }
        }
        // Gmin floor on node diagonals (matches the DC assembly).
        for i in 0..nn {
            g[(i, i)] += 1e-12;
        }
        Linearized { g, c, nn }
    }

    /// Runs an AC sweep: solves the operating point, linearizes, applies a
    /// unit AC magnitude to the voltage source named `source`, and solves
    /// at each frequency.
    ///
    /// # Errors
    ///
    /// Fails if the operating point cannot be found, the source is missing,
    /// the frequency list is empty/non-positive, or a frequency point is
    /// singular.
    #[deprecated(
        since = "0.2.0",
        note = "elaborate a spice::Session once and call Session::ac"
    )]
    pub fn ac_sweep(&self, source: &str, freqs: &[f64]) -> Result<AcResult, SpiceError> {
        Session::elaborate(self.clone())?.ac_owned(source, freqs, &[])
    }

    /// [`Circuit::ac_sweep`] around a caller-supplied operating point —
    /// needed for bistable circuits where the caller selects the state via
    /// a guessed DC solve.
    ///
    /// # Errors
    ///
    /// Same as [`Circuit::ac_sweep`], minus operating-point search.
    #[deprecated(
        since = "0.2.0",
        note = "elaborate a spice::Session once and call Session::ac_with_guess \
                (the session solves the guessed operating point itself)"
    )]
    pub fn ac_sweep_from_op(
        &self,
        source: &str,
        freqs: &[f64],
        op: &crate::dc::DcResult,
    ) -> Result<AcResult, SpiceError> {
        if freqs.is_empty() || freqs.iter().any(|&f| f <= 0.0) {
            return Err(SpiceError::InvalidArgument {
                context: "AC sweep needs positive frequencies".into(),
            });
        }
        let src_idx = self.vsource_index(source)?;
        let lin = self.linearize(op.raw());
        sweep_linearized(&lin, src_idx, freqs)
    }
}

/// Logarithmically spaced frequency points (decade sweep).
///
/// # Panics
///
/// Panics unless `0 < f_start < f_stop` and `points_per_decade > 0`.
pub fn log_sweep(f_start: f64, f_stop: f64, points_per_decade: usize) -> Vec<f64> {
    assert!(f_start > 0.0 && f_stop > f_start && points_per_decade > 0);
    let decades = (f_stop / f_start).log10();
    let n = (decades * points_per_decade as f64).ceil() as usize + 1;
    (0..n)
        .map(|i| f_start * 10f64.powf(i as f64 / points_per_decade as f64))
        .filter(|&f| f <= f_stop * 1.0001)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::Waveform;
    use mosfet::{vs::VsModel, Geometry};

    #[test]
    fn rc_lowpass_bode() {
        let r = 1e3;
        let c = 1e-9;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s
            .ac_owned("V1", &[fc / 100.0, fc, fc * 100.0], &[])
            .unwrap();
        let mag = res.magnitudes(out);
        let ph = res.phases(out);
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband |H| = {}", mag[0]);
        assert!(
            (mag[1] - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3,
            "|H(fc)| = {}",
            mag[1]
        );
        assert!(mag[2] < 0.011, "stopband |H| = {}", mag[2]);
        assert!(
            (ph[1] + std::f64::consts::FRAC_PI_4).abs() < 1e-3,
            "phase(fc) = {}",
            ph[1]
        );
    }

    #[test]
    fn inverter_small_signal_gain_rolls_off() {
        // Bias an inverter near its switching threshold; low-frequency gain
        // is well above 1 and falls at high frequency.
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(0.9));
        ckt.vsource("VIN", vin, Circuit::GROUND, Waveform::dc(0.42));
        ckt.mosfet(
            "MP",
            out,
            vin,
            vdd,
            vdd,
            Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0))),
        );
        ckt.mosfet(
            "MN",
            out,
            vin,
            Circuit::GROUND,
            Circuit::GROUND,
            Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0))),
        );
        ckt.capacitor("CL", out, Circuit::GROUND, 1e-15);
        let mut s = Session::elaborate(ckt).unwrap();
        let res = s.ac_owned("VIN", &[1e6, 1e12], &[]).unwrap();
        let mag = res.magnitudes(out);
        assert!(mag[0] > 2.0, "low-frequency gain = {}", mag[0]);
        assert!(mag[1] < 0.5 * mag[0], "gain must roll off: {mag:?}");
    }

    #[test]
    fn log_sweep_spacing() {
        let f = log_sweep(1e3, 1e6, 10);
        assert_eq!(f.len(), 31);
        assert!((f[10] / f[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.vsource("V1", a, Circuit::GROUND, Waveform::dc(1.0));
        ckt.resistor("R1", a, Circuit::GROUND, 1.0);
        let mut s = Session::elaborate(ckt).unwrap();
        assert!(s.ac_owned("V1", &[], &[]).is_err());
        assert!(s.ac_owned("V1", &[-1.0], &[]).is_err());
        assert!(s.ac_owned("nope", &[1.0], &[]).is_err());
    }

    #[test]
    #[should_panic]
    fn log_sweep_validates() {
        log_sweep(0.0, 1e3, 10);
    }
}
