//! Batched-vs-scalar DC equivalence suite.
//!
//! `Session::dc_batch` promises that lane `i` of a K-lane batch is
//! **bit-identical** to running the scalar path sequentially: swap lane
//! `i`'s devices, solve from the same entry state. These tests pin that
//! promise on a hand-built 6T SRAM cell under random mismatch draws, for
//! K ∈ {1, 4, 8}, from both cold (guess-built) and warm (seeded
//! operating point) starts — plus per-lane failure isolation and the
//! typed validation of the batch APIs.
//!
//! Self-contained by design: mismatch normals come from a hand-rolled
//! splitmix64 + Box-Muller generator keyed purely by `(seed, lane index)`,
//! so the scalar reference and the batched run draw identical devices
//! without sharing any mutable generator state.

use mosfet::vs::VsModel;
use mosfet::{Bias, Charges, Geometry, MismatchSpec, MosfetModel, Polarity};
use spice::{Circuit, NodeId, Session, SpiceError, Waveform};

const VDD: f64 = 0.9;

// ---------------------------------------------------------------------------
// Deterministic mismatch draws: splitmix64 + Box-Muller, keyed by (seed, i)
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn uniform(state: &mut u64) -> f64 {
    // 53 random bits in [0, 1).
    (splitmix(state) >> 11) as f64 / (1u64 << 53) as f64
}

fn standard_normal(state: &mut u64) -> f64 {
    let u1 = uniform(state).max(f64::MIN_POSITIVE);
    let u2 = uniform(state);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn spec() -> MismatchSpec {
    MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
}

// ---------------------------------------------------------------------------
// The cell: a 6T SRAM in hold state (word line low), built inline
// ---------------------------------------------------------------------------

const PD_GEOM: Geometry = Geometry {
    w: 260e-9,
    l: 40e-9,
};
const PU_GEOM: Geometry = Geometry {
    w: 130e-9,
    l: 40e-9,
};
const PG_GEOM: Geometry = Geometry {
    w: 180e-9,
    l: 40e-9,
};

/// Transistor names in the order lane draws list them.
const NAMES: [&str; 6] = ["PD1", "PD2", "PU1", "PU2", "PG1", "PG2"];

fn nominal(name: &str) -> Box<dyn MosfetModel> {
    match name {
        "PD1" | "PD2" => Box::new(VsModel::nominal_nmos_40nm(PD_GEOM)),
        "PU1" | "PU2" => Box::new(VsModel::nominal_pmos_40nm(PU_GEOM)),
        _ => Box::new(VsModel::nominal_nmos_40nm(PG_GEOM)),
    }
}

/// The 6T cell with nominal devices; returns `(circuit, l, r)`.
fn cell() -> (Circuit, NodeId, NodeId) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let l = c.node("l");
    let r = c.node("r");
    let bl = c.node("bl");
    let blb = c.node("blb");
    let wl = c.node("wl");
    c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VBL", bl, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VBLB", blb, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VWL", wl, Circuit::GROUND, Waveform::dc(0.0));
    c.mosfet(
        "PD1",
        l,
        r,
        Circuit::GROUND,
        Circuit::GROUND,
        nominal("PD1"),
    );
    c.mosfet(
        "PD2",
        r,
        l,
        Circuit::GROUND,
        Circuit::GROUND,
        nominal("PD2"),
    );
    c.mosfet("PU1", l, r, vdd, vdd, nominal("PU1"));
    c.mosfet("PU2", r, l, vdd, vdd, nominal("PU2"));
    c.mosfet("PG1", bl, wl, l, Circuit::GROUND, nominal("PG1"));
    c.mosfet("PG2", blb, wl, r, Circuit::GROUND, nominal("PG2"));
    (c, l, r)
}

/// One lane's mismatch draw: six varied devices, a pure function of
/// `(seed, lane index)`.
fn draw(seed: u64, lane: usize) -> Vec<(&'static str, Box<dyn MosfetModel>)> {
    let mut st = seed ^ (lane as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
    let sp = spec();
    NAMES
        .iter()
        .map(|&name| {
            let (geom, polarity, params) = match name {
                "PD1" | "PD2" => (PD_GEOM, Polarity::Nmos, mosfet::vs::VsParams::nmos_40nm()),
                "PU1" | "PU2" => (PU_GEOM, Polarity::Pmos, mosfet::vs::VsParams::pmos_40nm()),
                _ => (PG_GEOM, Polarity::Nmos, mosfet::vs::VsParams::nmos_40nm()),
            };
            let delta = sp.sample(geom, || standard_normal(&mut st));
            let model: Box<dyn MosfetModel> =
                Box::new(VsModel::with_variation(params, polarity, geom, delta));
            (name, model)
        })
        .collect()
}

fn bits(op: &spice::DcResult) -> Vec<u64> {
    op.raw().iter().map(|x| x.to_bits()).collect()
}

/// Scalar reference for one lane from a cold start: swap the lane's
/// devices, clear the warm start, solve from the node guess.
fn scalar_cold(s: &mut Session, seed: u64, lane: usize, guess: &[(NodeId, f64)]) -> Vec<u64> {
    s.swap_devices(draw(seed, lane)).expect("known names");
    s.invalidate_warm_start();
    bits(&s.dc_owned_with_guess(guess).expect("scalar converges"))
}

// ---------------------------------------------------------------------------
// Bit-identity: cold starts
// ---------------------------------------------------------------------------

#[test]
fn cold_start_lanes_are_bit_identical_to_scalar() {
    let seed = 0xc01d_5eed;
    let (c, l, r) = cell();
    let mut scalar = Session::elaborate(c).expect("valid cell");
    let guess = [(l, 0.0), (r, VDD)];
    let (c, _, _) = cell();
    let mut batched = Session::elaborate(c).expect("valid cell");
    for k in [1usize, 4, 8] {
        let reference: Vec<Vec<u64>> = (0..k)
            .map(|i| scalar_cold(&mut scalar, seed, i, &guess))
            .collect();
        batched.invalidate_warm_start();
        let lanes: Vec<_> = (0..k).map(|i| draw(seed, i)).collect();
        let ops = batched.dc_batch(lanes, Some(&guess)).expect("valid batch");
        assert_eq!(ops.len(), k);
        for (i, op) in ops.iter().enumerate() {
            let op = op.as_ref().expect("batched lane converges");
            assert_eq!(
                bits(op),
                reference[i],
                "cold-start lane {i} of K = {k} diverged from the scalar path"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-identity: warm starts (seeded operating point, no guess)
// ---------------------------------------------------------------------------

#[test]
fn warm_start_lanes_are_bit_identical_to_scalar() {
    let seed = 0x3a3a_1111;
    let (c, l, r) = cell();
    let mut scalar = Session::elaborate(c).expect("valid cell");
    let guess = [(l, 0.0), (r, VDD)];
    // A converged nominal operating point to warm-start every lane from.
    scalar
        .dc_owned_with_guess(&guess)
        .expect("nominal converges");
    let w0 = scalar
        .warm_start()
        .expect("solve left a warm start")
        .to_vec();
    let (c, _, _) = cell();
    let mut batched = Session::elaborate(c).expect("valid cell");
    for k in [1usize, 4, 8] {
        // Scalar reference: every lane departs from the same frozen w0,
        // exactly the dc_batch entry-state contract.
        let reference: Vec<Vec<u64>> = (0..k)
            .map(|i| {
                scalar.seed_warm_start(w0.clone()).expect("right length");
                scalar.swap_devices(draw(seed, i)).expect("known names");
                bits(&scalar.dc_owned().expect("scalar converges"))
            })
            .collect();
        batched.seed_warm_start(w0.clone()).expect("right length");
        let lanes: Vec<_> = (0..k).map(|i| draw(seed, i)).collect();
        let ops = batched.dc_batch(lanes, None).expect("valid batch");
        for (i, op) in ops.iter().enumerate() {
            let op = op.as_ref().expect("batched lane converges");
            assert_eq!(
                bits(op),
                reference[i],
                "warm-start lane {i} of K = {k} diverged from the scalar path"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Per-lane failure isolation
// ---------------------------------------------------------------------------

/// A model whose current is NaN at every bias — a poisoned draw that can
/// never converge.
#[derive(Debug, Clone)]
struct NanModel;

impl MosfetModel for NanModel {
    fn polarity(&self) -> Polarity {
        Polarity::Nmos
    }
    fn geometry(&self) -> Geometry {
        PD_GEOM
    }
    fn ids(&self, _bias: Bias) -> f64 {
        f64::NAN
    }
    fn charges(&self, _bias: Bias) -> Charges {
        Charges::default()
    }
    fn name(&self) -> &'static str {
        "nan"
    }
    fn clone_box(&self) -> Box<dyn MosfetModel> {
        Box::new(self.clone())
    }
}

#[test]
fn failed_lane_is_isolated_and_neighbors_stay_bit_identical() {
    let seed = 0xbad_1a2e;
    let (c, l, r) = cell();
    let mut scalar = Session::elaborate(c).expect("valid cell");
    let guess = [(l, 0.0), (r, VDD)];
    let (c, _, _) = cell();
    let mut batched = Session::elaborate(c).expect("valid cell");

    let k = 4;
    let poisoned = 2usize;
    let reference: Vec<Option<Vec<u64>>> = (0..k)
        .map(|i| (i != poisoned).then(|| scalar_cold(&mut scalar, seed, i, &guess)))
        .collect();
    batched.invalidate_warm_start();
    let lanes: Vec<Vec<(&str, Box<dyn MosfetModel>)>> = (0..k)
        .map(|i| {
            let mut lane = draw(seed, i);
            if i == poisoned {
                lane[0] = ("PD1", Box::new(NanModel));
            }
            lane
        })
        .collect();
    let ops = batched.dc_batch(lanes, Some(&guess)).expect("valid batch");
    for (i, op) in ops.iter().enumerate() {
        if i == poisoned {
            assert!(op.is_err(), "NaN lane must fail, not poison the batch");
        } else {
            assert_eq!(
                bits(op.as_ref().expect("healthy lane converges")),
                *reference[i].as_ref().expect("scalar reference"),
                "lane {i} next to a failed lane drifted"
            );
        }
    }

    // The batch never touches the session's own devices: a nominal solve
    // afterwards matches a fresh session's nominal solve bit for bit.
    batched.invalidate_warm_start();
    let after = batched
        .dc_owned_with_guess(&guess)
        .expect("nominal converges");
    let (c, _, _) = cell();
    let mut fresh = Session::elaborate(c).expect("valid cell");
    let expected = fresh
        .dc_owned_with_guess(&guess)
        .expect("nominal converges");
    assert_eq!(
        bits(&after),
        bits(&expected),
        "dc_batch mutated the circuit"
    );
}

// ---------------------------------------------------------------------------
// Typed validation of the batch APIs
// ---------------------------------------------------------------------------

#[test]
fn empty_batches_and_unknown_names_are_typed_errors() {
    let (c, _, _) = cell();
    let mut s = Session::elaborate(c).expect("valid cell");
    let err = s
        .dc_batch(Vec::<Vec<(&str, Box<dyn MosfetModel>)>>::new(), None)
        .expect_err("K = 0 must be rejected");
    assert!(
        matches!(err, SpiceError::InvalidArgument { .. }),
        "unexpected error for K = 0: {err}"
    );
    let err = s
        .dc_batch(vec![vec![("NOPE", nominal("PD1"))]], None)
        .expect_err("unknown device must be rejected");
    assert!(
        matches!(err, SpiceError::BadNetlist { .. }),
        "unexpected error for unknown name: {err}"
    );
}

#[test]
fn warm_start_seeding_validates_the_vector_length() {
    let (c, _, _) = cell();
    let mut s = Session::elaborate(c).expect("valid cell");
    let err = s
        .seed_warm_start(vec![0.0; 3])
        .expect_err("wrong length must be rejected");
    assert!(
        matches!(err, SpiceError::InvalidArgument { .. }),
        "unexpected error for short warm vector: {err}"
    );
    assert!(s.warm_start().is_none(), "rejected seed must not stick");
}
