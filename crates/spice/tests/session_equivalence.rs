//! Equivalence suite: a persistent [`Session`] (warm starts, reused
//! workspace, AC scratch, in-place device swaps) must reproduce one-shot
//! throwaway sessions — and, for AC, an independent per-point reference
//! solver — on real circuits: the parsed inverter-chain netlist of
//! `examples/netlist_sim.rs` and a 6T SRAM cell. Property tests cover
//! `swap_devices` + re-solve (DC) and resample→`ac_batch` (AC) against
//! fresh elaborations across random mismatch draws.

use mosfet::{vs::VsModel, Geometry, MosfetModel, StatParam, VariationDelta};
use numerics::complex::{CMatrix, C64};
use spice::{parser, Circuit, NodeId, Session, TranOptions, Waveform};

/// The three-stage inverter chain from `examples/netlist_sim.rs`.
const NETLIST: &str = "
* three-stage inverter chain, VS 40nm models
VDD vdd 0 DC 0.9
VIN in 0 PULSE(0 0.9 100p 15p 15p 600p 2n)

* stage 1
MP1 n1 in vdd vdd vsp W=600n L=40n
MN1 n1 in 0 0 vsn W=300n L=40n
C1 n1 0 0.5f

* stage 2
MP2 n2 n1 vdd vdd vsp W=600n L=40n
MN2 n2 n1 0 0 vsn W=300n L=40n
C2 n2 0 0.5f

* stage 3
MP3 out n2 vdd vdd vsp W=600n L=40n
MN3 out n2 0 0 vsn W=300n L=40n
CL out 0 1f
.end
";

const VDD: f64 = 0.9;

/// Newton converges the update norm below 1e-7 V; warm-started and cold
/// solves may approach the fixed point along different paths.
const TOL_V: f64 = 1e-6;

fn chain() -> Circuit {
    parser::parse(NETLIST).expect("bundled netlist parses")
}

/// One-shot reference: a fresh throwaway session per call, cold-started —
/// what the deprecated `Circuit::*` shims used to do.
fn one_shot(c: &Circuit) -> Session {
    Session::elaborate(c.clone()).expect("reference circuit elaborates")
}

/// Independent per-point AC reference: linearize at `x_op`, then build and
/// solve a fresh `G + jωC` system per frequency — the pre-workspace
/// architecture, kept here as the oracle for the batched/workspace path.
fn ac_reference_per_point(c: &Circuit, x_op: &[f64], source: &str, freqs: &[f64]) -> Vec<Vec<C64>> {
    let lin = c.linearize(x_op);
    let n = lin.g.rows();
    let nn = c.node_count() - 1;
    let src_idx = c.vsource_index(source).expect("source exists");
    let mut b = vec![C64::ZERO; n];
    b[nn + src_idx] = C64::ONE;
    freqs
        .iter()
        .map(|&f| {
            let omega = 2.0 * std::f64::consts::PI * f;
            CMatrix::from_gc(&lin.g, &lin.c, omega)
                .solve(&b)
                .expect("reference AC point solves")
        })
        .collect()
}

/// A 6T SRAM cell wired for READ (word line high, bit lines at Vdd),
/// mirroring `circuits::sram::full_cell`.
fn sram_cell(deltas: &[VariationDelta; 6]) -> (Circuit, NodeId, NodeId) {
    let gn = Geometry::from_nm(150.0, 40.0);
    let gp = Geometry::from_nm(80.0, 40.0);
    let ga = Geometry::from_nm(100.0, 40.0);
    let nmos = |d: VariationDelta, g| -> Box<dyn MosfetModel> {
        Box::new(VsModel::with_variation(
            mosfet::vs::VsParams::nmos_40nm(),
            mosfet::Polarity::Nmos,
            g,
            d,
        ))
    };
    let pmos = |d: VariationDelta| -> Box<dyn MosfetModel> {
        Box::new(VsModel::with_variation(
            mosfet::vs::VsParams::pmos_40nm(),
            mosfet::Polarity::Pmos,
            gp,
            d,
        ))
    };
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let l = c.node("l");
    let r = c.node("r");
    let bl = c.node("bl");
    let blb = c.node("blb");
    let wl = c.node("wl");
    c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VBL", bl, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VBLB", blb, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VWL", wl, Circuit::GROUND, Waveform::dc(VDD));
    c.mosfet("PU1", l, r, vdd, vdd, pmos(deltas[0]));
    c.mosfet(
        "PD1",
        l,
        r,
        Circuit::GROUND,
        Circuit::GROUND,
        nmos(deltas[1], gn),
    );
    c.mosfet("PG1", bl, wl, l, Circuit::GROUND, nmos(deltas[2], ga));
    c.mosfet("PU2", r, l, vdd, vdd, pmos(deltas[3]));
    c.mosfet(
        "PD2",
        r,
        l,
        Circuit::GROUND,
        Circuit::GROUND,
        nmos(deltas[4], gn),
    );
    c.mosfet("PG2", blb, wl, r, Circuit::GROUND, nmos(deltas[5], ga));
    (c, l, r)
}

fn all_nodes(c: &Circuit) -> Vec<NodeId> {
    // Probe every interned node by walking the element terminals.
    let mut v: Vec<NodeId> = c.elements().iter().flat_map(|e| e.nodes()).collect();
    v.sort();
    v.dedup();
    v
}

#[test]
fn chain_dc_matches_one_shot() {
    let c = chain();
    let reference = one_shot(&c).dc_owned().unwrap();
    let mut s = Session::elaborate(c.clone()).unwrap();
    // Run twice: the second solve is warm-started and must land on the
    // same operating point.
    for pass in 0..2 {
        let op = s.dc_owned().unwrap();
        for &n in &all_nodes(&c) {
            assert!(
                (op.voltage(n) - reference.voltage(n)).abs() < TOL_V,
                "pass {pass}, node {}: {} vs {}",
                c.node_name(n),
                op.voltage(n),
                reference.voltage(n)
            );
        }
    }
}

#[test]
fn chain_sweep_matches_one_shot() {
    let c = chain();
    let values: Vec<f64> = (0..19).map(|i| VDD * i as f64 / 18.0).collect();
    let reference = one_shot(&c).dc_sweep_owned("VIN", &values).unwrap();
    let mut s = Session::elaborate(c.clone()).unwrap();
    // Warm the session with an unrelated solve first.
    let _ = s.dc_owned().unwrap();
    let out = c.find_node("out").unwrap();
    let sweep = s.dc_sweep_owned("VIN", &values).unwrap();
    for (a, b) in sweep.voltages(out).iter().zip(reference.voltages(out)) {
        assert!((a - b).abs() < TOL_V, "{a} vs {b}");
    }
}

#[test]
fn chain_tran_matches_one_shot() {
    let c = chain();
    let opts = TranOptions::new(1.2e-9, 3e-12);
    let reference = one_shot(&c).tran_owned(&opts).unwrap();
    let mut s = Session::elaborate(c.clone()).unwrap();
    // Precede the transient with other runs so the session state is "hot".
    let _ = s.dc_owned().unwrap();
    let res = s.tran_owned(&opts).unwrap();
    assert_eq!(res.times().len(), reference.times().len());
    let out = c.find_node("out").unwrap();
    for (a, b) in res.voltages(out).iter().zip(reference.voltages(out)) {
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
    }
}

// ---- AC equivalence: workspace/batched path vs per-point reference ------

#[test]
fn chain_ac_matches_reference_per_point() {
    // A non-integer decade span, so the sweep exercises the clamped
    // log_sweep endpoint too.
    let c = chain();
    let freqs = spice::ac::log_sweep(1e6, 5e10, 4);
    assert_eq!(*freqs.last().unwrap(), 5e10);

    let op = one_shot(&c).dc_owned().unwrap();
    let reference = ac_reference_per_point(&c, op.raw(), "VIN", &freqs);

    let mut s = Session::elaborate(c.clone()).unwrap();
    let ac = s.ac_owned("VIN", &freqs, &[]).unwrap();
    // Repeat through the same (now warm) workspace: identical sweep.
    let ac2 = s.ac_owned("VIN", &freqs, &[]).unwrap();
    for &node in &all_nodes(&c) {
        let Some(i) = node.unknown() else { continue };
        for (k, point) in reference.iter().enumerate() {
            for probe in [&ac, &ac2] {
                let got = probe.voltages(node)[k];
                let want = point[i];
                assert!(
                    (got - want).abs() < 1e-9 * want.abs().max(1e-9),
                    "node {}, {} Hz: {:?} vs {:?}",
                    c.node_name(node),
                    freqs[k],
                    got,
                    want
                );
            }
        }
    }
}

#[test]
fn sram_dc_and_ac_match_one_shot() {
    let deltas = [VariationDelta::default(); 6];
    let (c, l, r) = sram_cell(&deltas);
    let guess = [(l, 0.0), (r, VDD)];
    let reference_op = one_shot(&c).dc_owned_with_guess(&guess).unwrap();
    let freqs = [1e6, 1e9];
    let reference_ac = ac_reference_per_point(&c, reference_op.raw(), "VBL", &freqs);

    let mut s = Session::elaborate(c.clone()).unwrap();
    let op = s.dc_owned_with_guess(&guess).unwrap();
    assert!((op.voltage(l) - reference_op.voltage(l)).abs() < TOL_V);
    assert!((op.voltage(r) - reference_op.voltage(r)).abs() < TOL_V);
    let ac = s.ac_owned("VBL", &freqs, &guess).unwrap();
    let li = l.unknown().unwrap();
    for (a, point) in ac.magnitudes(l).iter().zip(&reference_ac) {
        let b = point[li].abs();
        // The AC solution is linear in the operating point; tiny op-point
        // differences are amplified through subthreshold conductances.
        assert!((a - b).abs() < 1e-3 * b.max(1e-9), "{a} vs {b}");
    }
}

/// SplitMix64: a tiny deterministic generator for test-case sampling.
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }
}

/// Random threshold-voltage deltas for all six cell devices.
fn random_deltas(rng: &mut TestRng) -> [VariationDelta; 6] {
    let mut deltas = [VariationDelta::default(); 6];
    for d in &mut deltas {
        *d = VariationDelta::single(StatParam::Vt0, rng.range(-0.04, 0.04));
    }
    deltas
}

/// The six `(name, model)` swaps matching [`sram_cell`]'s instances.
fn cell_swaps(c_fresh: &Circuit) -> Vec<(String, Box<dyn MosfetModel>)> {
    let mut swaps = Vec::new();
    for e in c_fresh.elements() {
        if let spice::elements::Element::Mosfet { name, model, .. } = e {
            swaps.push((name.clone(), model.clone_box()));
        }
    }
    swaps
}

/// Property: swapping devices into a live session and re-solving equals a
/// fresh elaboration of the netlist built with those devices — across many
/// random mismatch draws, with the session accumulating warm starts.
#[test]
fn swapped_session_equals_fresh_elaboration_property() {
    let mut rng = TestRng(0xe95_0051);
    let nominal = [VariationDelta::default(); 6];
    let (c0, l, r) = sram_cell(&nominal);
    let mut session = Session::elaborate(c0).unwrap();
    let guess = [(l, 0.0), (r, VDD)];

    for trial in 0..12 {
        let deltas = random_deltas(&mut rng);
        // In-place swap on the persistent session (warm-started solve)...
        let (c_fresh, _, _) = sram_cell(&deltas);
        assert_eq!(session.swap_devices(cell_swaps(&c_fresh)).unwrap(), 6);
        let warm = session.dc_owned_with_guess(&guess).unwrap();
        // ...must match a cold fresh elaboration of the same netlist.
        let cold = Session::elaborate(c_fresh)
            .unwrap()
            .dc_owned_with_guess(&guess)
            .unwrap();
        for &n in &[l, r] {
            assert!(
                (warm.voltage(n) - cold.voltage(n)).abs() < TOL_V,
                "trial {trial}: warm {} vs cold {}",
                warm.voltage(n),
                cold.voltage(n)
            );
        }
    }
}

/// Property: the batched AC path (`swap_devices` + `ac_batch`, warm
/// operating points, reused workspace) equals the per-point reference
/// computed on a fresh cold elaboration of the same devices — the paper's
/// "SRAM AC" Monte Carlo inner loop, across random mismatch draws.
#[test]
fn sram_ac_batch_equals_per_point_reference_across_resamples() {
    let mut rng = TestRng(0xac_5eed);
    let nominal = [VariationDelta::default(); 6];
    let (c0, l, r) = sram_cell(&nominal);
    let mut session = Session::elaborate(c0).unwrap();
    let guess = [(l, 0.0), (r, VDD)];
    // Non-integer decade span ending exactly at the stop frequency.
    let freqs = spice::ac::log_sweep(1e6, 4e10, 3);
    assert_eq!(*freqs.last().unwrap(), 4e10);
    let li = l.unknown().unwrap();

    for trial in 0..8 {
        let deltas = random_deltas(&mut rng);
        let (c_fresh, _, _) = sram_cell(&deltas);
        assert_eq!(session.swap_devices(cell_swaps(&c_fresh)).unwrap(), 6);
        let batched = session.ac_batch("VBL", &freqs, &guess).unwrap();

        // Reference: cold guessed operating point + per-point solves on an
        // independent elaboration of the same sample.
        let cold_op = Session::elaborate(c_fresh.clone())
            .unwrap()
            .dc_owned_with_guess(&guess)
            .unwrap();
        let reference = ac_reference_per_point(&c_fresh, cold_op.raw(), "VBL", &freqs);

        for (k, point) in reference.iter().enumerate() {
            let got = batched.magnitudes(l)[k];
            let want = point[li].abs();
            // Warm vs cold operating points differ at the Newton tolerance;
            // the linearization amplifies that through subthreshold
            // conductances, hence the relative 1e-3 band (as for the DC+AC
            // one-shot comparison above).
            assert!(
                (got - want).abs() < 1e-3 * want.max(1e-9),
                "trial {trial}, {} Hz: {got} vs {want}",
                freqs[k]
            );
        }
    }
}
