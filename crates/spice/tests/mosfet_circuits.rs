//! Integration tests: compact models inside the MNA engine.
//!
//! These exercise the full nonlinear DC and transient paths with both the
//! VS and BSIM-like models, on the smallest meaningful circuit (a CMOS
//! inverter) — the building block of every benchmark in the paper.

use mosfet::{bsim::BsimModel, vs::VsModel, Geometry, MosfetModel};
use spice::{Circuit, Session, TranOptions, Waveform};

const VDD: f64 = 0.9;

/// Builds a CMOS inverter driving a load capacitor; returns (circuit, in, out).
fn inverter(
    nmos: Box<dyn MosfetModel>,
    pmos: Box<dyn MosfetModel>,
    cload: f64,
) -> (Circuit, spice::NodeId, spice::NodeId) {
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let vin = c.node("in");
    let out = c.node("out");
    c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(VDD));
    c.vsource("VIN", vin, Circuit::GROUND, Waveform::dc(0.0));
    c.mosfet("MP", out, vin, vdd, vdd, pmos);
    c.mosfet("MN", out, vin, Circuit::GROUND, Circuit::GROUND, nmos);
    c.capacitor("CL", out, Circuit::GROUND, cload);
    (c, vin, out)
}

fn vs_pair() -> (Box<dyn MosfetModel>, Box<dyn MosfetModel>) {
    (
        Box::new(VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0))),
        Box::new(VsModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0))),
    )
}

fn bsim_pair() -> (Box<dyn MosfetModel>, Box<dyn MosfetModel>) {
    (
        Box::new(BsimModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0))),
        Box::new(BsimModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0))),
    )
}

#[test]
fn inverter_dc_rails_vs_model() {
    let (n, p) = vs_pair();
    let (c, _vin, out) = inverter(n, p, 1e-15);
    // Input low -> output at VDD.
    let op = Session::elaborate(c).unwrap().dc_owned().unwrap();
    assert!(
        (op.voltage(out) - VDD).abs() < 0.02,
        "out = {}",
        op.voltage(out)
    );
}

#[test]
fn inverter_vtc_is_monotone_and_switches_vs_model() {
    let (n, p) = vs_pair();
    let (c, _vin, out) = inverter(n, p, 1e-15);
    let vals: Vec<f64> = (0..=45).map(|i| i as f64 * 0.02).collect();
    let sweep = Session::elaborate(c)
        .unwrap()
        .dc_sweep_owned("VIN", &vals)
        .unwrap();
    let vout = sweep.voltages(out);
    // Monotone decreasing.
    for w in vout.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-6,
            "VTC not monotone: {} -> {}",
            w[0],
            w[1]
        );
    }
    // Full swing.
    assert!(vout[0] > 0.95 * VDD);
    assert!(vout[vout.len() - 1] < 0.05 * VDD);
    // Switching threshold in a sensible window (0.3..0.6 of VDD).
    let vm_idx = vout.iter().position(|&v| v < VDD / 2.0).unwrap();
    let vm = vals[vm_idx];
    assert!((0.25 * VDD..0.75 * VDD).contains(&vm), "Vm = {vm}");
}

#[test]
fn inverter_vtc_bsim_model() {
    let (n, p) = bsim_pair();
    let (c, _vin, out) = inverter(n, p, 1e-15);
    let vals: Vec<f64> = (0..=45).map(|i| i as f64 * 0.02).collect();
    let sweep = Session::elaborate(c)
        .unwrap()
        .dc_sweep_owned("VIN", &vals)
        .unwrap();
    let vout = sweep.voltages(out);
    assert!(vout[0] > 0.95 * VDD);
    assert!(vout[vout.len() - 1] < 0.05 * VDD);
}

#[test]
fn inverter_transient_switches_both_models() {
    for (label, (n, p)) in [("vs", vs_pair()), ("bsim", bsim_pair())] {
        let (mut c, _vin, out) = inverter(n, p, 2e-15);
        c.set_vsource(
            "VIN",
            Waveform::Pulse {
                v1: 0.0,
                v2: VDD,
                delay: 50e-12,
                rise: 10e-12,
                fall: 10e-12,
                width: 500e-12,
                period: 0.0,
            },
        )
        .unwrap();
        let mut s = Session::elaborate(c).unwrap();
        let res = s.tran_owned(&TranOptions::new(1.2e-9, 2e-12)).unwrap();
        let vout = res.voltages(out);
        let t = res.times();
        // Starts high.
        assert!(vout[0] > 0.95 * VDD, "{label}: v(0) = {}", vout[0]);
        // Falls after the input rises.
        let fall =
            spice::measure::cross_time(t, &vout, VDD / 2.0, spice::measure::Edge::Falling, 0.0);
        assert!(fall.is_some(), "{label}: output never fell");
        let tf = fall.unwrap();
        assert!(tf > 50e-12 && tf < 300e-12, "{label}: fall at {tf:.3e}");
        // Rises again after the input falls.
        let rise =
            spice::measure::cross_time(t, &vout, VDD / 2.0, spice::measure::Edge::Rising, tf);
        assert!(rise.is_some(), "{label}: output never recovered");
        // Delay is in the ps range for these loads.
        let delay = spice::measure::prop_delay(
            t,
            &res.voltages(s.circuit().find_node("in").unwrap()),
            &vout,
            VDD / 2.0,
            spice::measure::Edge::Rising,
        )
        .unwrap();
        assert!(
            delay > 0.2e-12 && delay < 100e-12,
            "{label}: delay = {delay:.3e}"
        );
    }
}

#[test]
fn inverter_supply_current_spikes_during_switching() {
    let (n, p) = vs_pair();
    let (mut c, _vin, _out) = inverter(n, p, 2e-15);
    c.set_vsource(
        "VIN",
        Waveform::Pulse {
            v1: 0.0,
            v2: VDD,
            delay: 100e-12,
            rise: 20e-12,
            fall: 20e-12,
            width: 400e-12,
            period: 0.0,
        },
    )
    .unwrap();
    let res = Session::elaborate(c)
        .unwrap()
        .tran_owned(&TranOptions::new(1e-9, 2e-12))
        .unwrap();
    let idd = res.vsource_currents(0); // VDD source is first
    let t = res.times();
    // Quiescent current (before the edge) is tiny; switching current is not.
    let i_quiet = idd
        .iter()
        .zip(t)
        .filter(|&(_, &tt)| tt < 80e-12)
        .map(|(i, _)| i.abs())
        .fold(0.0_f64, f64::max);
    let i_peak = idd.iter().map(|i| i.abs()).fold(0.0_f64, f64::max);
    assert!(
        i_peak > 20.0 * i_quiet,
        "peak {i_peak:.3e} vs quiet {i_quiet:.3e}"
    );
}

#[test]
fn nmos_iv_through_simulator_matches_model() {
    // A single NMOS with drain driven by a source: the simulator's branch
    // current must equal the model's ids.
    let geom = Geometry::from_nm(600.0, 40.0);
    let model = VsModel::nominal_nmos_40nm(geom);
    let direct = model.ids(mosfet::Bias {
        vgs: 0.9,
        vds: 0.6,
        vbs: 0.0,
    });

    let mut c = Circuit::new();
    let d = c.node("d");
    let g = c.node("g");
    c.vsource("VD", d, Circuit::GROUND, Waveform::dc(0.6));
    c.vsource("VG", g, Circuit::GROUND, Waveform::dc(0.9));
    c.mosfet(
        "M1",
        d,
        g,
        Circuit::GROUND,
        Circuit::GROUND,
        Box::new(model),
    );
    let op = Session::elaborate(c).unwrap().dc_owned().unwrap();
    // The drain source supplies the drain current: i(VD) = -Id.
    let i_vd = op.vsource_current(0);
    assert!(
        (i_vd + direct).abs() < 1e-9 + 1e-6 * direct.abs(),
        "sim {i_vd:.6e} vs model {direct:.6e}"
    );
}

#[test]
fn bistable_latch_respects_initial_guess() {
    // Two cross-coupled inverters: the DC guess picks the state.
    let mut c = Circuit::new();
    let vdd = c.node("vdd");
    let q = c.node("q");
    let qb = c.node("qb");
    c.vsource("VDD", vdd, Circuit::GROUND, Waveform::dc(VDD));
    let g = Geometry::from_nm(150.0, 40.0);
    let gp = Geometry::from_nm(300.0, 40.0);
    c.mosfet(
        "MP1",
        q,
        qb,
        vdd,
        vdd,
        Box::new(VsModel::nominal_pmos_40nm(gp)),
    );
    c.mosfet(
        "MN1",
        q,
        qb,
        Circuit::GROUND,
        Circuit::GROUND,
        Box::new(VsModel::nominal_nmos_40nm(g)),
    );
    c.mosfet(
        "MP2",
        qb,
        q,
        vdd,
        vdd,
        Box::new(VsModel::nominal_pmos_40nm(gp)),
    );
    c.mosfet(
        "MN2",
        qb,
        q,
        Circuit::GROUND,
        Circuit::GROUND,
        Box::new(VsModel::nominal_nmos_40nm(g)),
    );

    let mut s = Session::elaborate(c).unwrap();
    let op_q1 = s.dc_owned_with_guess(&[(q, VDD), (qb, 0.0)]).unwrap();
    assert!(op_q1.voltage(q) > 0.8 * VDD, "q = {}", op_q1.voltage(q));
    assert!(op_q1.voltage(qb) < 0.2 * VDD);

    let op_q0 = s.dc_owned_with_guess(&[(q, 0.0), (qb, VDD)]).unwrap();
    assert!(op_q0.voltage(q) < 0.2 * VDD, "q = {}", op_q0.voltage(q));
    assert!(op_q0.voltage(qb) > 0.8 * VDD);
}
