//! Property-style tests for the circuit simulator: randomized inputs from
//! a small in-file PRNG (deterministic, seeded), checked against analytic
//! circuit theory. Runs through the session API.

use spice::{Circuit, Session, TranOptions, Waveform};

/// SplitMix64: a tiny deterministic generator for test-case sampling.
struct TestRng(u64);

impl TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * u
    }

    fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A random series resistor ladder from a source to ground: node voltages
/// must follow the analytic divider formula.
fn ladder(resistors: &[f64], v: f64) -> (Circuit, Vec<spice::NodeId>) {
    let mut c = Circuit::new();
    let top = c.node("n0");
    c.vsource("V1", top, Circuit::GROUND, Waveform::dc(v));
    let mut nodes = vec![top];
    let mut prev = top;
    for (i, &r) in resistors.iter().enumerate() {
        let next = if i + 1 == resistors.len() {
            Circuit::GROUND
        } else {
            c.node(&format!("n{}", i + 1))
        };
        c.resistor(&format!("R{i}"), prev, next, r);
        if next != Circuit::GROUND {
            nodes.push(next);
        }
        prev = next;
    }
    (c, nodes)
}

#[test]
fn resistor_ladder_matches_divider_formula() {
    let mut rng = TestRng(0x1adde5);
    for _ in 0..48 {
        let n_r = 2 + rng.index(4);
        let rs: Vec<f64> = (0..n_r).map(|_| rng.range(10.0, 1e6)).collect();
        let v = rng.range(-5.0, 5.0);
        let (c, nodes) = ladder(&rs, v);
        let op = Session::elaborate(c)
            .expect("ladder is well-formed")
            .dc_owned()
            .expect("linear circuit solves");
        let r_total: f64 = rs.iter().sum();
        // Voltage at node k is v * (remaining resistance below k) / total.
        let mut below = r_total;
        // The GMIN floor (1e-12 S per node) perturbs high-impedance ladders
        // by up to ~n * R * gmin * |v|.
        let tol = 1e-6 * v.abs().max(1.0) + 10.0 * r_total * 1e-12 * v.abs();
        for (k, &node) in nodes.iter().enumerate() {
            let expected = v * below / r_total;
            let got = op.voltage(node);
            assert!(
                (got - expected).abs() < tol,
                "node {k}: {got} vs {expected}"
            );
            below -= rs[k];
        }
        // Source current = -v / r_total, up to the simulator's GMIN floor
        // (1e-12 S from every node to ground).
        let gmin_leak = 10.0 * v.abs() * 1e-12;
        assert!(
            (op.vsource_current(0) + v / r_total).abs()
                < 1e-9 * (v.abs() / r_total).max(1e-12) + gmin_leak
        );
    }
}

#[test]
fn superposition_holds_for_two_sources() {
    let mut rng = TestRng(0x5afe2);
    for _ in 0..32 {
        let v1 = rng.range(-2.0, 2.0);
        let v2 = rng.range(-2.0, 2.0);
        let r1 = rng.range(100.0, 10e3);
        let r2 = rng.range(100.0, 10e3);
        let r3 = rng.range(100.0, 10e3);
        // Two sources driving a common node through r1/r2, r3 to ground.
        let run = |a: f64, b: f64| {
            let mut c = Circuit::new();
            let na = c.node("a");
            let nb = c.node("b");
            let mid = c.node("mid");
            c.vsource("VA", na, Circuit::GROUND, Waveform::dc(a));
            c.vsource("VB", nb, Circuit::GROUND, Waveform::dc(b));
            c.resistor("R1", na, mid, r1);
            c.resistor("R2", nb, mid, r2);
            c.resistor("R3", mid, Circuit::GROUND, r3);
            Session::elaborate(c)
                .expect("well-formed")
                .dc_owned()
                .expect("linear")
                .voltage(mid)
        };
        let both = run(v1, v2);
        let only1 = run(v1, 0.0);
        let only2 = run(0.0, v2);
        assert!((both - (only1 + only2)).abs() < 1e-8);
    }
}

#[test]
fn rc_transient_settles_to_source_value() {
    let mut rng = TestRng(0x7c1e4);
    for _ in 0..12 {
        let r = rng.range(100.0, 100e3);
        let c_val = rng.range(1e-13, 1e-10);
        let v = rng.range(0.1, 3.0);
        let tau = r * c_val;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource(
            "V1",
            vin,
            Circuit::GROUND,
            Waveform::step(0.0, v, 0.0, tau / 100.0),
        );
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c_val);
        let res = Session::elaborate(ckt)
            .expect("well-formed")
            .tran_owned(&TranOptions::new(8.0 * tau, tau / 40.0))
            .expect("transient");
        let vo = res.voltages(out);
        let last = vo[vo.len() - 1];
        assert!(
            (last - v).abs() < 1e-3 * v,
            "settled to {last}, expected {v}"
        );
        // Energy sanity: output never overshoots the source (RC is monotone).
        assert!(vo.iter().all(|&x| x <= v * (1.0 + 1e-6)));
    }
}

#[test]
fn ac_rc_matches_transfer_function() {
    let mut rng = TestRng(0xac0);
    for _ in 0..24 {
        let r = rng.range(100.0, 100e3);
        let c_val = rng.range(1e-13, 1e-10);
        let decade = rng.index(5) as i32 - 2;
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c_val);
        let f = fc * 10f64.powi(decade);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c_val);
        let res = Session::elaborate(ckt)
            .expect("well-formed")
            .ac_owned("V1", &[f], &[])
            .expect("ac");
        let mag = res.magnitudes(out)[0];
        let expected = 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
        assert!(
            (mag - expected).abs() < 1e-3,
            "|H({f:.3e})| = {mag} vs {expected}"
        );
    }
}
