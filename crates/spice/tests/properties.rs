//! Property-based tests for the circuit simulator.

use proptest::prelude::*;
use spice::{Circuit, TranOptions, Waveform};

/// A random series resistor ladder from a source to ground: node voltages
/// must follow the analytic divider formula.
fn ladder(resistors: &[f64], v: f64) -> (Circuit, Vec<spice::NodeId>) {
    let mut c = Circuit::new();
    let top = c.node("n0");
    c.vsource("V1", top, Circuit::GROUND, Waveform::dc(v));
    let mut nodes = vec![top];
    let mut prev = top;
    for (i, &r) in resistors.iter().enumerate() {
        let next = if i + 1 == resistors.len() {
            Circuit::GROUND
        } else {
            c.node(&format!("n{}", i + 1))
        };
        c.resistor(&format!("R{i}"), prev, next, r);
        if next != Circuit::GROUND {
            nodes.push(next);
        }
        prev = next;
    }
    (c, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn resistor_ladder_matches_divider_formula(
        rs in proptest::collection::vec(10.0..1e6f64, 2..6),
        v in -5.0..5.0f64,
    ) {
        let (c, nodes) = ladder(&rs, v);
        let op = c.dc_op().expect("linear circuit solves");
        let r_total: f64 = rs.iter().sum();
        // Voltage at node k is v * (remaining resistance below k) / total.
        let mut below = r_total;
        // The GMIN floor (1e-12 S per node) perturbs high-impedance ladders
        // by up to ~n * R * gmin * |v|.
        let tol = 1e-6 * v.abs().max(1.0) + 10.0 * r_total * 1e-12 * v.abs();
        for (k, &node) in nodes.iter().enumerate() {
            let expected = v * below / r_total;
            let got = op.voltage(node);
            prop_assert!(
                (got - expected).abs() < tol,
                "node {k}: {got} vs {expected}"
            );
            below -= rs[k];
        }
        // Source current = -v / r_total, up to the simulator's GMIN floor
        // (1e-12 S from every node to ground).
        let gmin_leak = 10.0 * v.abs() * 1e-12;
        prop_assert!(
            (op.vsource_current(0) + v / r_total).abs()
                < 1e-9 * (v.abs() / r_total).max(1e-12) + gmin_leak
        );
    }

    #[test]
    fn superposition_holds_for_two_sources(
        v1 in -2.0..2.0f64,
        v2 in -2.0..2.0f64,
        r1 in 100.0..10e3f64,
        r2 in 100.0..10e3f64,
        r3 in 100.0..10e3f64,
    ) {
        // Two sources driving a common node through r1/r2, r3 to ground.
        let run = |a: f64, b: f64| {
            let mut c = Circuit::new();
            let na = c.node("a");
            let nb = c.node("b");
            let mid = c.node("mid");
            c.vsource("VA", na, Circuit::GROUND, Waveform::dc(a));
            c.vsource("VB", nb, Circuit::GROUND, Waveform::dc(b));
            c.resistor("R1", na, mid, r1);
            c.resistor("R2", nb, mid, r2);
            c.resistor("R3", mid, Circuit::GROUND, r3);
            let op = c.dc_op().expect("linear");
            op.voltage(mid)
        };
        let both = run(v1, v2);
        let only1 = run(v1, 0.0);
        let only2 = run(0.0, v2);
        prop_assert!((both - (only1 + only2)).abs() < 1e-8);
    }

    #[test]
    fn rc_transient_settles_to_source_value(
        r in 100.0..100e3f64,
        c_val in 1e-13..1e-10f64,
        v in 0.1..3.0f64,
    ) {
        let tau = r * c_val;
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::step(0.0, v, 0.0, tau / 100.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c_val);
        let res = ckt.tran(&TranOptions::new(8.0 * tau, tau / 40.0)).expect("transient");
        let vo = res.voltage(out);
        let last = vo[vo.len() - 1];
        prop_assert!((last - v).abs() < 1e-3 * v, "settled to {last}, expected {v}");
        // Energy sanity: output never overshoots the source (RC is monotone).
        prop_assert!(vo.iter().all(|&x| x <= v * (1.0 + 1e-6)));
    }

    #[test]
    fn ac_rc_matches_transfer_function(
        r in 100.0..100e3f64,
        c_val in 1e-13..1e-10f64,
        decade in -2..3i32,
    ) {
        let fc = 1.0 / (2.0 * std::f64::consts::PI * r * c_val);
        let f = fc * 10f64.powi(decade);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let out = ckt.node("out");
        ckt.vsource("V1", vin, Circuit::GROUND, Waveform::dc(0.0));
        ckt.resistor("R1", vin, out, r);
        ckt.capacitor("C1", out, Circuit::GROUND, c_val);
        let res = ckt.ac_sweep("V1", &[f]).expect("ac");
        let mag = res.magnitude(out)[0];
        let expected = 1.0 / (1.0 + (f / fc).powi(2)).sqrt();
        prop_assert!((mag - expected).abs() < 1e-3, "|H({f:.3e})| = {mag} vs {expected}");
    }
}
