//! Determinism contract of the parallel Monte Carlo executor.
//!
//! `ParallelRunner` promises that the set of `(sample index, value)` pairs
//! and the merged moments are *bit-identical* for any worker count when
//! each sample is a pure function of its derived sampler stream. These
//! tests pin that down on the device-level workload (stateless), on a
//! circuit-level SRAM workload (cold-started sessions), and for the
//! round-boundary early-stopping rule — and extend the same contract to
//! the streaming path: every shipped sink fed by `run_streaming` (P²
//! sketch, histogram, CSV bytes, Welford moments) must end in bit-identical
//! state for any worker count, under early stopping, and under panics.

use circuits::sram::{full_cell, SramDevices, SramSizing};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use spice::Session;
use stats::histogram::Histogram;
use stats::{Sampler, Welford};
use vscore::mc::{
    CsvSink, EarlyStop, GaussianProposal, McFactory, MergeableSink, P2Quantiles, ParallelRunner,
    Sink, TDigest, VecSink, WeightedHistogram, WeightedMoments, WeightedSink, WelfordSink,
};
use vscore::metrics::DeviceMetrics;
use vscore::sensitivity::{VariedModel, VsBuilder};

const VDD: f64 = 0.9;

fn builder() -> VsBuilder {
    VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom: Geometry::from_nm(600.0, 40.0),
    }
}

fn spec() -> MismatchSpec {
    MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
}

/// A VS-family device factory over the paper's mismatch spec, fed by the
/// given sampler — the template shape every SRAM workload here uses.
fn sram_factory(sampler: Sampler) -> McFactory {
    McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec(),
        spec(),
        sampler,
    )
}

/// Runs the stateless device-level workload on `workers` threads.
fn device_run(seed: u64, n: usize, workers: usize) -> (Vec<(usize, u64)>, Welford) {
    let b = builder();
    let sp = spec();
    let out = ParallelRunner::new(seed)
        .workers(workers)
        .run_scalar(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
        )
        .expect("infallible setup");
    let bits = out
        .samples()
        .iter()
        .map(|&(i, x)| (i, x.to_bits()))
        .collect();
    (bits, out.moments())
}

#[test]
fn device_level_runs_are_thread_count_invariant() {
    // Property loop: several seeds and sizes, three worker counts each.
    for (seed, n) in [(1u64, 97), (42, 256), (0xdead_beef, 33)] {
        let (s1, m1) = device_run(seed, n, 1);
        assert_eq!(s1.len(), n, "stateless workload never fails");
        for workers in [2, 8] {
            let (sw, mw) = device_run(seed, n, workers);
            assert_eq!(
                s1, sw,
                "seed {seed}: sample set differs at {workers} workers"
            );
            assert_eq!(
                m1.mean().to_bits(),
                mw.mean().to_bits(),
                "seed {seed}: merged mean differs at {workers} workers"
            );
            assert_eq!(m1.variance().to_bits(), mw.variance().to_bits());
            assert_eq!(m1.count(), mw.count());
            assert_eq!(m1.min().to_bits(), mw.min().to_bits());
            assert_eq!(m1.max().to_bits(), mw.max().to_bits());
        }
    }
}

#[test]
fn device_level_runs_depend_on_seed() {
    let (a, _) = device_run(7, 64, 2);
    let (b, _) = device_run(8, 64, 2);
    assert_ne!(a, b);
}

/// Circuit-level workload: full 6T cell DC solve with per-sample device
/// swaps. Cold-starting every sample makes each one a pure function of its
/// sampler stream, so the bit-exactness guarantee applies; warm-started
/// production loops trade that for speed (same statistics, last-bit drift).
fn sram_run(seed: u64, n: usize, workers: usize) -> Vec<(usize, u64)> {
    let sz = SramSizing::default();
    let template = McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec(),
        spec(),
        Sampler::from_seed(0),
    );
    let out = ParallelRunner::new(seed)
        .workers(workers)
        .run(
            n,
            |_, setup_sampler| {
                let mut f = template.clone();
                f.set_sampler(setup_sampler.clone());
                let devices = SramDevices::draw(sz, &mut f);
                let (c, l, r) = full_cell(&devices, VDD);
                let session = Session::elaborate(c)?;
                Ok((session, l, r))
            },
            |(session, l, r), sampler, _| {
                let mut f = template.clone();
                f.set_sampler(sampler.clone());
                let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                let [pd0, pd1] = pd;
                let [pu0, pu1] = pu;
                let [pg0, pg1] = pg;
                session.swap_devices([
                    ("PD1", pd0),
                    ("PD2", pd1),
                    ("PU1", pu0),
                    ("PU2", pu1),
                    ("PG1", pg0),
                    ("PG2", pg1),
                ])?;
                session.invalidate_warm_start();
                let op = session.dc_owned_with_guess(&[(*l, 0.0), (*r, VDD)])?;
                Ok::<f64, spice::SpiceError>(op.voltage(*r))
            },
        )
        .expect("elaboration succeeds");
    out.samples()
        .iter()
        .map(|&(i, x)| (i, x.to_bits()))
        .collect()
}

#[test]
fn sram_dc_runs_are_thread_count_invariant() {
    let s1 = sram_run(99, 24, 1);
    let s2 = sram_run(99, 24, 2);
    let s8 = sram_run(99, 24, 8);
    assert!(s1.len() >= 20, "almost all draws converge");
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);
}

#[test]
fn early_stop_is_deterministic_and_bounded() {
    let run = |workers: usize| {
        ParallelRunner::new(5)
            .workers(workers)
            .check_every(50)
            .early_stop(EarlyStop::relative(0.05).min_samples(50))
            .run_scalar(
                100_000,
                |_, _| Ok::<(), std::convert::Infallible>(()),
                |(), s, _| Ok(10.0 + s.standard_normal()),
            )
            .expect("infallible")
    };
    let a = run(1);
    let b = run(3);
    // The 5% CI on N(10, 1) needs only a handful of rounds.
    assert!(a.attempted < 100_000, "early stop fired ({})", a.attempted);
    assert_eq!(
        a.attempted, b.attempted,
        "stop point must not depend on workers"
    );
    assert_eq!(a.moments().mean().to_bits(), b.moments().mean().to_bits());
    assert_eq!(a.len(), b.len());
    let m = a.moments();
    assert!(m.ci_half_width(1.96) <= 0.05 * m.mean().abs());
}

#[test]
fn failures_are_counted_not_fatal() {
    let out = ParallelRunner::new(3)
        .workers(2)
        .run_scalar(
            40,
            |_, _| Ok::<(), &'static str>(()),
            |(), _, i| {
                if i % 4 == 0 {
                    Err("synthetic")
                } else {
                    Ok(1.0)
                }
            },
        )
        .expect("setup is fine");
    assert_eq!(out.failures, 10);
    assert_eq!(out.len(), 30);
    assert_eq!(out.attempted, 40);
    // Indices of failed samples are absent from the sample set.
    assert!(out.samples().iter().all(|(i, _)| i % 4 != 0));
}

#[test]
fn setup_errors_propagate() {
    let err = ParallelRunner::new(1)
        .workers(4)
        .run_scalar(
            8,
            |w, _| {
                if w == 0 {
                    Err("worker zero failed")
                } else {
                    Ok(())
                }
            },
            |(), _, _| Ok(0.0),
        )
        .unwrap_err();
    assert_eq!(err, "worker zero failed");
}

#[test]
#[should_panic(expected = "synthetic sample panic")]
fn sample_panics_propagate_instead_of_deadlocking() {
    let _ = ParallelRunner::new(2).workers(3).run_scalar(
        64,
        |_, _| Ok::<(), std::convert::Infallible>(()),
        |(), _, i| {
            if i == 7 {
                panic!("synthetic sample panic");
            }
            Ok(1.0)
        },
    );
}

#[test]
#[should_panic(expected = "synthetic build panic")]
fn build_panics_propagate_instead_of_deadlocking() {
    let _ = ParallelRunner::new(2).workers(3).run_scalar(
        64,
        |w, _| {
            if w == 1 {
                panic!("synthetic build panic");
            }
            Ok::<(), std::convert::Infallible>(())
        },
        |(), _, _| Ok(1.0),
    );
}

// ---------------------------------------------------------------------------
// Streaming pipeline: run_streaming + sinks
// ---------------------------------------------------------------------------

/// Final state of every shipped sink after streaming the device-level
/// workload: CSV bytes, P² estimates, histogram counts, Welford moments.
struct SinkState {
    csv: Vec<u8>,
    p2: Vec<(f64, u64)>,
    hist: Vec<u64>,
    welford: Welford,
    moments: Welford,
    observed: usize,
}

/// Streams the stateless device-level workload through one of each shipped
/// sink on `workers` threads.
fn streaming_device_run(seed: u64, n: usize, workers: usize) -> SinkState {
    let b = builder();
    let sp = spec();
    // Every shipped sink at once, fanned out through nested tuples. The
    // histogram range brackets the idsat distribution; out-of-range draws
    // clamp deterministically into the edge bins.
    let mut sink = (
        (
            CsvSink::with_header(Vec::<u8>::new(), &["sample", "idsat_a"]),
            P2Quantiles::new(&[0.1, 0.5, 0.9]),
        ),
        (Histogram::new(0.0, 2e-3, 32), WelfordSink::new()),
    );
    let out = ParallelRunner::new(seed)
        .workers(workers)
        .run_streaming(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
            &mut sink,
        )
        .expect("infallible setup");
    let ((csv, p2), (hist, welford)) = sink;
    SinkState {
        csv: csv.into_inner(),
        p2: p2
            .estimates()
            .into_iter()
            .map(|(p, v)| (p, v.to_bits()))
            .collect(),
        hist: hist.counts().to_vec(),
        welford: welford.moments(),
        moments: out.moments(),
        observed: out.observed,
    }
}

#[test]
fn streaming_sinks_are_bit_identical_for_any_worker_count() {
    // The tentpole property: every shipped sink's output — raw CSV bytes
    // included — is a pure function of (seed, n), not of the sharding.
    for (seed, n) in [(1u64, 97), (42, 256)] {
        let r1 = streaming_device_run(seed, n, 1);
        assert_eq!(r1.observed, n);
        assert!(!r1.csv.is_empty());
        for workers in [2, 3, 7] {
            let rw = streaming_device_run(seed, n, workers);
            assert_eq!(
                r1.csv, rw.csv,
                "seed {seed}: CSV bytes differ at {workers} workers"
            );
            assert_eq!(
                r1.p2, rw.p2,
                "seed {seed}: P² marker state differs at {workers} workers"
            );
            assert_eq!(
                r1.hist, rw.hist,
                "seed {seed}: histogram counts differ at {workers} workers"
            );
            assert_eq!(r1.welford, rw.welford);
            assert_eq!(r1.moments, rw.moments);
        }
    }
}

#[test]
fn streaming_moments_match_buffered_run_scalar_bit_exactly() {
    // Same workload through both execution paths: the streaming fold must
    // reproduce the buffered moments to the last bit, and a VecSink must
    // retain exactly the records run_scalar would have buffered.
    let (_, buffered) = device_run(42, 256, 2);
    let r = streaming_device_run(42, 256, 3);
    assert_eq!(buffered.mean().to_bits(), r.moments.mean().to_bits());
    assert_eq!(
        buffered.variance().to_bits(),
        r.moments.variance().to_bits()
    );
    assert_eq!(buffered.count(), r.moments.count());
    assert_eq!(buffered.min().to_bits(), r.moments.min().to_bits());
    assert_eq!(buffered.max().to_bits(), r.moments.max().to_bits());
    // The sink-side Welford sees the same stream as the coordinator fold.
    assert_eq!(r.welford, r.moments);
}

/// The acceptance workload: cold-started SRAM DC samples, streaming vs
/// buffered, records retained by an explicit VecSink.
#[test]
fn streaming_matches_buffered_on_sram_dc() {
    let n = 16;
    let sz = SramSizing::default();
    let template = McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec(),
        spec(),
        Sampler::from_seed(0),
    );
    let build = |_: usize, setup_sampler: &mut Sampler| {
        let mut f = template.clone();
        f.set_sampler(setup_sampler.clone());
        let devices = SramDevices::draw(sz, &mut f);
        let (c, l, r) = full_cell(&devices, VDD);
        let session = Session::elaborate(c)?;
        Ok((session, l, r))
    };
    let sample = |(session, l, r): &mut (Session, _, _), sampler: &mut Sampler, _: usize| {
        let mut f = template.clone();
        f.set_sampler(sampler.clone());
        let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
        let [pd0, pd1] = pd;
        let [pu0, pu1] = pu;
        let [pg0, pg1] = pg;
        session.swap_devices([
            ("PD1", pd0),
            ("PD2", pd1),
            ("PU1", pu0),
            ("PU2", pu1),
            ("PG1", pg0),
            ("PG2", pg1),
        ])?;
        session.invalidate_warm_start();
        let op = session.dc_owned_with_guess(&[(*l, 0.0), (*r, VDD)])?;
        Ok::<f64, spice::SpiceError>(op.voltage(*r))
    };
    let buffered = ParallelRunner::new(99)
        .workers(2)
        .run(n, build, sample)
        .expect("elaboration succeeds");
    let mut sink = VecSink::new();
    let streamed = ParallelRunner::new(99)
        .workers(3)
        .run_streaming(n, build, sample, &mut sink)
        .expect("elaboration succeeds");
    assert_eq!(sink.records(), buffered.samples());
    assert_eq!(streamed.failures, buffered.failures);
    assert_eq!(streamed.observed, buffered.len());
    let bm = buffered.moments();
    assert_eq!(bm.mean().to_bits(), streamed.moments().mean().to_bits());
    assert_eq!(
        bm.variance().to_bits(),
        streamed.moments().variance().to_bits()
    );
}

#[test]
fn streaming_early_stop_matches_run_scalar_at_the_same_round_boundary() {
    // A stopped streaming run must feed its sink exactly the sample prefix
    // the buffered run returns, and stop at the same round, whatever the
    // worker count.
    let runner = |workers: usize| {
        ParallelRunner::new(5)
            .workers(workers)
            .check_every(50)
            .early_stop(EarlyStop::relative(0.05).min_samples(50))
    };
    let build = |_: usize, _: &mut Sampler| Ok::<(), std::convert::Infallible>(());
    let sample = |(): &mut (), s: &mut Sampler, _: usize| Ok(10.0 + s.standard_normal());
    let buffered = runner(1)
        .run_scalar(100_000, build, sample)
        .expect("infallible");
    assert!(buffered.attempted < 100_000, "early stop fired");
    let mut sink = (VecSink::new(), CsvSink::new(Vec::<u8>::new()));
    let streamed = runner(3)
        .run_streaming(100_000, build, sample, &mut sink)
        .expect("infallible");
    let (records, csv) = sink;
    assert_eq!(streamed.attempted, buffered.attempted);
    assert_eq!(records.records(), buffered.samples());
    assert_eq!(
        streamed.moments().mean().to_bits(),
        buffered.moments().mean().to_bits()
    );
    // The CSV byte stream equals one generated from the buffered prefix.
    let mut expected = Vec::new();
    for &(i, x) in buffered.samples() {
        use std::io::Write as _;
        writeln!(expected, "{i},{x}").unwrap();
    }
    assert_eq!(csv.into_inner(), expected);
}

#[test]
fn streaming_counts_failures_and_skips_them_in_the_sink() {
    let mut sink = (VecSink::new(), WelfordSink::new());
    let out = ParallelRunner::new(3)
        .workers(2)
        .run_streaming(
            40,
            |_, _| Ok::<(), &'static str>(()),
            |(), _, i| {
                if i % 4 == 0 {
                    Err("synthetic")
                } else {
                    Ok(i as f64)
                }
            },
            &mut sink,
        )
        .expect("setup is fine");
    assert_eq!(out.failures, 10);
    assert_eq!(out.observed, 30);
    assert_eq!(out.attempted, 40);
    assert!(sink.0.records().iter().all(|(i, _)| i % 4 != 0));
    assert_eq!(sink.1.moments().count(), 30);
}

#[test]
#[should_panic(expected = "synthetic sink panic")]
fn sink_panics_propagate_on_the_coordinating_thread() {
    // A sink that panics in observe must shut the run down cleanly (no
    // deadlocked workers at the round barriers) and re-raise here, matching
    // the closure-panic guarantee.
    struct Exploding;
    impl Sink for Exploding {
        fn observe(&mut self, index: usize, _value: f64) {
            if index >= 7 {
                panic!("synthetic sink panic");
            }
        }
    }
    let _ = ParallelRunner::new(2)
        .workers(3)
        .check_every(8)
        .run_streaming(
            64,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, _| Ok(1.0),
            &mut Exploding,
        );
}

#[test]
fn streaming_setup_errors_propagate_and_leave_the_sink_unfinished() {
    let mut sink = CsvSink::with_header(Vec::<u8>::new(), &["sample", "value"]);
    let err = ParallelRunner::new(1)
        .workers(4)
        .run_streaming(
            8,
            |w, _| {
                if w == 0 {
                    Err("worker zero failed")
                } else {
                    Ok(())
                }
            },
            |(), _, _| Ok(0.0),
            &mut sink,
        )
        .unwrap_err();
    assert_eq!(err, "worker zero failed");
    // No records reached the sink; the header was written at construction.
    assert_eq!(sink.into_inner(), b"sample,value\n");
}

#[test]
fn streaming_records_are_thread_count_invariant() {
    // The generic-record variant: (value, value²) pairs into a two-column
    // CSV, byte-compared across worker counts.
    let run = |workers: usize| {
        let mut sink = CsvSink::new(Vec::<u8>::new());
        let out = ParallelRunner::new(11)
            .workers(workers)
            .run_streaming_records(
                200,
                |_, _| Ok::<(), std::convert::Infallible>(()),
                |(), s, _| {
                    let x = s.standard_normal();
                    Ok((x, x * x))
                },
                &mut sink,
            )
            .expect("infallible");
        assert_eq!(out.observed, 200);
        assert!(out.moments().is_empty(), "record runs carry no metric");
        sink.into_inner()
    };
    let reference = run(1);
    assert!(!reference.is_empty());
    for workers in [2, 7] {
        assert_eq!(reference, run(workers), "bytes differ at {workers} workers");
    }
}

#[test]
fn zero_samples_streaming_finishes_the_sink_empty() {
    let mut sink = (
        CsvSink::with_header(Vec::<u8>::new(), &["sample", "value"]),
        WelfordSink::new(),
    );
    let out = ParallelRunner::new(1)
        .run_streaming(
            0,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, _| Ok(1.0),
            &mut sink,
        )
        .expect("no work");
    assert_eq!(out.observed, 0);
    assert_eq!(out.attempted, 0);
    assert!(out.moments().is_empty());
    assert_eq!(sink.0.into_inner(), b"sample,value\n");
}

#[test]
fn zero_samples_is_empty_outcome() {
    let out = ParallelRunner::new(1)
        .run_scalar(
            0,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, _| Ok(1.0),
        )
        .expect("no work");
    assert!(out.is_empty());
    assert_eq!(out.attempted, 0);
    assert!(out.moments().is_empty());
}

// ---------------------------------------------------------------------------
// Fleet partitioning: run_streaming_range + mergeable sinks
// ---------------------------------------------------------------------------

/// The fleet sink set: one of each mergeable sketch.
type FleetSinks = ((TDigest, Histogram), WelfordSink);

fn fleet_sinks() -> FleetSinks {
    (
        (TDigest::new(100.0), Histogram::new(0.0, 2e-3, 32)),
        WelfordSink::new(),
    )
}

/// Runs the sample index shard `offset..offset + len` of the stateless
/// device-level workload on `workers` threads, returning the sink states.
fn fleet_shard(seed: u64, offset: usize, len: usize, workers: usize) -> FleetSinks {
    let b = builder();
    let sp = spec();
    let mut sink = fleet_sinks();
    ParallelRunner::new(seed)
        .workers(workers)
        .run_streaming_range(
            offset,
            len,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
            &mut sink,
        )
        .expect("infallible setup");
    sink
}

/// Merges shard sink states into fleet aggregates, pushing every sketch
/// through its byte round-trip first (the wire a real fleet would cross).
fn merge_through_bytes(shards: Vec<FleetSinks>) -> (TDigest, Histogram, Welford) {
    let mut digest = TDigest::new(100.0);
    let mut hist = Histogram::new(0.0, 2e-3, 32);
    let mut moments = WelfordSink::new();
    for ((d, h), w) in shards {
        digest.merge_from(&TDigest::from_bytes(&d.to_bytes()).expect("digest round trip"));
        MergeableSink::merge_from(
            &mut hist,
            &Histogram::from_bytes(&MergeableSink::to_bytes(&h)).expect("histogram round trip"),
        );
        moments.merge_from(&WelfordSink::from_bytes(&w.to_bytes()).expect("welford round trip"));
    }
    (digest, hist, moments.moments())
}

/// The acceptance property: n samples as one run vs three disjoint
/// `run_streaming_range` shards, merged through the byte round-trip.
/// Histogram state and Welford count/extrema are bit-identical; Welford
/// moments agree to floating-point rounding (grouping pushes into shards
/// legitimately moves the last bits — see `Welford::merge`); t-digest
/// quantiles stay within the documented rank-error bound.
#[test]
fn partitioned_shards_merge_to_the_single_run_state() {
    let (seed, n) = (23u64, 450);
    // Unequal shards at awkward offsets, each on a different worker count
    // (shard-internal sharding must not leak into the merged state).
    let shards = vec![
        fleet_shard(seed, 0, 170, 1),
        fleet_shard(seed, 170, 63, 2),
        fleet_shard(seed, 233, n - 233, 3),
    ];
    let (digest, hist, moments) = merge_through_bytes(shards);

    // Single-run reference over the same index space, plus the buffered
    // sample values for exact empirical quantiles.
    let mut single = fleet_sinks();
    let b = builder();
    let sp = spec();
    let out = ParallelRunner::new(seed)
        .workers(2)
        .run_streaming(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
            &mut single,
        )
        .expect("infallible setup");
    let ((single_digest, single_hist), single_welford) = single;
    assert_eq!(out.observed, n);

    // Histogram: integer counts — bit-identical.
    assert_eq!(hist.counts(), single_hist.counts());
    assert_eq!(hist.total(), single_hist.total());

    // Welford: count and extrema exact; moments to rounding.
    let single_m = single_welford.moments();
    assert_eq!(moments.count(), single_m.count());
    assert_eq!(moments.min().to_bits(), single_m.min().to_bits());
    assert_eq!(moments.max().to_bits(), single_m.max().to_bits());
    assert!((moments.mean() - single_m.mean()).abs() <= 1e-12 * single_m.mean().abs());
    assert!((moments.variance() - single_m.variance()).abs() <= 1e-12 * single_m.variance());

    // t-digest: counts and extrema exact; quantiles within the documented
    // bound of the single-run digest (both are within the pinned bound of
    // the exact empirical quantile, checked against the buffered values).
    assert_eq!(digest.count(), single_digest.count());
    assert_eq!(digest.min().to_bits(), single_digest.min().to_bits());
    assert_eq!(digest.max().to_bits(), single_digest.max().to_bits());
    let values: Vec<f64> = ParallelRunner::new(seed)
        .workers(2)
        .run_scalar(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
        )
        .expect("infallible setup")
        .into_values();
    let sigma = single_m.std();
    for p in [0.05, 0.25, 0.5, 0.75, 0.95] {
        let exact = stats::descriptive::quantile(&values, p);
        let m = digest.quantile(p).expect("non-empty digest");
        let s = single_digest.quantile(p).expect("non-empty digest");
        // n = 450 is far below the n = 4000 pin, so allow the small-sample
        // rank error headroom on top of the asymptotic bound.
        let tol = 0.1 * sigma;
        assert!(
            (m - exact).abs() <= tol,
            "merged digest p{p}: {m:.6e} vs exact {exact:.6e} (sigma {sigma:.2e})"
        );
        assert!(
            (m - s).abs() <= tol,
            "merged vs single digest p{p}: {m:.6e} vs {s:.6e}"
        );
    }
}

/// Merged state must not depend on *how* the index space was partitioned.
#[test]
fn merged_state_is_invariant_to_the_partitioning() {
    let seed = 7u64; // both partitions cover indices 0..300
    let coarse = vec![fleet_shard(seed, 0, 100, 2), fleet_shard(seed, 100, 200, 1)];
    let fine = vec![
        fleet_shard(seed, 0, 37, 1),
        fleet_shard(seed, 37, 63, 3),
        fleet_shard(seed, 100, 100, 2),
        fleet_shard(seed, 200, 100, 1),
    ];
    let (dc, hc, mc) = merge_through_bytes(coarse);
    let (df, hf, mf) = merge_through_bytes(fine);
    assert_eq!(hc.counts(), hf.counts(), "histogram depends on the split");
    assert_eq!(hc.total(), hf.total());
    assert_eq!(mc.count(), mf.count());
    assert_eq!(mc.min().to_bits(), mf.min().to_bits());
    assert_eq!(mc.max().to_bits(), mf.max().to_bits());
    assert!((mc.mean() - mf.mean()).abs() <= 1e-12 * mf.mean().abs());
    assert_eq!(dc.count(), df.count());
    let sigma = mf.std();
    for p in [0.1, 0.5, 0.9] {
        let a = dc.quantile(p).unwrap();
        let b = df.quantile(p).unwrap();
        assert!(
            (a - b).abs() <= 0.1 * sigma,
            "digest split-sensitivity at p{p}: {a:.6e} vs {b:.6e}"
        );
    }
}

/// A shard draws exactly the global `(seed, i)` streams: its records are
/// the corresponding slice of the full run's record sequence, bit for bit.
#[test]
fn range_shards_draw_the_global_sample_streams() {
    let (seed, n) = (91u64, 120);
    let b = builder();
    let sp = spec();
    let sample = |(): &mut (), sampler: &mut Sampler, _i: usize| {
        let delta = sp.sample(b.geometry(), || sampler.standard_normal());
        Ok::<_, std::convert::Infallible>(
            DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat,
        )
    };
    let mut full = VecSink::new();
    ParallelRunner::new(seed)
        .workers(2)
        .run_streaming(n, |_, _| Ok(()), sample, &mut full)
        .expect("infallible setup");
    let mut shard = VecSink::new();
    let out = ParallelRunner::new(seed)
        .workers(3)
        .run_streaming_range(40, 50, |_, _| Ok(()), sample, &mut shard)
        .expect("infallible setup");
    assert_eq!(out.attempted, 50);
    assert_eq!(out.observed, 50);
    let full_slice: Vec<(usize, u64)> = full.records()[40..90]
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect();
    let shard_records: Vec<(usize, u64)> = shard
        .records()
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect();
    assert_eq!(full_slice, shard_records);
    // The shard's own moments fold in index order too.
    assert_eq!(out.moments().count(), 50);
}

/// A shard must execute its whole slice even when the runner carries an
/// early-stopping rule: a locally evaluated CI stop would make the
/// executed sample set depend on the partitioning.
#[test]
fn range_shards_ignore_early_stop() {
    let mut sink = WelfordSink::new();
    let out = ParallelRunner::new(5)
        .workers(2)
        .check_every(8)
        .early_stop(EarlyStop::relative(0.5).min_samples(4))
        .run_streaming_range(
            16,
            96,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| Ok(10.0 + 0.01 * sampler.standard_normal()),
            &mut sink,
        )
        .expect("infallible setup");
    assert_eq!(out.attempted, 96, "shard stopped early");
    assert_eq!(out.observed, 96);
    assert_eq!(sink.moments().count(), 96);
}

// ---------------------------------------------------------------------------
// Batched execution: run_streaming_batched
// ---------------------------------------------------------------------------

/// Streams the stateless device-level workload with `run_streaming_batched`
/// at the given lane count, retaining records and CSV bytes.
fn batched_device_run(
    seed: u64,
    offset: usize,
    len: usize,
    k: usize,
    workers: usize,
) -> (Vec<(usize, u64)>, Vec<u8>) {
    let b = builder();
    let sp = spec();
    let mut sink = (VecSink::new(), CsvSink::new(Vec::<u8>::new()));
    ParallelRunner::new(seed)
        .workers(workers)
        .run_streaming_batched(
            offset,
            len,
            std::num::NonZeroUsize::new(k).expect("k > 0"),
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _base, samplers| {
                samplers
                    .iter_mut()
                    .map(|sampler| {
                        let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                        Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
                    })
                    .collect()
            },
            &mut sink,
        )
        .expect("infallible setup");
    let (records, csv) = sink;
    (
        records
            .records()
            .iter()
            .map(|&(i, v)| (i, v.to_bits()))
            .collect(),
        csv.into_inner(),
    )
}

/// The batched determinism pin: when each lane mirrors the scalar closure,
/// sink records and raw CSV bytes are bit-identical to the scalar
/// streaming run — for every lane count and every worker count, including
/// lane counts that leave a partial tail batch.
#[test]
fn batched_streaming_is_bit_identical_to_scalar_for_any_workers_and_lanes() {
    let (seed, n) = (31u64, 100);
    let b = builder();
    let sp = spec();
    let mut scalar = (VecSink::new(), CsvSink::new(Vec::<u8>::new()));
    ParallelRunner::new(seed)
        .workers(2)
        .run_streaming(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
            &mut scalar,
        )
        .expect("infallible setup");
    let reference: Vec<(usize, u64)> = scalar
        .0
        .records()
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect();
    let reference_csv = scalar.1.into_inner();
    // 100 % 3 and 100 % 8 are nonzero: both lane counts exercise the tail.
    for k in [1usize, 3, 8] {
        for workers in [1usize, 2, 3] {
            let (records, csv) = batched_device_run(seed, 0, n, k, workers);
            assert_eq!(
                records, reference,
                "records differ at k = {k}, {workers} workers"
            );
            assert_eq!(
                csv, reference_csv,
                "CSV bytes differ at k = {k}, {workers} workers"
            );
        }
    }
}

/// A batched shard draws the global `(seed, i)` streams, like the scalar
/// range primitive.
#[test]
fn batched_range_shard_matches_the_scalar_shard() {
    let seed = 91u64;
    let b = builder();
    let sp = spec();
    let mut shard = VecSink::new();
    ParallelRunner::new(seed)
        .workers(3)
        .run_streaming_range(
            40,
            50,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
            &mut shard,
        )
        .expect("infallible setup");
    let scalar: Vec<(usize, u64)> = shard
        .records()
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect();
    let (batched, _) = batched_device_run(seed, 40, 50, 8, 2);
    assert_eq!(batched, scalar);
}

/// The tail-batch regression at the executor level: the chunks workers
/// actually execute are exactly the `plan_batches` tiling of the shard —
/// full-width batches plus one exact-remainder tail, no index dropped,
/// none executed twice.
#[test]
fn executed_batches_match_the_plan_batches_tiling() {
    use std::sync::Mutex;
    let (offset, len, k) = (7usize, 101, 8);
    let chunks: Mutex<Vec<(usize, usize)>> = Mutex::new(Vec::new());
    let mut sink = VecSink::new();
    let out = ParallelRunner::new(3)
        .workers(3)
        .run_streaming_batched(
            offset,
            len,
            std::num::NonZeroUsize::new(k).expect("k > 0"),
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), base, samplers| {
                chunks
                    .lock()
                    .expect("no poisoned locks")
                    .push((base, samplers.len()));
                samplers
                    .iter_mut()
                    .map(|s| Ok(s.standard_normal()))
                    .collect()
            },
            &mut sink,
        )
        .expect("infallible setup");
    assert_eq!(out.attempted, len);
    assert_eq!(out.observed, len);
    let mut executed = chunks.into_inner().expect("no poisoned locks");
    executed.sort_unstable();
    let plan: Vec<(usize, usize)> = vscore::mc::plan_batches(offset, len, k)
        .expect("valid plan")
        .iter()
        .map(|s| (s.offset, s.len))
        .collect();
    assert_eq!(executed, plan, "executed chunks are not the planned tiling");
    // Every index of the shard reached the sink exactly once, in order.
    let indices: Vec<usize> = sink.records().iter().map(|&(i, _)| i).collect();
    assert_eq!(indices, (offset..offset + len).collect::<Vec<_>>());
}

/// `Err` lanes inside a batch are counted as failures and skipped in the
/// sink — identical to scalar per-sample failures.
#[test]
fn batched_lane_failures_are_counted_not_fatal() {
    let mut sink = VecSink::new();
    let out = ParallelRunner::new(3)
        .workers(2)
        .run_streaming_batched(
            0,
            40,
            std::num::NonZeroUsize::new(4).expect("k > 0"),
            |_, _| Ok::<(), &'static str>(()),
            |(), base, samplers| {
                (0..samplers.len())
                    .map(|j| {
                        if (base + j) % 4 == 0 {
                            Err("synthetic")
                        } else {
                            Ok(1.0)
                        }
                    })
                    .collect()
            },
            &mut sink,
        )
        .expect("setup is fine");
    assert_eq!(out.failures, 10);
    assert_eq!(out.observed, 30);
    assert_eq!(out.attempted, 40);
    assert!(sink.records().iter().all(|(i, _)| i % 4 != 0));
}

/// The acceptance integration: SRAM DC Monte Carlo through
/// `Session::dc_batch` inside `run_streaming_batched` produces
/// bit-identical sink records to the scalar cold-start streaming run.
#[test]
fn batched_sram_dc_matches_scalar_streaming_bit_exactly() {
    use mosfet::MosfetModel;
    let n = 16;
    let sz = SramSizing::default();
    let template = McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec(),
        spec(),
        Sampler::from_seed(0),
    );
    let lane_draw =
        |template: &McFactory, sampler: &Sampler| -> Vec<(&'static str, Box<dyn MosfetModel>)> {
            let mut f = template.clone();
            f.set_sampler(sampler.clone());
            let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
            let [pd0, pd1] = pd;
            let [pu0, pu1] = pu;
            let [pg0, pg1] = pg;
            vec![
                ("PD1", pd0),
                ("PD2", pd1),
                ("PU1", pu0),
                ("PU2", pu1),
                ("PG1", pg0),
                ("PG2", pg1),
            ]
        };
    let build = |_: usize, setup_sampler: &mut Sampler| {
        let mut f = template.clone();
        f.set_sampler(setup_sampler.clone());
        let devices = SramDevices::draw(sz, &mut f);
        let (c, l, r) = full_cell(&devices, VDD);
        let session = Session::elaborate(c)?;
        Ok::<_, spice::SpiceError>((session, l, r))
    };
    let mut scalar = VecSink::new();
    ParallelRunner::new(99)
        .workers(2)
        .run_streaming(
            n,
            build,
            |(session, l, r), sampler, _| {
                session.swap_devices(lane_draw(&template, sampler))?;
                session.invalidate_warm_start();
                let op = session.dc_owned_with_guess(&[(*l, 0.0), (*r, VDD)])?;
                Ok::<f64, spice::SpiceError>(op.voltage(*r))
            },
            &mut scalar,
        )
        .expect("elaboration succeeds");
    let reference: Vec<(usize, u64)> = scalar
        .records()
        .iter()
        .map(|&(i, v)| (i, v.to_bits()))
        .collect();
    assert_eq!(reference.len(), n, "all draws converge at this seed");
    for k in [3usize, 8] {
        let mut sink = VecSink::new();
        ParallelRunner::new(99)
            .workers(2)
            .run_streaming_batched(
                0,
                n,
                std::num::NonZeroUsize::new(k).expect("k > 0"),
                build,
                |(session, l, r), _base, samplers| {
                    let lanes: Vec<_> = samplers.iter().map(|s| lane_draw(&template, s)).collect();
                    session.invalidate_warm_start();
                    match session.dc_batch(lanes, Some(&[(*l, 0.0), (*r, VDD)])) {
                        Ok(ops) => ops
                            .into_iter()
                            .map(|res| res.map(|op| op.voltage(*r)))
                            .collect(),
                        Err(e) => samplers.iter().map(|_| Err(e.clone())).collect(),
                    }
                },
                &mut sink,
            )
            .expect("elaboration succeeds");
        let batched: Vec<(usize, u64)> = sink
            .records()
            .iter()
            .map(|&(i, v)| (i, v.to_bits()))
            .collect();
        assert_eq!(batched, reference, "k = {k} batched SRAM run drifted");
    }
}

/// Degenerate batched runs behave like degenerate scalar runs.
#[test]
fn zero_length_batched_run_finishes_the_sink_empty() {
    let mut sink = WelfordSink::new();
    let out = ParallelRunner::new(3)
        .run_streaming_batched(
            1000,
            0,
            std::num::NonZeroUsize::new(8).expect("k > 0"),
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, samplers| {
                samplers
                    .iter_mut()
                    .map(|s| Ok(s.standard_normal()))
                    .collect()
            },
            &mut sink,
        )
        .expect("no work");
    assert_eq!(out.attempted, 0);
    assert_eq!(out.observed, 0);
    assert!(sink.moments().is_empty());
}

/// Degenerate shards behave like degenerate runs: nothing executes, the
/// sink still finishes.
#[test]
fn zero_length_shard_finishes_the_sink_empty() {
    let mut sink = WelfordSink::new();
    let out = ParallelRunner::new(3)
        .run_streaming_range(
            1000,
            0,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, _| Ok(1.0),
            &mut sink,
        )
        .expect("no work");
    assert_eq!(out.attempted, 0);
    assert_eq!(out.observed, 0);
    assert!(sink.moments().is_empty());
}

// ---------------------------------------------------------------------------
// Importance sampling: run_streaming_is + weighted sinks
// ---------------------------------------------------------------------------

/// The weighted fleet sink set: estimator + weighted histogram, fanned out
/// through the generic tuple `Sink` impl exactly like the unweighted set.
type IsSinks = (WeightedMoments, WeightedHistogram);

fn is_sinks() -> IsSinks {
    (
        WeightedMoments::above(4.0),
        WeightedHistogram::new(-2.0, 9.0, 22),
    )
}

/// Runs the shard `offset..offset + len` of a shifted-proposal IS workload
/// on `workers` threads, returning the weighted sink states.
fn is_shard(seed: u64, offset: usize, len: usize, workers: usize) -> IsSinks {
    let proposal = GaussianProposal::new(4.0, 1.25);
    let mut sinks = is_sinks();
    ParallelRunner::new(seed)
        .workers(workers)
        .run_streaming_is(
            offset,
            len,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| Ok(proposal.draw_weighted(sampler)),
            &mut sinks,
        )
        .expect("infallible setup");
    sinks
}

/// Weighted sink bytes must be bit-identical across 1/2/3/7 workers — the
/// streaming determinism contract extended to `(value, log_weight)`
/// records.
#[test]
fn is_weighted_sink_bytes_are_worker_count_invariant() {
    let (m1, h1) = is_shard(61, 0, 700, 1);
    let (reference_m, reference_h) = (m1.to_bytes(), h1.to_bytes());
    for workers in [2, 3, 7] {
        let (m, h) = is_shard(61, 0, 700, workers);
        assert_eq!(
            m.to_bytes(),
            reference_m,
            "moments bytes at {workers} workers"
        );
        assert_eq!(
            h.to_bytes(),
            reference_h,
            "histogram bytes at {workers} workers"
        );
    }
    // Sanity: the run actually estimated the 4σ tail it was aimed at.
    assert!((m1.estimate() / stats::gaussian::tail(4.0) - 1.0).abs() < 0.3);
    assert!(m1.ess() > 0.0);
}

/// Disjoint `run_streaming_is` shards merged through the byte codec must
/// reproduce the single-run sink bytes *exactly* — stronger than the
/// Welford fleet guarantee, because the weighted sinks accumulate in
/// exact fixed-point sums. Any partitioning, any per-shard worker count.
#[test]
fn is_shards_merge_bit_identically_across_partitionings() {
    let (seed, n) = (29u64, 600);
    let (single_m, single_h) = is_shard(seed, 0, n, 2);
    let partitions: [&[(usize, usize, usize)]; 3] = [
        &[(0, 600, 1)],
        &[(0, 170, 1), (170, 63, 2), (233, 367, 3)],
        &[(0, 1, 1), (1, 299, 7), (300, 300, 2)],
    ];
    for cuts in partitions {
        let mut merged = is_sinks();
        for &(offset, len, workers) in cuts {
            let (m, h) = is_shard(seed, offset, len, workers);
            // Cross the wire: every shard round-trips through its codec.
            let m = WeightedMoments::from_bytes(&m.to_bytes()).expect("moments round trip");
            let h = WeightedHistogram::from_bytes(&h.to_bytes()).expect("histogram round trip");
            merged.0.merge_from(&m);
            merged.1.merge_from(&h);
        }
        assert_eq!(
            merged.0.to_bytes(),
            single_m.to_bytes(),
            "moments bytes differ for partition {cuts:?}"
        );
        assert_eq!(
            merged.1.to_bytes(),
            single_h.to_bytes(),
            "histogram bytes differ for partition {cuts:?}"
        );
    }
    assert_eq!(single_m.count(), n as u64);
    assert_eq!(single_h.total(), n as u64);
}

/// The nominal (shift = 0, scale = 1) proposal reduces `run_streaming_is`
/// to plain MC bit-exactly: the record values are the unweighted stream
/// and every log-weight is +0.0.
#[test]
fn nominal_proposal_reduces_to_plain_mc_bit_exactly() {
    let (seed, n) = (47u64, 500);
    let proposal = GaussianProposal::nominal();
    let mut is_records: VecSink<(f64, f64)> = VecSink::new();
    ParallelRunner::new(seed)
        .workers(3)
        .run_streaming_is(
            0,
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| Ok(proposal.draw_weighted(sampler)),
            &mut is_records,
        )
        .expect("infallible setup");
    let mut plain: VecSink<f64> = VecSink::new();
    ParallelRunner::new(seed)
        .workers(2)
        .run_streaming(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| Ok(sampler.standard_normal()),
            &mut plain,
        )
        .expect("infallible setup");
    assert_eq!(is_records.records().len(), n);
    for ((i, (x, log_w)), (j, z)) in is_records.records().iter().zip(plain.records()) {
        assert_eq!(i, j);
        assert_eq!(x.to_bits(), z.to_bits(), "sample {i}: value stream shifted");
        assert_eq!(
            log_w.to_bits(),
            0.0f64.to_bits(),
            "sample {i}: weight not +0.0"
        );
    }
}

/// Circuit-level IS through `McFactory::set_proposal_shifts`: the SRAM SNM
/// workload under a mean-shifted proposal stays worker-count invariant at
/// the byte level, and with zero shifts it reproduces the plain-MC SNM
/// values bit-exactly.
#[test]
fn sram_is_run_is_worker_count_invariant_and_degenerates_to_plain_mc() {
    let shifts: std::sync::Arc<[f64]> = (0..30)
        .map(|k| if k % 5 == 0 { -0.8 } else { 0.1 })
        .collect();
    let run = |workers: usize, shifts: std::sync::Arc<[f64]>| {
        let mut sinks = (
            WeightedMoments::below(0.1),
            WeightedHistogram::new(0.0, 0.4, 16),
        );
        ParallelRunner::new(5)
            .workers(workers)
            .run_streaming_is(
                0,
                24,
                |_, setup| {
                    let mut f = sram_factory(setup.fork(0));
                    let bench = circuits::sram::SnmBench::new(
                        SramSizing::default(),
                        VDD,
                        circuits::sram::SnmMode::Hold,
                        31,
                        &mut f,
                    )?;
                    Ok((f, bench))
                },
                |(f, bench), sampler, _| {
                    f.set_sampler(sampler.clone());
                    f.set_proposal_shifts(shifts.clone());
                    bench.resample(SramSizing::default(), f)?;
                    let snm = bench.snm()?;
                    Ok::<_, spice::SpiceError>((snm, f.take_log_weight()))
                },
                &mut sinks,
            )
            .expect("sram elaboration");
        (sinks.0.to_bytes(), sinks.1.to_bytes())
    };
    let reference = run(1, shifts.clone());
    for workers in [2, 3] {
        assert_eq!(run(workers, shifts.clone()), reference, "{workers} workers");
    }

    // Zero shifts: the weighted records must be the plain-MC SNM values
    // with +0.0 log-weights.
    let zero: std::sync::Arc<[f64]> = std::sync::Arc::from(vec![0.0; 30]);
    let mut is_records: VecSink<(f64, f64)> = VecSink::new();
    ParallelRunner::new(5)
        .workers(2)
        .run_streaming_is(
            0,
            12,
            |_, setup| {
                let mut f = sram_factory(setup.fork(0));
                let bench = circuits::sram::SnmBench::new(
                    SramSizing::default(),
                    VDD,
                    circuits::sram::SnmMode::Hold,
                    31,
                    &mut f,
                )?;
                Ok((f, bench))
            },
            |(f, bench), sampler, _| {
                f.set_sampler(sampler.clone());
                f.set_proposal_shifts(zero.clone());
                bench.resample(SramSizing::default(), f)?;
                let snm = bench.snm()?;
                Ok::<_, spice::SpiceError>((snm, f.take_log_weight()))
            },
            &mut is_records,
        )
        .expect("sram elaboration");
    let mut plain_records: VecSink<f64> = VecSink::new();
    ParallelRunner::new(5)
        .workers(3)
        .run_streaming(
            12,
            |_, setup| {
                let mut f = sram_factory(setup.fork(0));
                let bench = circuits::sram::SnmBench::new(
                    SramSizing::default(),
                    VDD,
                    circuits::sram::SnmMode::Hold,
                    31,
                    &mut f,
                )?;
                Ok((f, bench))
            },
            |(f, bench), sampler, _| {
                f.set_sampler(sampler.clone());
                bench.resample(SramSizing::default(), f)?;
                bench.snm()
            },
            &mut plain_records,
        )
        .expect("sram elaboration");
    assert_eq!(is_records.records().len(), plain_records.records().len());
    for ((i, (snm, log_w)), (j, plain)) in is_records.records().iter().zip(plain_records.records())
    {
        assert_eq!(i, j);
        assert_eq!(snm.to_bits(), plain.to_bits(), "sample {i}: SNM shifted");
        assert_eq!(log_w.to_bits(), 0.0f64.to_bits(), "sample {i}");
    }
}
