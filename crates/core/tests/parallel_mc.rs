//! Determinism contract of the parallel Monte Carlo executor.
//!
//! `ParallelRunner` promises that the set of `(sample index, value)` pairs
//! and the merged moments are *bit-identical* for any worker count when
//! each sample is a pure function of its derived sampler stream. These
//! tests pin that down on the device-level workload (stateless), on a
//! circuit-level SRAM workload (cold-started sessions), and for the
//! round-boundary early-stopping rule.

use circuits::sram::{full_cell, SramDevices, SramSizing};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use spice::Session;
use stats::{Sampler, Welford};
use vscore::mc::{EarlyStop, McFactory, ParallelRunner};
use vscore::metrics::DeviceMetrics;
use vscore::sensitivity::{VariedModel, VsBuilder};

const VDD: f64 = 0.9;

fn builder() -> VsBuilder {
    VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom: Geometry::from_nm(600.0, 40.0),
    }
}

fn spec() -> MismatchSpec {
    MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
}

/// Runs the stateless device-level workload on `workers` threads.
fn device_run(seed: u64, n: usize, workers: usize) -> (Vec<(usize, u64)>, Welford) {
    let b = builder();
    let sp = spec();
    let out = ParallelRunner::new(seed)
        .workers(workers)
        .run_scalar(
            n,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), sampler, _| {
                let delta = sp.sample(b.geometry(), || sampler.standard_normal());
                Ok(DeviceMetrics::evaluate(b.build(delta).as_ref(), VDD).idsat)
            },
        )
        .expect("infallible setup");
    let bits = out
        .samples()
        .iter()
        .map(|&(i, x)| (i, x.to_bits()))
        .collect();
    (bits, out.moments())
}

#[test]
fn device_level_runs_are_thread_count_invariant() {
    // Property loop: several seeds and sizes, three worker counts each.
    for (seed, n) in [(1u64, 97), (42, 256), (0xdead_beef, 33)] {
        let (s1, m1) = device_run(seed, n, 1);
        assert_eq!(s1.len(), n, "stateless workload never fails");
        for workers in [2, 8] {
            let (sw, mw) = device_run(seed, n, workers);
            assert_eq!(
                s1, sw,
                "seed {seed}: sample set differs at {workers} workers"
            );
            assert_eq!(
                m1.mean().to_bits(),
                mw.mean().to_bits(),
                "seed {seed}: merged mean differs at {workers} workers"
            );
            assert_eq!(m1.variance().to_bits(), mw.variance().to_bits());
            assert_eq!(m1.count(), mw.count());
            assert_eq!(m1.min().to_bits(), mw.min().to_bits());
            assert_eq!(m1.max().to_bits(), mw.max().to_bits());
        }
    }
}

#[test]
fn device_level_runs_depend_on_seed() {
    let (a, _) = device_run(7, 64, 2);
    let (b, _) = device_run(8, 64, 2);
    assert_ne!(a, b);
}

/// Circuit-level workload: full 6T cell DC solve with per-sample device
/// swaps. Cold-starting every sample makes each one a pure function of its
/// sampler stream, so the bit-exactness guarantee applies; warm-started
/// production loops trade that for speed (same statistics, last-bit drift).
fn sram_run(seed: u64, n: usize, workers: usize) -> Vec<(usize, u64)> {
    let sz = SramSizing::default();
    let template = McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec(),
        spec(),
        Sampler::from_seed(0),
    );
    let out = ParallelRunner::new(seed)
        .workers(workers)
        .run(
            n,
            |_, setup_sampler| {
                let mut f = template.clone();
                f.set_sampler(setup_sampler.clone());
                let devices = SramDevices::draw(sz, &mut f);
                let (c, l, r) = full_cell(&devices, VDD);
                let session = Session::elaborate(c)?;
                Ok((session, l, r))
            },
            |(session, l, r), sampler, _| {
                let mut f = template.clone();
                f.set_sampler(sampler.clone());
                let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                let [pd0, pd1] = pd;
                let [pu0, pu1] = pu;
                let [pg0, pg1] = pg;
                session.swap_devices([
                    ("PD1", pd0),
                    ("PD2", pd1),
                    ("PU1", pu0),
                    ("PU2", pu1),
                    ("PG1", pg0),
                    ("PG2", pg1),
                ])?;
                session.invalidate_warm_start();
                let op = session.dc_owned_with_guess(&[(*l, 0.0), (*r, VDD)])?;
                Ok::<f64, spice::SpiceError>(op.voltage(*r))
            },
        )
        .expect("elaboration succeeds");
    out.samples()
        .iter()
        .map(|&(i, x)| (i, x.to_bits()))
        .collect()
}

#[test]
fn sram_dc_runs_are_thread_count_invariant() {
    let s1 = sram_run(99, 24, 1);
    let s2 = sram_run(99, 24, 2);
    let s8 = sram_run(99, 24, 8);
    assert!(s1.len() >= 20, "almost all draws converge");
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);
}

#[test]
fn early_stop_is_deterministic_and_bounded() {
    let run = |workers: usize| {
        ParallelRunner::new(5)
            .workers(workers)
            .check_every(50)
            .early_stop(EarlyStop::relative(0.05).min_samples(50))
            .run_scalar(
                100_000,
                |_, _| Ok::<(), std::convert::Infallible>(()),
                |(), s, _| Ok(10.0 + s.standard_normal()),
            )
            .expect("infallible")
    };
    let a = run(1);
    let b = run(3);
    // The 5% CI on N(10, 1) needs only a handful of rounds.
    assert!(a.attempted < 100_000, "early stop fired ({})", a.attempted);
    assert_eq!(
        a.attempted, b.attempted,
        "stop point must not depend on workers"
    );
    assert_eq!(a.moments().mean().to_bits(), b.moments().mean().to_bits());
    assert_eq!(a.len(), b.len());
    let m = a.moments();
    assert!(m.ci_half_width(1.96) <= 0.05 * m.mean().abs());
}

#[test]
fn failures_are_counted_not_fatal() {
    let out = ParallelRunner::new(3)
        .workers(2)
        .run_scalar(
            40,
            |_, _| Ok::<(), &'static str>(()),
            |(), _, i| {
                if i % 4 == 0 {
                    Err("synthetic")
                } else {
                    Ok(1.0)
                }
            },
        )
        .expect("setup is fine");
    assert_eq!(out.failures, 10);
    assert_eq!(out.len(), 30);
    assert_eq!(out.attempted, 40);
    // Indices of failed samples are absent from the sample set.
    assert!(out.samples().iter().all(|(i, _)| i % 4 != 0));
}

#[test]
fn setup_errors_propagate() {
    let err = ParallelRunner::new(1)
        .workers(4)
        .run_scalar(
            8,
            |w, _| {
                if w == 0 {
                    Err("worker zero failed")
                } else {
                    Ok(())
                }
            },
            |(), _, _| Ok(0.0),
        )
        .unwrap_err();
    assert_eq!(err, "worker zero failed");
}

#[test]
#[should_panic(expected = "synthetic sample panic")]
fn sample_panics_propagate_instead_of_deadlocking() {
    let _ = ParallelRunner::new(2).workers(3).run_scalar(
        64,
        |_, _| Ok::<(), std::convert::Infallible>(()),
        |(), _, i| {
            if i == 7 {
                panic!("synthetic sample panic");
            }
            Ok(1.0)
        },
    );
}

#[test]
#[should_panic(expected = "synthetic build panic")]
fn build_panics_propagate_instead_of_deadlocking() {
    let _ = ParallelRunner::new(2).workers(3).run_scalar(
        64,
        |w, _| {
            if w == 1 {
                panic!("synthetic build panic");
            }
            Ok::<(), std::convert::Infallible>(())
        },
        |(), _, _| Ok(1.0),
    );
}

#[test]
fn zero_samples_is_empty_outcome() {
    let out = ParallelRunner::new(1)
        .run_scalar(
            0,
            |_, _| Ok::<(), std::convert::Infallible>(()),
            |(), _, _| Ok(1.0),
        )
        .expect("no work");
    assert!(out.is_empty());
    assert_eq!(out.attempted, 0);
    assert!(out.moments().is_empty());
}
