//! Finite-difference sensitivities `∂e_i/∂p_j` (paper Eq. (10)'s matrix).
//!
//! The paper computes the sensitivity matrix "from SPICE simulation using
//! the VS model"; here the metrics are direct model evaluations (the
//! circuit-simulator path produces identical values for a single device),
//! differentiated centrally with parameter-appropriate steps.

use crate::metrics::DeviceMetrics;
use mosfet::{
    bsim::{BsimModel, BsimParams},
    vs::{VsModel, VsParams},
    Geometry, MosfetModel, Polarity, StatParam, VariationDelta,
};
use numerics::Matrix;

/// Builds model instances at arbitrary mismatch — the handle the extraction
/// flow uses to differentiate and to run Monte Carlo.
pub trait VariedModel: Send + Sync {
    /// Instantiates the model with the given perturbation.
    fn build(&self, delta: VariationDelta) -> Box<dyn MosfetModel>;
    /// The device geometry.
    fn geometry(&self) -> Geometry;
}

/// A [`VariedModel`] over the Virtual Source model.
#[derive(Debug, Clone)]
pub struct VsBuilder {
    /// VS parameters (typically the fitted set).
    pub params: VsParams,
    /// Device polarity.
    pub polarity: Polarity,
    /// Device geometry.
    pub geom: Geometry,
}

impl VariedModel for VsBuilder {
    fn build(&self, delta: VariationDelta) -> Box<dyn MosfetModel> {
        Box::new(VsModel::with_variation(
            self.params,
            self.polarity,
            self.geom,
            delta,
        ))
    }

    fn geometry(&self) -> Geometry {
        self.geom
    }
}

/// A [`VariedModel`] over the BSIM-like kit model.
#[derive(Debug, Clone)]
pub struct BsimBuilder {
    /// Kit parameters.
    pub params: BsimParams,
    /// Device polarity.
    pub polarity: Polarity,
    /// Device geometry.
    pub geom: Geometry,
}

impl VariedModel for BsimBuilder {
    fn build(&self, delta: VariationDelta) -> Box<dyn MosfetModel> {
        Box::new(BsimModel::with_variation(
            self.params,
            self.polarity,
            self.geom,
            delta,
        ))
    }

    fn geometry(&self) -> Geometry {
        self.geom
    }
}

/// Central-difference step for each statistical parameter (SI units).
fn fd_step(param: StatParam) -> f64 {
    match param {
        StatParam::Vt0 => 2e-3,    // 2 mV
        StatParam::Leff => 0.2e-9, // 0.2 nm
        StatParam::Weff => 1e-9,   // 1 nm
        StatParam::Mu => 1e-4,     // 1 cm²/(V·s)
        StatParam::Cinv => 1e-4,   // 0.01 µF/cm²
    }
}

/// The 3x5 sensitivity matrix: rows follow [`DeviceMetrics::NAMES`], columns
/// follow [`StatParam::ALL`].
pub fn sensitivity_matrix(builder: &dyn VariedModel, vdd: f64) -> Matrix {
    let mut s = Matrix::zeros(3, StatParam::ALL.len());
    for (j, param) in StatParam::ALL.into_iter().enumerate() {
        let h = fd_step(param);
        let ep = DeviceMetrics::evaluate(
            builder.build(VariationDelta::single(param, h)).as_ref(),
            vdd,
        )
        .as_array();
        let em = DeviceMetrics::evaluate(
            builder.build(VariationDelta::single(param, -h)).as_ref(),
            vdd,
        )
        .as_array();
        for i in 0..3 {
            s[(i, j)] = (ep[i] - em[i]) / (2.0 * h);
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const VDD: f64 = 0.9;

    fn nmos_builder() -> VsBuilder {
        VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(600.0, 40.0),
        }
    }

    #[test]
    fn sensitivity_signs_match_physics() {
        let s = sensitivity_matrix(&nmos_builder(), VDD);
        // Row 0 = Idsat, row 1 = log10 Ioff, row 2 = Cgg.
        // Higher VT0 -> lower Idsat, much lower Ioff, ~no Cgg change.
        assert!(s[(0, 0)] < 0.0, "dIdsat/dVT0 = {}", s[(0, 0)]);
        assert!(s[(1, 0)] < 0.0, "dlogIoff/dVT0 = {}", s[(1, 0)]);
        // Wider device -> more current, more capacitance.
        assert!(s[(0, 2)] > 0.0);
        assert!(s[(2, 2)] > 0.0);
        // More mobility -> more current.
        assert!(s[(0, 3)] > 0.0);
        // More Cinv -> more current and more capacitance.
        assert!(s[(0, 4)] > 0.0);
        assert!(s[(2, 4)] > 0.0);
        // Longer channel -> less DIBL -> lower Ioff.
        assert!(s[(1, 1)] < 0.0, "dlogIoff/dL = {}", s[(1, 1)]);
    }

    #[test]
    fn log_ioff_vt_sensitivity_matches_subthreshold_slope() {
        // d(log10 Ioff)/dVT0 = -1 / (n φt ln 10).
        let s = sensitivity_matrix(&nmos_builder(), VDD);
        let expected = -1.0 / (VsParams::nmos_40nm().n0 * mosfet::PHI_T * std::f64::consts::LN_10);
        assert!(
            (s[(1, 0)] / expected - 1.0).abs() < 0.10,
            "{} vs {}",
            s[(1, 0)],
            expected
        );
    }

    #[test]
    fn idsat_width_sensitivity_close_to_linear_scaling() {
        // Idsat ~ W  =>  dIdsat/dW ≈ Idsat / W.
        let b = nmos_builder();
        let s = sensitivity_matrix(&b, VDD);
        let e = DeviceMetrics::evaluate(b.build(VariationDelta::zero()).as_ref(), VDD);
        let expected = e.idsat / b.geom.w;
        assert!(
            (s[(0, 2)] / expected - 1.0).abs() < 0.1,
            "{} vs {}",
            s[(0, 2)],
            expected
        );
    }

    #[test]
    fn kit_builder_also_differentiates() {
        let b = BsimBuilder {
            params: BsimParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(600.0, 40.0),
        };
        let s = sensitivity_matrix(&b, VDD);
        assert!(s[(0, 0)] < 0.0);
        assert!(s[(1, 0)] < 0.0);
        assert!(s[(2, 2)] > 0.0);
    }

    #[test]
    fn cgg_insensitive_to_vt_in_strong_inversion() {
        let s = sensitivity_matrix(&nmos_builder(), VDD);
        // Paper Eq. (10) zeroes this entry; numerically it is tiny relative
        // to the Cinv sensitivity.
        let rel = (s[(2, 0)] / s[(2, 4)]).abs();
        assert!(rel < 0.05, "Cgg-VT0 relative sensitivity = {rel}");
    }
}
