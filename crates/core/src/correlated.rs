//! The *full* (correlated) form of the paper's Eq. (8).
//!
//! The paper writes variance propagation with correlation terms:
//!
//! ```text
//! σ²(e_i) = Σ_j (∂e_i/∂p_j)² σ²_pj
//!         + 2 Σ_{k>j} Σ_j  r_jk (∂e_i/∂p_j)(∂e_i/∂p_k) σ_pj σ_pk
//! ```
//!
//! and then *assumes independence* (`r_jk = 0`, its Eq. (9)) after choosing
//! parameters whose physical origins are distinct (RDF vs LER vs stress vs
//! OTF). This module implements the general form so that
//!
//! * the independence simplification is a *testable* statement rather than
//!   an article of faith (`predict_variances_correlated` with `r = I`
//!   reproduces [`crate::bpv::predict_variances`] exactly), and
//! * users with correlated foundry data (e.g. Leff/Weff from a shared
//!   litho step) can still propagate and sample it.

use crate::sensitivity::{sensitivity_matrix, VariedModel};
use mosfet::{MismatchSpec, StatParam, VariationDelta};
use numerics::{cholesky::Cholesky, Matrix, NumericsError};

/// A symmetric 5x5 correlation matrix over [`StatParam::ALL`].
#[derive(Debug, Clone, PartialEq)]
pub struct ParamCorrelation {
    r: Matrix,
}

impl ParamCorrelation {
    /// The identity (independent parameters — the paper's Eq. (9) regime).
    pub fn independent() -> Self {
        ParamCorrelation {
            r: Matrix::identity(StatParam::ALL.len()),
        }
    }

    /// Builds from an explicit symmetric matrix.
    ///
    /// # Errors
    ///
    /// Rejects non-5x5 input, unit-diagonal violations, asymmetry, and
    /// out-of-range entries.
    pub fn new(r: Matrix) -> Result<Self, NumericsError> {
        let n = StatParam::ALL.len();
        if r.rows() != n || r.cols() != n {
            return Err(NumericsError::DimensionMismatch {
                context: format!("correlation matrix must be {n}x{n}"),
            });
        }
        for i in 0..n {
            if (r[(i, i)] - 1.0).abs() > 1e-12 {
                return Err(NumericsError::InvalidArgument {
                    context: format!("diagonal entry {i} is not 1"),
                });
            }
            for j in 0..n {
                if (r[(i, j)] - r[(j, i)]).abs() > 1e-12 || r[(i, j)].abs() > 1.0 {
                    return Err(NumericsError::InvalidArgument {
                        context: format!("entry ({i},{j}) invalid"),
                    });
                }
            }
        }
        Ok(ParamCorrelation { r })
    }

    /// Sets one pairwise correlation (symmetric), returning the builder.
    ///
    /// # Panics
    ///
    /// Panics if `|rho| > 1`.
    pub fn with(mut self, a: StatParam, b: StatParam, rho: f64) -> Self {
        assert!(rho.abs() <= 1.0, "correlation out of range");
        let ia = StatParam::ALL.iter().position(|&p| p == a).expect("member");
        let ib = StatParam::ALL.iter().position(|&p| p == b).expect("member");
        self.r[(ia, ib)] = rho;
        self.r[(ib, ia)] = rho;
        self
    }

    /// The raw matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.r
    }
}

/// Eq. (8) in full: first-order metric variances under correlated
/// parameters. Returns variances of `[Idsat, log10 Ioff, Cgg]`.
pub fn predict_variances_correlated(
    builder: &dyn VariedModel,
    spec: &MismatchSpec,
    corr: &ParamCorrelation,
    vdd: f64,
) -> [f64; 3] {
    let s = sensitivity_matrix(builder, vdd);
    let geom = builder.geometry();
    let sigmas: Vec<f64> = StatParam::ALL
        .into_iter()
        .map(|p| spec.sigma(p, geom))
        .collect();
    let n = sigmas.len();
    let mut out = [0.0; 3];
    for i in 0..3 {
        let mut v = 0.0;
        for j in 0..n {
            for k in 0..n {
                v += corr.matrix()[(j, k)] * s[(i, j)] * s[(i, k)] * sigmas[j] * sigmas[k];
            }
        }
        out[i] = v;
    }
    out
}

/// Draws one correlated mismatch sample: `δ = diag(σ) L z` with `R = L Lᵀ`
/// and `z` standard normal.
///
/// # Errors
///
/// Fails when the correlation matrix is not positive definite.
pub fn sample_correlated<F>(
    spec: &MismatchSpec,
    corr: &ParamCorrelation,
    geom: mosfet::Geometry,
    mut normal: F,
) -> Result<VariationDelta, NumericsError>
where
    F: FnMut() -> f64,
{
    let n = StatParam::ALL.len();
    let ch = Cholesky::factor(corr.matrix())?;
    let z: Vec<f64> = (0..n).map(|_| normal()).collect();
    let correlated = ch.correlate(&z);
    let mut d = VariationDelta::default();
    for (i, p) in StatParam::ALL.into_iter().enumerate() {
        *d.component_mut(p) = spec.sigma(p, geom) * correlated[i];
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpv::predict_variances;
    use crate::sensitivity::VsBuilder;
    use mosfet::{vs::VsParams, Geometry, Polarity};
    use stats::Sampler;

    const VDD: f64 = 0.9;

    fn builder() -> VsBuilder {
        VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(600.0, 40.0),
        }
    }

    fn spec() -> MismatchSpec {
        MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
    }

    #[test]
    fn identity_correlation_reduces_to_independent_form() {
        let b = builder();
        let full = predict_variances_correlated(&b, &spec(), &ParamCorrelation::independent(), VDD);
        let indep = predict_variances(&b, &spec(), VDD);
        for (a, e) in full.iter().zip(&indep) {
            assert!((a / e - 1.0).abs() < 1e-12, "{a} vs {e}");
        }
    }

    #[test]
    fn aligned_correlation_raises_idsat_variance() {
        // Leff and Weff sensitivities on Idsat have opposite signs (shorter
        // = more current, narrower = less current), so *positive* L-W
        // correlation cancels and reduces variance; negative correlation
        // adds. Verify the cross-term sign logic both ways.
        let b = builder();
        let s = crate::sensitivity::sensitivity_matrix(&b, VDD);
        let sign = (s[(0, 1)] * s[(0, 2)]).signum();
        let pos = predict_variances_correlated(
            &b,
            &spec(),
            &ParamCorrelation::independent().with(StatParam::Leff, StatParam::Weff, 0.8),
            VDD,
        );
        let neg = predict_variances_correlated(
            &b,
            &spec(),
            &ParamCorrelation::independent().with(StatParam::Leff, StatParam::Weff, -0.8),
            VDD,
        );
        let indep = predict_variances(&b, &spec(), VDD);
        if sign > 0.0 {
            assert!(pos[0] > indep[0] && neg[0] < indep[0]);
        } else {
            assert!(pos[0] < indep[0] && neg[0] > indep[0]);
        }
    }

    #[test]
    fn correlated_sampling_matches_prediction() {
        let b = builder();
        let corr = ParamCorrelation::independent().with(StatParam::Vt0, StatParam::Mu, 0.5);
        let mut sampler = Sampler::from_seed(17);
        let n = 4000;
        let mut idsat = Vec::with_capacity(n);
        for _ in 0..n {
            let d = sample_correlated(&spec(), &corr, b.geom, || sampler.standard_normal())
                .expect("PD correlation");
            let m = b.build(d);
            idsat.push(crate::metrics::DeviceMetrics::evaluate(m.as_ref(), VDD).idsat);
        }
        let mc_var = stats::Summary::from_slice(&idsat).variance;
        let predicted = predict_variances_correlated(&b, &spec(), &corr, VDD)[0];
        assert!(
            (mc_var / predicted - 1.0).abs() < 0.15,
            "MC {mc_var:.3e} vs predicted {predicted:.3e}"
        );
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(ParamCorrelation::new(Matrix::identity(4)).is_err());
        let mut bad_diag = Matrix::identity(5);
        bad_diag[(0, 0)] = 0.9;
        assert!(ParamCorrelation::new(bad_diag).is_err());
        let mut asym = Matrix::identity(5);
        asym[(0, 1)] = 0.5;
        assert!(ParamCorrelation::new(asym).is_err());
        let mut ok = Matrix::identity(5);
        ok[(0, 1)] = 0.5;
        ok[(1, 0)] = 0.5;
        assert!(ParamCorrelation::new(ok).is_ok());
    }

    #[test]
    fn perfectly_correlated_matrix_fails_sampling() {
        // r = 1 between two parameters is singular (not PD).
        let corr = ParamCorrelation::independent().with(StatParam::Leff, StatParam::Weff, 1.0);
        let mut sampler = Sampler::from_seed(1);
        assert!(
            sample_correlated(&spec(), &corr, Geometry::from_nm(600.0, 40.0), || sampler
                .standard_normal())
            .is_err()
        );
    }

    #[test]
    #[should_panic]
    fn out_of_range_rho_panics() {
        let _ = ParamCorrelation::independent().with(StatParam::Vt0, StatParam::Mu, 1.5);
    }
}
