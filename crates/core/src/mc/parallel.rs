//! Work-sharded, deterministic parallel Monte Carlo execution.
//!
//! [`ParallelRunner`] spreads the samples of one Monte Carlo experiment
//! across `std::thread` workers. Three properties shape the design:
//!
//! * **Elaborate once per worker.** Worker state (an elaborated
//!   [`spice::Session`], a bench, a device factory template) is built once
//!   by the `build` closure inside each worker thread — the per-sample fast
//!   path (swap devices, warm-started re-solve) never crosses a thread
//!   boundary. Use [`spice::Session::replicate`] to hand every worker its
//!   own copy of a shared elaboration.
//! * **Thread-count-invariant determinism.** Sample `i` always draws from
//!   [`stats::Sampler::stream`]`(i)` of the runner's base sampler — a pure
//!   function of `(seed, i)` — and work is handed out by index from a
//!   shared counter. Whichever worker happens to execute a sample, it
//!   computes bit-identical results; 1, 2, or 64 workers produce the same
//!   sample set. Merged moments reported by [`McOutcome::moments`] are
//!   accumulated in sample-index order, so they are bit-identical too.
//!
//!   The guarantee is as strong as the sample closure is pure: if a sample
//!   reads mutable worker state whose value depends on scheduling history —
//!   the classic case is a warm-started Newton solve seeded by whichever
//!   sample the worker ran previously — its result can drift in the last
//!   floating-point bits while remaining statistically identical (the
//!   mismatch draws are exactly the same devices). Call
//!   [`spice::Session::invalidate_warm_start`] per sample when bit-exact
//!   reproducibility matters more than the warm-start speedup.
//! * **Streaming aggregation with optional early stopping.** Workers write
//!   results into per-sample slots; the coordinating thread folds them into
//!   a [`Welford`] accumulator at deterministic round boundaries and can
//!   stop the run once the confidence interval on the mean is tight enough
//!   ([`EarlyStop`]). Because rounds are fixed multiples of
//!   [`ParallelRunner::check_every`] samples (independent of the worker
//!   count), the stopping sample count is deterministic as well.
//!
//!   When the sample values themselves should not be buffered —
//!   million-sample sweeps asking distribution questions —
//!   [`ParallelRunner::run_streaming`] feeds every `(index, value)` record
//!   to a [`Sink`] (quantile sketch, histogram, CSV writer, live moments)
//!   *during* the run: workers append to per-worker shards, and the
//!   coordinator folds the shards in ascending index order at each round
//!   boundary, so sink state is bit-identical for any worker count while
//!   peak sample storage stays O(workers + check_every) instead of O(n).
//! * **Batched hot paths.** [`ParallelRunner::run_streaming_batched`]
//!   hands workers *chunks* of K consecutive sample indices at a time, so
//!   a batch-capable worker (e.g. [`spice::Session::dc_batch`] stamping
//!   and LU-solving K mismatch lanes at once) amortizes per-sample
//!   overhead without changing the result: each index still draws its own
//!   pure `(seed, i)` stream, records still fold in ascending index order,
//!   and a tail chunk carries exactly the remaining indices — the sink
//!   state stays bit-identical to the scalar streaming run.
//! * **Fleet partitioning.** [`ParallelRunner::run_streaming_range`] runs
//!   one disjoint slice of the sample index space — the same pure
//!   `(seed, i)` streams, the same index-ordered fold — so N *processes or
//!   machines* each execute a shard of one experiment and merge their
//!   [`stats::sink::MergeableSink`] states (t-digest, histogram, Welford)
//!   afterwards, independent of how the space was partitioned.
//!
//! # Example
//!
//! ```
//! use vscore::mc::ParallelRunner;
//!
//! // Estimate E[X^2] for X ~ N(0,1): worker state is trivial (unit), the
//! // per-sample closure gets a deterministically derived sampler.
//! let runner = ParallelRunner::new(7).workers(2);
//! let out = runner
//!     .run_scalar(
//!         400,
//!         |_worker, _sampler| Ok::<(), std::convert::Infallible>(()),
//!         |(), sampler, _i| {
//!             let x = sampler.standard_normal();
//!             Ok(x * x)
//!         },
//!     )
//!     .unwrap();
//! let moments = out.moments();
//! assert_eq!(moments.count(), 400);
//! assert!((moments.mean() - 1.0).abs() < 0.2);
//! // Same seed, different worker count: bit-identical outcome.
//! let again = ParallelRunner::new(7)
//!     .workers(1)
//!     .run_scalar(
//!         400,
//!         |_, _| Ok::<(), std::convert::Infallible>(()),
//!         |(), s, _| {
//!             let x = s.standard_normal();
//!             Ok(x * x)
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(moments.mean(), again.moments().mean());
//! ```

use stats::sink::Sink;
use stats::{Sampler, Welford};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Sentinel `limit` value signalling workers to shut down.
const SHUTDOWN: usize = usize::MAX;
/// Salt separating worker-setup streams from per-sample streams.
const WORKER_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Adapts a per-sample closure to the chunked `exec` contract of
/// `run_engine`: for each index of the claimed chunk, derive its pure
/// `(seed, i)` sampler stream, run the sample, emit the success, count the
/// failure. Every scalar run flavor is this adapter with stride 1.
fn sample_chunk<W, T, E, S>(
    sample: &S,
    worker: usize,
    state: &mut W,
    base: &Sampler,
    lo: usize,
    hi: usize,
    emit: &(dyn Fn(usize, usize, T) + Sync),
) -> usize
where
    S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
{
    let mut failed = 0;
    for i in lo..hi {
        let mut s = base.stream(i as u64);
        match sample(state, &mut s, i) {
            Ok(t) => emit(worker, i, t),
            Err(_) => failed += 1,
        }
    }
    failed
}

/// Confidence-interval stopping rule for [`ParallelRunner::run_scalar`].
///
/// The run ends at the first round boundary where at least `min_samples`
/// samples have succeeded and the `z`-scaled half-width of the confidence
/// interval on the mean is below `rel_half_width · |mean|`. A mean of zero
/// never satisfies the relative criterion; use an absolute transform of the
/// metric if that can occur.
#[derive(Debug, Clone, Copy)]
pub struct EarlyStop {
    /// Target half-width of the CI, relative to the absolute mean.
    pub rel_half_width: f64,
    /// Normal quantile of the interval (1.96 ~ 95%).
    pub z: f64,
    /// Minimum number of successful samples before stopping is considered.
    pub min_samples: usize,
}

impl EarlyStop {
    /// A 95% (`z = 1.96`) rule with the given relative half-width and a
    /// 64-sample floor.
    #[must_use]
    pub fn relative(rel_half_width: f64) -> Self {
        EarlyStop {
            rel_half_width,
            z: 1.96,
            min_samples: 64,
        }
    }

    /// Overrides the minimum sample count.
    #[must_use]
    pub fn min_samples(mut self, n: usize) -> Self {
        self.min_samples = n;
        self
    }

    /// Overrides the normal quantile.
    #[must_use]
    pub fn z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }

    /// True when the accumulated moments meet the stopping criterion.
    ///
    /// This is *the* predicate both execution paths evaluate at round
    /// boundaries — the buffered `run_scalar` and the streaming
    /// `run_streaming` stay bit-identical because they share it, and
    /// external progress loops (e.g. polling a
    /// [`stats::sink::WelfordWatch`]) can reuse it verbatim.
    #[must_use]
    pub fn satisfied(&self, watched: &Welford) -> bool {
        watched.count() >= self.min_samples as u64
            && watched.ci_half_width(self.z) <= self.rel_half_width * watched.mean().abs()
    }
}

/// Outcome of a parallel Monte Carlo run.
///
/// Successful samples are stored as `(index, value)` pairs sorted by sample
/// index; failed samples (the `sample` closure returned `Err`) are counted
/// in `failures` and omitted, matching the skip-and-count convention of the
/// sequential experiment loops.
#[derive(Debug, Clone)]
pub struct McOutcome<T> {
    samples: Vec<(usize, T)>,
    /// Samples whose closure returned an error (functional failures under
    /// extreme mismatch, non-convergence, ...).
    pub failures: usize,
    /// Number of sample indices actually scheduled — equals the requested
    /// count unless an [`EarlyStop`] rule ended the run sooner.
    pub attempted: usize,
    /// Worker threads the run executed on.
    pub workers: usize,
}

impl<T> McOutcome<T> {
    /// Number of successful samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample succeeded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `(sample index, value)` pairs, ascending by index.
    #[must_use]
    pub fn samples(&self) -> &[(usize, T)] {
        &self.samples
    }

    /// Successful sample values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.samples.iter().map(|(_, t)| t)
    }

    /// Consumes the outcome into the values in index order.
    #[must_use]
    pub fn into_values(self) -> Vec<T> {
        self.samples.into_iter().map(|(_, t)| t).collect()
    }
}

impl McOutcome<f64> {
    /// Streaming moments of the successful samples, accumulated in sample-
    /// index order — bit-identical for any worker count.
    #[must_use]
    pub fn moments(&self) -> Welford {
        let mut w = Welford::new();
        for (_, x) in &self.samples {
            w.push(*x);
        }
        w
    }
}

/// Summary of a streaming Monte Carlo run — the counterpart of
/// [`McOutcome`] when results flow to a [`Sink`] during the run instead of
/// being buffered. The values themselves live in whatever state the sink
/// kept; this carries the run accounting and the index-ordered moments.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// Samples whose closure returned an error (functional failures under
    /// extreme mismatch, non-convergence, ...).
    pub failures: usize,
    /// Number of sample indices actually scheduled — equals the requested
    /// count unless an [`EarlyStop`] rule ended the run sooner.
    pub attempted: usize,
    /// Worker threads the run executed on.
    pub workers: usize,
    /// Successful samples handed to the sink.
    pub observed: usize,
    moments: Welford,
}

impl StreamOutcome {
    /// Streaming moments of the observed samples, folded in sample-index
    /// order — bit-identical to [`McOutcome::moments`] of a buffered
    /// [`ParallelRunner::run_scalar`] of the same workload, for any worker
    /// count. Empty for [`ParallelRunner::run_streaming_records`] runs
    /// (generic records carry no scalar metric).
    #[must_use]
    pub fn moments(&self) -> Welford {
        self.moments
    }
}

/// Run accounting shared by the buffered and streaming execution paths.
struct RunStats {
    attempted: usize,
    failures: usize,
    workers: usize,
}

/// A deterministic, work-sharded Monte Carlo executor.
///
/// See the [module docs](self) for the determinism contract and a runnable
/// example. Construct with [`ParallelRunner::new`] (worker count defaults
/// to the machine's available parallelism) and adjust with the builder
/// methods.
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    workers: usize,
    seed: u64,
    early_stop: Option<EarlyStop>,
    check_every: usize,
}

impl ParallelRunner {
    /// A runner using every available hardware thread.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ParallelRunner {
            workers,
            seed,
            early_stop: None,
            check_every: 256,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Configured worker count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Enables confidence-interval early stopping for
    /// [`ParallelRunner::run_scalar`].
    #[must_use]
    pub fn early_stop(mut self, stop: EarlyStop) -> Self {
        self.early_stop = Some(stop);
        self
    }

    /// Sets the round granularity: the stopping rule is evaluated every
    /// `n` samples (clamped to at least 1). Rounds are independent of the
    /// worker count, keeping early-stopped runs deterministic.
    #[must_use]
    pub fn check_every(mut self, n: usize) -> Self {
        self.check_every = n.max(1);
        self
    }

    /// Runs `n` samples of a generic-valued experiment.
    ///
    /// `build(worker_id, sampler)` constructs each worker's private state
    /// inside its thread (elaborated sessions, benches, factory templates);
    /// the sampler it receives is derived per worker and is *not* part of
    /// the per-sample determinism contract — anything drawn from it must be
    /// overwritten per sample (as device-swapping benches do).
    ///
    /// `sample(state, sampler, i)` computes sample `i` with a sampler
    /// stream derived purely from the runner seed and `i`. An `Err` return
    /// marks that sample failed and is counted, not propagated.
    ///
    /// Early stopping does not apply (there is no scalar metric to watch);
    /// use [`ParallelRunner::run_scalar`] for that.
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error.
    pub fn run<W, T, E, B, S>(&self, n: usize, build: B, sample: S) -> Result<McOutcome<T>, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
    {
        self.run_impl(n, build, sample, None)
    }

    /// [`ParallelRunner::run`] for scalar metrics, with the configured
    /// [`EarlyStop`] rule applied at round boundaries. Moments of the
    /// outcome come from [`McOutcome::moments`].
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error.
    pub fn run_scalar<W, E, B, S>(&self, n: usize, build: B, sample: S) -> Result<McOutcome<f64>, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<f64, E> + Sync,
    {
        self.run_impl(n, build, sample, Some(&|x: &f64| *x))
    }

    /// Runs `n` samples of a scalar experiment, streaming every successful
    /// `(index, value)` record into `sink` *during* the run instead of
    /// buffering it — peak sample storage is O(workers + check_every),
    /// independent of `n`.
    ///
    /// Workers append records to per-worker shards; at every round boundary
    /// (fixed multiples of [`ParallelRunner::check_every`] samples) the
    /// coordinating thread folds the shards **in ascending sample-index
    /// order** and hands the batch to the sink on the calling thread. The
    /// sink therefore consumes one deterministic record sequence: its final
    /// state — sketch markers, histogram counts, CSV bytes — is
    /// bit-identical for any worker count, and [`StreamOutcome::moments`]
    /// reproduces [`McOutcome::moments`] of the equivalent
    /// [`ParallelRunner::run_scalar`] bit-exactly. The sink does not need
    /// to be `Send`; it never leaves the calling thread.
    ///
    /// The configured [`EarlyStop`] rule is honoured at the same round
    /// boundaries as `run_scalar`, so a stopped streaming run feeds the
    /// sink exactly the sample prefix the buffered run would return.
    /// [`Sink::finish`] is called once after the final record of a
    /// completed (or early-stopped) run; a panic inside the sink shuts the
    /// run down cleanly and re-raises on the calling thread, exactly like
    /// a panic in a sample closure.
    ///
    /// # Example
    ///
    /// ```
    /// use stats::sink::P2Quantiles;
    /// use vscore::mc::ParallelRunner;
    ///
    /// // Stream E[X] and the 90th percentile of X ~ N(0,1) without
    /// // buffering a single sample value.
    /// let mut sketch = P2Quantiles::new(&[0.9]);
    /// let out = ParallelRunner::new(7)
    ///     .workers(2)
    ///     .run_streaming(
    ///         2000,
    ///         |_, _| Ok::<(), std::convert::Infallible>(()),
    ///         |(), s, _| Ok(s.standard_normal()),
    ///         &mut sketch,
    ///     )
    ///     .unwrap();
    /// assert_eq!(out.observed, 2000);
    /// assert!(out.moments().mean().abs() < 0.1);
    /// assert!((sketch.quantile(0.9).unwrap() - 1.28).abs() < 0.15);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error (the sink is left
    /// unfinished).
    pub fn run_streaming<W, E, B, S, K>(
        &self,
        n: usize,
        build: B,
        sample: S,
        sink: &mut K,
    ) -> Result<StreamOutcome, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<f64, E> + Sync,
        K: Sink + ?Sized,
    {
        self.stream_impl(
            0,
            n,
            self.check_every,
            1,
            build,
            &|w, st: &mut W, base: &Sampler, lo, hi, emit: &(dyn Fn(usize, usize, f64) + Sync)| {
                sample_chunk(&sample, w, st, base, lo, hi, emit)
            },
            sink,
            Some(&|x: &f64| *x),
            self.early_stop,
        )
    }

    /// [`ParallelRunner::run_streaming`] for generic record types — e.g. a
    /// scatter experiment streaming `(leakage, frequency)` pairs into a
    /// two-column [`stats::sink::CsvSink`]. There is no scalar metric, so
    /// [`EarlyStop`] does not apply and [`StreamOutcome::moments`] stays
    /// empty; everything else (index-ordered fold, bit-identical sink
    /// state, panic propagation) matches the scalar variant.
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error.
    pub fn run_streaming_records<W, T, E, B, S, K>(
        &self,
        n: usize,
        build: B,
        sample: S,
        sink: &mut K,
    ) -> Result<StreamOutcome, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
        K: Sink<T> + ?Sized,
    {
        self.stream_impl(
            0,
            n,
            self.check_every,
            1,
            build,
            &|w, st: &mut W, base: &Sampler, lo, hi, emit: &(dyn Fn(usize, usize, T) + Sync)| {
                sample_chunk(&sample, w, st, base, lo, hi, emit)
            },
            sink,
            None,
            None,
        )
    }

    /// Executes the disjoint shard `offset .. offset + len` of a larger
    /// experiment's sample index space, streaming into `sink` — the
    /// fleet-scale primitive: N processes or machines each run one shard
    /// of the same `(seed, total)` experiment, serialize their
    /// [`stats::sink::MergeableSink`] states, and an aggregator merges
    /// them.
    ///
    /// Sample `i` draws from exactly the same pure `(seed, i)` stream as
    /// in a single [`ParallelRunner::run_streaming`] over the whole index
    /// space, and the shard's records fold into the sink in ascending
    /// index order — so the union of shard streams *is* the single-run
    /// stream, however the space is partitioned. Merged sketch guarantees
    /// (partitioned-and-merged vs single-run state): exact for
    /// [`stats::histogram::Histogram`] bin counts and for every
    /// count/min/max; [`stats::Welford`] moments to floating-point
    /// rounding (≲1e-12 relative — grouping pushes into shards moves the
    /// last bits, see [`stats::Welford::merge`]); [`stats::TDigest`]
    /// quantiles within the digest's documented rank-error bound. The
    /// determinism suite (`crates/core/tests/parallel_mc.rs`) pins all
    /// three, including through the byte round-trip.
    ///
    /// The configured [`EarlyStop`] rule is **ignored**: a shard observes
    /// only its slice of the samples, so a locally-evaluated CI rule would
    /// make the executed sample set depend on the partitioning — exactly
    /// what fleet merging must rule out. (Run accounting in the returned
    /// [`StreamOutcome`] is shard-local: `attempted` counts this shard's
    /// indices.)
    ///
    /// # Example
    ///
    /// Three shards of one experiment, merged, against the single run:
    ///
    /// ```
    /// use stats::sink::MergeableSink;
    /// use stats::TDigest;
    /// use vscore::mc::ParallelRunner;
    ///
    /// let runner = ParallelRunner::new(9);
    /// let sample = |(): &mut (), s: &mut stats::Sampler, _i: usize| {
    ///     Ok::<_, std::convert::Infallible>(s.standard_normal())
    /// };
    /// let mut merged = TDigest::new(100.0);
    /// for (offset, len) in [(0, 1000), (1000, 500), (1500, 1500)] {
    ///     let mut shard = TDigest::new(100.0);
    ///     runner
    ///         .run_streaming_range(offset, len, |_, _| Ok(()), sample, &mut shard)
    ///         .unwrap();
    ///     // In a real fleet the bytes cross a process/machine boundary.
    ///     merged.merge_from(&TDigest::from_bytes(&shard.to_bytes()).unwrap());
    /// }
    /// let mut single = TDigest::new(100.0);
    /// runner
    ///     .run_streaming(3000, |_, _| Ok(()), sample, &mut single)
    ///     .unwrap();
    /// assert_eq!(merged.count(), single.count());
    /// assert_eq!(merged.min(), single.min()); // extrema merge exactly
    /// let (m, s) = (
    ///     merged.quantile(0.95).unwrap(),
    ///     single.quantile(0.95).unwrap(),
    /// );
    /// assert!((m - s).abs() < 0.1); // within the documented rank error
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error (the sink is left
    /// unfinished).
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` overflows `usize` or reaches
    /// `usize::MAX` (reserved as the engine's shutdown sentinel) — shard
    /// specifications that cannot index a sample space are a caller bug.
    pub fn run_streaming_range<W, E, B, S, K>(
        &self,
        offset: usize,
        len: usize,
        build: B,
        sample: S,
        sink: &mut K,
    ) -> Result<StreamOutcome, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<f64, E> + Sync,
        K: Sink + ?Sized,
    {
        let end = offset
            .checked_add(len)
            .filter(|&end| end < usize::MAX)
            .expect("shard range must end below usize::MAX (the sample index space)");
        self.stream_impl(
            offset,
            end,
            self.check_every,
            1,
            build,
            &|w, st: &mut W, base: &Sampler, lo, hi, emit: &(dyn Fn(usize, usize, f64) + Sync)| {
                sample_chunk(&sample, w, st, base, lo, hi, emit)
            },
            sink,
            Some(&|x: &f64| *x),
            None,
        )
    }

    /// Executes the shard `offset .. offset + len` of an
    /// **importance-sampling** experiment: the `sample` closure returns a
    /// `(value, log_weight)` record — the metric drawn under a *proposal*
    /// distribution plus its exact log-likelihood-ratio against the
    /// nominal distribution — and every record flows through the unchanged
    /// index-ordered fold into a weighted sink
    /// ([`stats::WeightedMoments`], [`stats::WeightedHistogram`], or any
    /// [`Sink<(f64, f64)>`](Sink) fan-out tuple of them).
    ///
    /// Everything [`ParallelRunner::run_streaming_range`] guarantees holds
    /// verbatim: sample `i` draws the pure `(seed, i)` stream, records fold
    /// in ascending index order, the sink state is bit-identical for any
    /// worker count, and disjoint shards of one experiment merge through
    /// the [`stats::WeightedSink`] byte codec. The weighted sinks
    /// accumulate in exact fixed-point sums, so the merged-shard guarantee
    /// is *stronger* than for Welford moments: merged bytes equal
    /// single-run bytes exactly, for any partitioning. A configured
    /// [`EarlyStop`] rule is ignored for the same reason as in
    /// `run_streaming_range`, and [`StreamOutcome::moments`] stays empty —
    /// unweighted moments of proposal draws estimate nothing about the
    /// nominal distribution; read the weighted sink instead.
    ///
    /// With the nominal (identity) proposal every log-weight is exactly
    /// `0.0` and the record values are the plain-MC stream bit-for-bit, so
    /// degenerate IS runs reproduce unweighted runs exactly (pinned by the
    /// determinism suite).
    ///
    /// # Example
    ///
    /// A 4σ tail probability, resolved with 4000 proposal draws — plain MC
    /// would see roughly zero hits at this budget:
    ///
    /// ```
    /// use vscore::mc::{GaussianProposal, ParallelRunner, WeightedMoments};
    ///
    /// let proposal = GaussianProposal::new(4.0, 1.0);
    /// let mut sink = WeightedMoments::above(4.0);
    /// ParallelRunner::new(11)
    ///     .workers(2)
    ///     .run_streaming_is(
    ///         0,
    ///         4000,
    ///         |_, _| Ok::<(), std::convert::Infallible>(()),
    ///         |(), s, _| Ok(proposal.draw_weighted(s)),
    ///         &mut sink,
    ///     )
    ///     .unwrap();
    /// let truth = stats::gaussian::tail(4.0); // ~3.17e-5
    /// assert!((sink.estimate() / truth - 1.0).abs() < 0.2);
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error (the sink is left
    /// unfinished).
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` overflows the sample index space, as
    /// [`ParallelRunner::run_streaming_range`].
    pub fn run_streaming_is<W, E, B, S, K>(
        &self,
        offset: usize,
        len: usize,
        build: B,
        sample: S,
        sink: &mut K,
    ) -> Result<StreamOutcome, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<(f64, f64), E> + Sync,
        K: Sink<(f64, f64)> + ?Sized,
    {
        let end = offset
            .checked_add(len)
            .filter(|&end| end < usize::MAX)
            .expect("shard range must end below usize::MAX (the sample index space)");
        self.stream_impl(
            offset,
            end,
            self.check_every,
            1,
            build,
            &|w,
              st: &mut W,
              base: &Sampler,
              lo,
              hi,
              emit: &(dyn Fn(usize, usize, (f64, f64)) + Sync)| {
                sample_chunk(&sample, w, st, base, lo, hi, emit)
            },
            sink,
            None,
            None,
        )
    }

    /// Executes the shard `offset .. offset + len` with workers claiming
    /// **batches of `lanes` consecutive sample indices** instead of one
    /// index at a time — the entry point for batch-capable hot paths such
    /// as [`spice::Session::dc_batch`], which stamps and LU-solves K
    /// mismatch lanes in one pass.
    ///
    /// `batch(state, base_index, samplers)` computes samples `base_index ..
    /// base_index + samplers.len()`: `samplers[j]` is the pure
    /// `(seed, base_index + j)` stream — exactly the sampler the scalar
    /// path would hand sample `base_index + j` — and the returned vector
    /// reports each lane's outcome in order (`Err` lanes are counted as
    /// failures, not propagated: per-lane failure isolation). All chunks
    /// hold `lanes` indices except the final chunk of the range, which
    /// holds exactly the remaining tail (see
    /// [`plan_batches`](super::plan_batches) for the tiling this
    /// guarantees).
    ///
    /// **Determinism:** because lane `j` draws the same pure stream and
    /// records still fold in ascending index order at fixed round
    /// boundaries (rounds are rounded up to a multiple of `lanes`), a
    /// batched run whose `batch` closure computes each lane exactly like
    /// the scalar `sample` closure produces **bit-identical sink state**
    /// to [`ParallelRunner::run_streaming_range`] of the same shard — for
    /// any worker count and any `lanes`. The determinism suite
    /// (`crates/core/tests/parallel_mc.rs`) pins this.
    ///
    /// Like [`ParallelRunner::run_streaming_range`], a configured
    /// [`EarlyStop`] rule is ignored (a batched shard is a fleet
    /// primitive; locally-evaluated stopping would make the executed
    /// sample set depend on the partitioning).
    ///
    /// # Example
    ///
    /// A batched run is bit-identical to the scalar streaming run when
    /// each lane mirrors the scalar closure:
    ///
    /// ```
    /// use stats::sink::VecSink;
    /// use vscore::mc::ParallelRunner;
    ///
    /// let runner = ParallelRunner::new(7).workers(2);
    /// let mut scalar = VecSink::new();
    /// runner
    ///     .run_streaming(
    ///         100,
    ///         |_, _| Ok::<(), std::convert::Infallible>(()),
    ///         |(), s, _| Ok(s.standard_normal()),
    ///         &mut scalar,
    ///     )
    ///     .unwrap();
    /// let mut batched = VecSink::new();
    /// let out = runner
    ///     .run_streaming_batched(
    ///         0,
    ///         100,
    ///         std::num::NonZeroUsize::new(8).unwrap(),
    ///         |_, _| Ok::<(), std::convert::Infallible>(()),
    ///         |(), _base, samplers| samplers.iter_mut().map(|s| Ok(s.standard_normal())).collect(),
    ///         &mut batched,
    ///     )
    ///     .unwrap();
    /// assert_eq!(out.observed, 100); // 12 full batches + a 4-lane tail
    /// assert_eq!(scalar.records(), batched.records());
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error (the sink is left
    /// unfinished).
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` overflows the sample index space (as
    /// [`ParallelRunner::run_streaming_range`]), or if the `batch` closure
    /// returns a vector whose length differs from the chunk's lane count —
    /// dropping or inventing lane results would silently corrupt the
    /// merged statistics, so it is a contract violation, not an `Err`.
    pub fn run_streaming_batched<W, E, B, S, K>(
        &self,
        offset: usize,
        len: usize,
        lanes: NonZeroUsize,
        build: B,
        batch: S,
        sink: &mut K,
    ) -> Result<StreamOutcome, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, usize, &mut [Sampler]) -> Vec<Result<f64, E>> + Sync,
        K: Sink + ?Sized,
    {
        let end = offset
            .checked_add(len)
            .filter(|&end| end < usize::MAX)
            .expect("shard range must end below usize::MAX (the sample index space)");
        let k = lanes.get();
        // Rounds stay multiples of the lane count, so the only partial
        // chunk a worker ever sees is the genuine tail of the range.
        let round = self.check_every.div_ceil(k).saturating_mul(k);
        self.stream_impl(
            offset,
            end,
            round,
            k,
            build,
            &|w, st: &mut W, base: &Sampler, lo, hi, emit: &(dyn Fn(usize, usize, f64) + Sync)| {
                let mut samplers: Vec<Sampler> = (lo..hi).map(|i| base.stream(i as u64)).collect();
                let out = batch(st, lo, &mut samplers);
                assert_eq!(
                    out.len(),
                    hi - lo,
                    "batch closure returned {} results for the {}-lane batch at sample {lo}",
                    out.len(),
                    hi - lo
                );
                let mut failed = 0;
                for (j, r) in out.into_iter().enumerate() {
                    match r {
                        Ok(v) => emit(w, lo + j, v),
                        Err(_) => failed += 1,
                    }
                }
                failed
            },
            sink,
            Some(&|x: &f64| *x),
            None,
        )
    }

    /// Buffered execution: per-sample slots collected into an [`McOutcome`].
    fn run_impl<W, T, E, B, S>(
        &self,
        n: usize,
        build: B,
        sample: S,
        metric: Option<&dyn Fn(&T) -> f64>,
    ) -> Result<McOutcome<T>, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let results = Mutex::new(slots);
        // Without a stopping rule there is nothing to evaluate between
        // rounds, so the whole run is one round.
        let round = match (self.early_stop, metric.is_some()) {
            (Some(_), true) => self.check_every,
            _ => n.max(1),
        };
        // Early-stop accumulator: samples below a finished round's limit
        // never change, so each slot is folded exactly once, in index
        // order — bit-identical to a from-scratch refold, but O(round) per
        // check instead of O(hi).
        let mut watched = Welford::new();
        let emit =
            |_: usize, i: usize, t: T| results.lock().expect("no poisoned locks")[i] = Some(t);
        let stats = self.run_engine(
            0,
            n,
            round,
            1,
            &build,
            &|w, st: &mut W, base: &Sampler, lo, hi| {
                sample_chunk(&sample, w, st, base, lo, hi, &emit)
            },
            &mut |lo, hi| {
                let (Some(stop), Some(metric)) = (self.early_stop, metric) else {
                    return false;
                };
                if hi >= n {
                    return false; // final round: the run is complete anyway
                }
                let res = results.lock().expect("no poisoned locks");
                for t in res[lo..hi].iter().flatten() {
                    watched.push(metric(t));
                }
                stop.satisfied(&watched)
            },
        )?;
        let samples = results
            .into_inner()
            .expect("no poisoned locks")
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t)))
            .collect();
        Ok(McOutcome {
            samples,
            failures: stats.failures,
            attempted: stats.attempted,
            workers: stats.workers,
        })
    }

    /// Streaming execution over the sample index range `start..end`:
    /// per-worker record shards folded into a sink in index order at every
    /// round boundary. `exec` computes one claimed chunk of `stride`
    /// consecutive indices, emitting successes through the provided
    /// callback (scalar flavors adapt their per-sample closure via
    /// [`sample_chunk`] with stride 1). `stop` is the early-stopping rule
    /// to honour (`None` for generic records and for partitioned shards,
    /// which must not let local state decide the executed sample set).
    #[allow(clippy::too_many_arguments, clippy::type_complexity)]
    fn stream_impl<W, T, E, B, K>(
        &self,
        start: usize,
        end: usize,
        round: usize,
        stride: usize,
        build: B,
        exec: &(dyn Fn(usize, &mut W, &Sampler, usize, usize, &(dyn Fn(usize, usize, T) + Sync)) -> usize
              + Sync),
        sink: &mut K,
        metric: Option<&dyn Fn(&T) -> f64>,
        stop: Option<EarlyStop>,
    ) -> Result<StreamOutcome, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        K: Sink<T> + ?Sized,
    {
        let workers = self.workers.min((end - start).max(1));
        let shards: Vec<Mutex<Vec<(usize, T)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        let mut batch: Vec<(usize, T)> = Vec::new();
        let mut moments = Welford::new();
        let mut observed = 0usize;
        let emit =
            |w: usize, i: usize, t: T| shards[w].lock().expect("no poisoned locks").push((i, t));
        let stats = self.run_engine(
            start,
            end,
            round,
            stride,
            &build,
            &|w, st: &mut W, base: &Sampler, lo, hi| exec(w, st, base, lo, hi, &emit),
            &mut |_, hi| {
                // Fold the shards in ascending sample-index order: the sink
                // and the watched moments see one deterministic record
                // stream, whatever the worker count. Each worker pops
                // indices monotonically, so the concatenation sorts in one
                // cheap pass over ~check_every records.
                for shard in &shards {
                    batch.append(&mut shard.lock().expect("no poisoned locks"));
                }
                batch.sort_unstable_by_key(|&(i, _)| i);
                observed += batch.len();
                if let Some(metric) = metric {
                    for (_, t) in &batch {
                        moments.push(metric(t));
                    }
                }
                sink.merge(&mut batch);
                batch.clear();
                if hi < end {
                    if let (Some(stop), Some(_)) = (stop, metric) {
                        return stop.satisfied(&moments);
                    }
                }
                false
            },
        )?;
        sink.finish();
        Ok(StreamOutcome {
            failures: stats.failures,
            attempted: stats.attempted,
            workers: stats.workers,
            observed,
            moments,
        })
    }

    /// The sharded execution engine shared by every run flavor, executing
    /// the sample index range `start..end` (a full run passes `start = 0`;
    /// a fleet shard passes its offset — sample `i` draws the same pure
    /// `(seed, i)` stream either way).
    ///
    /// Workers claim chunks of `stride` consecutive indices from the
    /// shared counter and run `exec(worker, state, sample_base, lo, hi)`
    /// on each — the closure computes samples `lo..hi` (deriving each
    /// index's pure stream itself), emits successes to its captured
    /// destination, and returns the number of failures. Scalar runs pass
    /// stride 1 ([`sample_chunk`] per index, exactly the historical
    /// behavior); batched runs pass stride K so a batch-capable worker
    /// sees K lanes per claim.
    ///
    /// After every round barrier the coordinator calls `fold(lo, hi)`
    /// exactly once on the calling thread for the now-final contiguous
    /// index range `lo..hi` — returning `true` stops the run at that round
    /// boundary. A panic inside `exec` or `fold` (a sink panicking in
    /// `observe`, say) shuts the run down cleanly and re-raises on the
    /// coordinating thread.
    fn run_engine<W, E, B>(
        &self,
        start: usize,
        end: usize,
        round: usize,
        stride: usize,
        build: &B,
        exec: &(dyn Fn(usize, &mut W, &Sampler, usize, usize) -> usize + Sync),
        fold: &mut dyn FnMut(usize, usize) -> bool,
    ) -> Result<RunStats, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
    {
        let len = end - start;
        let workers = self.workers.min(len.max(1));
        if len == 0 {
            return Ok(RunStats {
                attempted: 0,
                failures: 0,
                workers,
            });
        }

        // Two deterministic stream families: one per sample index (the
        // determinism contract), one per worker id (setup-only draws).
        let mut root = Sampler::from_seed(self.seed);
        let sample_base = root.fork(0);
        let worker_base = root.fork(WORKER_STREAM_SALT);

        let failures = AtomicUsize::new(0);
        let next = AtomicUsize::new(start);
        let limit = AtomicUsize::new(0);
        // Workers + the coordinating thread.
        let barrier = Barrier::new(workers + 1);
        let setup_err: Mutex<Option<E>> = Mutex::new(None);

        // A panic inside a user closure must not strand the other threads
        // at a barrier (std barriers do not poison): the unwinding worker
        // catches the payload, parks itself as idle, and keeps honouring
        // the barrier protocol; the coordinator shuts the run down and
        // re-raises the panic after the scope joins.
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let store_panic = |p: Box<dyn std::any::Any + Send>| {
            let mut slot = panic_slot.lock().expect("no poisoned locks");
            if slot.is_none() {
                *slot = Some(p);
            }
        };

        let attempted = std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let (failures, exec) = (&failures, &exec);
                let (next, limit, barrier) = (&next, &limit, &barrier);
                let (setup_err, store_panic) = (&setup_err, &store_panic);
                let (sample_base, worker_base) = (&sample_base, &worker_base);
                scope.spawn(move || {
                    let mut wsampler = worker_base.stream(worker_id as u64);
                    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        build(worker_id, &mut wsampler)
                    }));
                    let mut state = match built {
                        Ok(Ok(w)) => Some(w),
                        Ok(Err(e)) => {
                            let mut slot = setup_err.lock().expect("no poisoned locks");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            None
                        }
                        Err(p) => {
                            store_panic(p);
                            None
                        }
                    };
                    barrier.wait(); // setup complete
                    loop {
                        barrier.wait(); // round start
                        let hi = limit.load(Ordering::SeqCst);
                        if hi == SHUTDOWN {
                            return;
                        }
                        let mut poisoned = false;
                        if let Some(st) = state.as_mut() {
                            // Bounded chunk pop: a worker claims `stride`
                            // consecutive indices, clamped to `hi` — round
                            // boundaries lose no sample indices, and the
                            // final claim of the range is exactly the
                            // remaining tail (a partial batch, never a
                            // dropped or duplicated one).
                            while let Ok(lo) =
                                next.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |i| {
                                    (i < hi).then(|| i.saturating_add(stride).min(hi))
                                })
                            {
                                let chunk_hi = lo.saturating_add(stride).min(hi);
                                let r =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        exec(worker_id, st, sample_base, lo, chunk_hi)
                                    }));
                                match r {
                                    Ok(0) => {}
                                    Ok(failed) => {
                                        failures.fetch_add(failed, Ordering::SeqCst);
                                    }
                                    Err(p) => {
                                        store_panic(p);
                                        poisoned = true;
                                        break;
                                    }
                                }
                            }
                        }
                        if poisoned {
                            // The state may be mid-mutation; retire it and
                            // idle through the remaining barriers.
                            state = None;
                        }
                        barrier.wait(); // round end
                    }
                });
            }

            // ---- coordinator ------------------------------------------------
            let shutdown = |hi: usize| {
                limit.store(SHUTDOWN, Ordering::SeqCst);
                barrier.wait();
                hi
            };
            barrier.wait(); // setup complete
            if setup_err.lock().expect("no poisoned locks").is_some()
                || panic_slot.lock().expect("no poisoned locks").is_some()
            {
                return shutdown(start);
            }
            let mut hi = start;
            let mut folded_to = start;
            while hi < end {
                hi = (hi + round).min(end);
                limit.store(hi, Ordering::SeqCst);
                barrier.wait(); // round start
                barrier.wait(); // round end: all samples < hi are final
                if panic_slot.lock().expect("no poisoned locks").is_some() {
                    return shutdown(hi);
                }
                let folded =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fold(folded_to, hi)));
                folded_to = hi;
                match folded {
                    Ok(true) => break,
                    Ok(false) => {}
                    Err(p) => {
                        store_panic(p);
                        return shutdown(hi);
                    }
                }
            }
            shutdown(hi)
        });

        if let Some(p) = panic_slot.into_inner().expect("no poisoned locks") {
            std::panic::resume_unwind(p);
        }
        if let Some(e) = setup_err.into_inner().expect("no poisoned locks") {
            return Err(e);
        }
        Ok(RunStats {
            attempted: attempted - start,
            failures: failures.into_inner(),
            workers,
        })
    }
}
