//! Work-sharded, deterministic parallel Monte Carlo execution.
//!
//! [`ParallelRunner`] spreads the samples of one Monte Carlo experiment
//! across `std::thread` workers. Three properties shape the design:
//!
//! * **Elaborate once per worker.** Worker state (an elaborated
//!   [`spice::Session`], a bench, a device factory template) is built once
//!   by the `build` closure inside each worker thread — the per-sample fast
//!   path (swap devices, warm-started re-solve) never crosses a thread
//!   boundary. Use [`spice::Session::replicate`] to hand every worker its
//!   own copy of a shared elaboration.
//! * **Thread-count-invariant determinism.** Sample `i` always draws from
//!   [`stats::Sampler::stream`]`(i)` of the runner's base sampler — a pure
//!   function of `(seed, i)` — and work is handed out by index from a
//!   shared counter. Whichever worker happens to execute a sample, it
//!   computes bit-identical results; 1, 2, or 64 workers produce the same
//!   sample set. Merged moments reported by [`McOutcome::moments`] are
//!   accumulated in sample-index order, so they are bit-identical too.
//!
//!   The guarantee is as strong as the sample closure is pure: if a sample
//!   reads mutable worker state whose value depends on scheduling history —
//!   the classic case is a warm-started Newton solve seeded by whichever
//!   sample the worker ran previously — its result can drift in the last
//!   floating-point bits while remaining statistically identical (the
//!   mismatch draws are exactly the same devices). Call
//!   [`spice::Session::invalidate_warm_start`] per sample when bit-exact
//!   reproducibility matters more than the warm-start speedup.
//! * **Streaming aggregation with optional early stopping.** Workers write
//!   results into per-sample slots; the coordinating thread folds them into
//!   a [`Welford`] accumulator at deterministic round boundaries and can
//!   stop the run once the confidence interval on the mean is tight enough
//!   ([`EarlyStop`]). Because rounds are fixed multiples of
//!   [`ParallelRunner::check_every`] samples (independent of the worker
//!   count), the stopping sample count is deterministic as well.
//!
//! # Example
//!
//! ```
//! use vscore::mc::ParallelRunner;
//!
//! // Estimate E[X^2] for X ~ N(0,1): worker state is trivial (unit), the
//! // per-sample closure gets a deterministically derived sampler.
//! let runner = ParallelRunner::new(7).workers(2);
//! let out = runner
//!     .run_scalar(
//!         400,
//!         |_worker, _sampler| Ok::<(), std::convert::Infallible>(()),
//!         |(), sampler, _i| {
//!             let x = sampler.standard_normal();
//!             Ok(x * x)
//!         },
//!     )
//!     .unwrap();
//! let moments = out.moments();
//! assert_eq!(moments.count(), 400);
//! assert!((moments.mean() - 1.0).abs() < 0.2);
//! // Same seed, different worker count: bit-identical outcome.
//! let again = ParallelRunner::new(7)
//!     .workers(1)
//!     .run_scalar(
//!         400,
//!         |_, _| Ok::<(), std::convert::Infallible>(()),
//!         |(), s, _| {
//!             let x = s.standard_normal();
//!             Ok(x * x)
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(moments.mean(), again.moments().mean());
//! ```

use stats::{Sampler, Welford};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Sentinel `limit` value signalling workers to shut down.
const SHUTDOWN: usize = usize::MAX;
/// Salt separating worker-setup streams from per-sample streams.
const WORKER_STREAM_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Confidence-interval stopping rule for [`ParallelRunner::run_scalar`].
///
/// The run ends at the first round boundary where at least `min_samples`
/// samples have succeeded and the `z`-scaled half-width of the confidence
/// interval on the mean is below `rel_half_width · |mean|`. A mean of zero
/// never satisfies the relative criterion; use an absolute transform of the
/// metric if that can occur.
#[derive(Debug, Clone, Copy)]
pub struct EarlyStop {
    /// Target half-width of the CI, relative to the absolute mean.
    pub rel_half_width: f64,
    /// Normal quantile of the interval (1.96 ~ 95%).
    pub z: f64,
    /// Minimum number of successful samples before stopping is considered.
    pub min_samples: usize,
}

impl EarlyStop {
    /// A 95% (`z = 1.96`) rule with the given relative half-width and a
    /// 64-sample floor.
    #[must_use]
    pub fn relative(rel_half_width: f64) -> Self {
        EarlyStop {
            rel_half_width,
            z: 1.96,
            min_samples: 64,
        }
    }

    /// Overrides the minimum sample count.
    #[must_use]
    pub fn min_samples(mut self, n: usize) -> Self {
        self.min_samples = n;
        self
    }

    /// Overrides the normal quantile.
    #[must_use]
    pub fn z(mut self, z: f64) -> Self {
        self.z = z;
        self
    }
}

/// Outcome of a parallel Monte Carlo run.
///
/// Successful samples are stored as `(index, value)` pairs sorted by sample
/// index; failed samples (the `sample` closure returned `Err`) are counted
/// in `failures` and omitted, matching the skip-and-count convention of the
/// sequential experiment loops.
#[derive(Debug, Clone)]
pub struct McOutcome<T> {
    samples: Vec<(usize, T)>,
    /// Samples whose closure returned an error (functional failures under
    /// extreme mismatch, non-convergence, ...).
    pub failures: usize,
    /// Number of sample indices actually scheduled — equals the requested
    /// count unless an [`EarlyStop`] rule ended the run sooner.
    pub attempted: usize,
    /// Worker threads the run executed on.
    pub workers: usize,
}

impl<T> McOutcome<T> {
    /// Number of successful samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no sample succeeded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `(sample index, value)` pairs, ascending by index.
    #[must_use]
    pub fn samples(&self) -> &[(usize, T)] {
        &self.samples
    }

    /// Successful sample values in index order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.samples.iter().map(|(_, t)| t)
    }

    /// Consumes the outcome into the values in index order.
    #[must_use]
    pub fn into_values(self) -> Vec<T> {
        self.samples.into_iter().map(|(_, t)| t).collect()
    }
}

impl McOutcome<f64> {
    /// Streaming moments of the successful samples, accumulated in sample-
    /// index order — bit-identical for any worker count.
    #[must_use]
    pub fn moments(&self) -> Welford {
        let mut w = Welford::new();
        for (_, x) in &self.samples {
            w.push(*x);
        }
        w
    }
}

/// A deterministic, work-sharded Monte Carlo executor.
///
/// See the [module docs](self) for the determinism contract and a runnable
/// example. Construct with [`ParallelRunner::new`] (worker count defaults
/// to the machine's available parallelism) and adjust with the builder
/// methods.
#[derive(Debug, Clone)]
pub struct ParallelRunner {
    workers: usize,
    seed: u64,
    early_stop: Option<EarlyStop>,
    check_every: usize,
}

impl ParallelRunner {
    /// A runner using every available hardware thread.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let workers = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        ParallelRunner {
            workers,
            seed,
            early_stop: None,
            check_every: 256,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Configured worker count.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Enables confidence-interval early stopping for
    /// [`ParallelRunner::run_scalar`].
    #[must_use]
    pub fn early_stop(mut self, stop: EarlyStop) -> Self {
        self.early_stop = Some(stop);
        self
    }

    /// Sets the round granularity: the stopping rule is evaluated every
    /// `n` samples (clamped to at least 1). Rounds are independent of the
    /// worker count, keeping early-stopped runs deterministic.
    #[must_use]
    pub fn check_every(mut self, n: usize) -> Self {
        self.check_every = n.max(1);
        self
    }

    /// Runs `n` samples of a generic-valued experiment.
    ///
    /// `build(worker_id, sampler)` constructs each worker's private state
    /// inside its thread (elaborated sessions, benches, factory templates);
    /// the sampler it receives is derived per worker and is *not* part of
    /// the per-sample determinism contract — anything drawn from it must be
    /// overwritten per sample (as device-swapping benches do).
    ///
    /// `sample(state, sampler, i)` computes sample `i` with a sampler
    /// stream derived purely from the runner seed and `i`. An `Err` return
    /// marks that sample failed and is counted, not propagated.
    ///
    /// Early stopping does not apply (there is no scalar metric to watch);
    /// use [`ParallelRunner::run_scalar`] for that.
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error.
    pub fn run<W, T, E, B, S>(&self, n: usize, build: B, sample: S) -> Result<McOutcome<T>, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
    {
        self.run_impl(n, build, sample, None)
    }

    /// [`ParallelRunner::run`] for scalar metrics, with the configured
    /// [`EarlyStop`] rule applied at round boundaries. Moments of the
    /// outcome come from [`McOutcome::moments`].
    ///
    /// # Errors
    ///
    /// Propagates the first worker-state `build` error.
    pub fn run_scalar<W, E, B, S>(&self, n: usize, build: B, sample: S) -> Result<McOutcome<f64>, E>
    where
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<f64, E> + Sync,
    {
        self.run_impl(n, build, sample, Some(&|x: &f64| *x))
    }

    /// The sharded execution engine shared by `run` and `run_scalar`.
    fn run_impl<W, T, E, B, S>(
        &self,
        n: usize,
        build: B,
        sample: S,
        metric: Option<&dyn Fn(&T) -> f64>,
    ) -> Result<McOutcome<T>, E>
    where
        T: Send,
        E: Send,
        B: Fn(usize, &mut Sampler) -> Result<W, E> + Sync,
        S: Fn(&mut W, &mut Sampler, usize) -> Result<T, E> + Sync,
    {
        let workers = self.workers.min(n.max(1));
        if n == 0 {
            return Ok(McOutcome {
                samples: Vec::new(),
                failures: 0,
                attempted: 0,
                workers,
            });
        }

        // Two deterministic stream families: one per sample index (the
        // determinism contract), one per worker id (setup-only draws).
        let mut root = Sampler::from_seed(self.seed);
        let sample_base = root.fork(0);
        let worker_base = root.fork(WORKER_STREAM_SALT);

        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let results = Mutex::new(slots);
        let failures = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        let limit = AtomicUsize::new(0);
        // Workers + the coordinating thread.
        let barrier = Barrier::new(workers + 1);
        let setup_err: Mutex<Option<E>> = Mutex::new(None);

        // A panic inside a user closure must not strand the other threads
        // at a barrier (std barriers do not poison): the unwinding worker
        // catches the payload, parks itself as idle, and keeps honouring
        // the barrier protocol; the coordinator shuts the run down and
        // re-raises the panic after the scope joins.
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let store_panic = |p: Box<dyn std::any::Any + Send>| {
            let mut slot = panic_slot.lock().expect("no poisoned locks");
            if slot.is_none() {
                *slot = Some(p);
            }
        };

        let round = match (self.early_stop, metric.is_some()) {
            (Some(_), true) => self.check_every,
            _ => n,
        };

        let attempted = std::thread::scope(|scope| {
            for worker_id in 0..workers {
                let (build, sample) = (&build, &sample);
                let (results, failures) = (&results, &failures);
                let (next, limit, barrier) = (&next, &limit, &barrier);
                let (setup_err, store_panic) = (&setup_err, &store_panic);
                let (sample_base, worker_base) = (&sample_base, &worker_base);
                scope.spawn(move || {
                    let mut wsampler = worker_base.stream(worker_id as u64);
                    let built = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        build(worker_id, &mut wsampler)
                    }));
                    let mut state = match built {
                        Ok(Ok(w)) => Some(w),
                        Ok(Err(e)) => {
                            let mut slot = setup_err.lock().expect("no poisoned locks");
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                            None
                        }
                        Err(p) => {
                            store_panic(p);
                            None
                        }
                    };
                    barrier.wait(); // setup complete
                    loop {
                        barrier.wait(); // round start
                        let hi = limit.load(Ordering::SeqCst);
                        if hi == SHUTDOWN {
                            return;
                        }
                        let mut poisoned = false;
                        if let Some(st) = state.as_mut() {
                            // Bounded pop: never overshoots `hi`, so round
                            // boundaries lose no sample indices.
                            while let Ok(i) =
                                next.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |i| {
                                    (i < hi).then_some(i + 1)
                                })
                            {
                                let mut s = sample_base.stream(i as u64);
                                let r =
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        sample(st, &mut s, i)
                                    }));
                                match r {
                                    Ok(Ok(t)) => {
                                        results.lock().expect("no poisoned locks")[i] = Some(t);
                                    }
                                    Ok(Err(_)) => {
                                        failures.fetch_add(1, Ordering::SeqCst);
                                    }
                                    Err(p) => {
                                        store_panic(p);
                                        poisoned = true;
                                        break;
                                    }
                                }
                            }
                        }
                        if poisoned {
                            // The state may be mid-mutation; retire it and
                            // idle through the remaining barriers.
                            state = None;
                        }
                        barrier.wait(); // round end
                    }
                });
            }

            // ---- coordinator ------------------------------------------------
            let shutdown = |hi: usize| {
                limit.store(SHUTDOWN, Ordering::SeqCst);
                barrier.wait();
                hi
            };
            barrier.wait(); // setup complete
            if setup_err.lock().expect("no poisoned locks").is_some()
                || panic_slot.lock().expect("no poisoned locks").is_some()
            {
                return shutdown(0);
            }
            let mut hi = 0;
            // Early-stop accumulator: samples below a finished round's
            // limit never change, so each slot is folded exactly once, in
            // index order — bit-identical to a from-scratch refold, but
            // O(round) per check instead of O(hi).
            let mut watched = Welford::new();
            let mut folded_to = 0;
            while hi < n {
                hi = (hi + round).min(n);
                limit.store(hi, Ordering::SeqCst);
                barrier.wait(); // round start
                barrier.wait(); // round end: all samples < hi are final
                if panic_slot.lock().expect("no poisoned locks").is_some() {
                    return shutdown(hi);
                }
                if hi < n {
                    if let (Some(stop), Some(metric)) = (self.early_stop, metric) {
                        let res = results.lock().expect("no poisoned locks");
                        for t in res[folded_to..hi].iter().flatten() {
                            watched.push(metric(t));
                        }
                        folded_to = hi;
                        if watched.count() >= stop.min_samples as u64
                            && watched.ci_half_width(stop.z)
                                <= stop.rel_half_width * watched.mean().abs()
                        {
                            break;
                        }
                    }
                }
            }
            shutdown(hi)
        });

        if let Some(p) = panic_slot.into_inner().expect("no poisoned locks") {
            std::panic::resume_unwind(p);
        }
        if let Some(e) = setup_err.into_inner().expect("no poisoned locks") {
            return Err(e);
        }
        let samples = results
            .into_inner()
            .expect("no poisoned locks")
            .into_iter()
            .enumerate()
            .filter_map(|(i, t)| t.map(|t| (i, t)))
            .collect();
        Ok(McOutcome {
            samples,
            failures: failures.into_inner(),
            attempted,
            workers,
        })
    }
}
