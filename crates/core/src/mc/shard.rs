//! Shard planning for fleet-partitioned Monte Carlo runs.
//!
//! A fleet coordinator splits one experiment's sample index space
//! `0..total` into contiguous, disjoint shards and hands each shard to a
//! worker as a `(seed, offset, len)` job. Because every sample is a pure
//! function of `(seed, index)` (see
//! [`ParallelRunner::run_streaming_range`](super::ParallelRunner::run_streaming_range)),
//! *any* disjoint covering plan produces the same merged result — the
//! planner here just picks the balanced one, and [`Shard`] is the identity
//! a coordinator dedupes re-issued work by.

/// One contiguous shard of a sample index space: the half-open index
/// range `offset..offset + len`.
///
/// `Shard` is `Ord` by `(offset, len)` so a coordinator can merge shard
/// results in a deterministic order regardless of which worker finished
/// first — what makes the merged state independent of retry orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Shard {
    /// First sample index of the shard.
    pub offset: usize,
    /// Number of samples in the shard; planners never emit 0.
    pub len: usize,
}

impl Shard {
    /// The first index past the shard.
    #[must_use]
    pub fn end(self) -> usize {
        self.offset + self.len
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.offset, self.end())
    }
}

/// Splits `0..total` into at most `count` contiguous disjoint shards of
/// near-equal length (lengths differ by at most one; longer shards come
/// first). Returns fewer than `count` shards when `total < count` —
/// zero-length shards are never emitted, because a zero-length shard is
/// not a job. Deterministic in its inputs.
///
/// ```
/// use vscore::mc::plan_shards;
///
/// let plan = plan_shards(10, 3);
/// assert_eq!(
///     plan.iter().map(|s| (s.offset, s.len)).collect::<Vec<_>>(),
///     vec![(0, 4), (4, 3), (7, 3)]
/// );
/// ```
#[must_use]
pub fn plan_shards(total: usize, count: usize) -> Vec<Shard> {
    if total == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(total);
    let base = total / count;
    let extra = total % count;
    let mut plan = Vec::with_capacity(count);
    let mut offset = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        plan.push(Shard { offset, len });
        offset += len;
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plan must tile `0..total` exactly: disjoint, covering, in order.
    fn assert_tiles(plan: &[Shard], total: usize) {
        let mut next = 0;
        for s in plan {
            assert_eq!(s.offset, next, "gap or overlap at {s}");
            assert!(s.len > 0, "zero-length shard {s}");
            next = s.end();
        }
        assert_eq!(next, total, "plan does not cover 0..{total}");
    }

    #[test]
    fn plans_tile_the_index_space() {
        for total in [1, 2, 7, 100, 101, 12_000] {
            for count in [1, 2, 3, 7, 64] {
                let plan = plan_shards(total, count);
                assert_tiles(&plan, total);
                assert_eq!(plan.len(), count.min(total));
                let (lo, hi) = plan.iter().fold((usize::MAX, 0), |(lo, hi), s| {
                    (lo.min(s.len), hi.max(s.len))
                });
                assert!(hi - lo <= 1, "unbalanced plan for {total}/{count}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(plan_shards(0, 4).is_empty());
        assert!(plan_shards(10, 0).is_empty());
    }

    #[test]
    fn shards_order_by_offset_for_deterministic_merges() {
        let mut shards = [
            Shard { offset: 8, len: 2 },
            Shard { offset: 0, len: 4 },
            Shard { offset: 4, len: 4 },
        ];
        shards.sort();
        assert_eq!(shards[0].offset, 0);
        assert_eq!(shards[2].offset, 8);
    }
}
