//! Shard planning for fleet-partitioned Monte Carlo runs.
//!
//! A fleet coordinator splits one experiment's sample index space
//! `0..total` into contiguous, disjoint shards and hands each shard to a
//! worker as a `(seed, offset, len)` job. Because every sample is a pure
//! function of `(seed, index)` (see
//! [`ParallelRunner::run_streaming_range`](super::ParallelRunner::run_streaming_range)),
//! *any* disjoint covering plan produces the same merged result — the
//! planner here just picks the balanced one, and [`Shard`] is the identity
//! a coordinator dedupes re-issued work by.
//!
//! [`plan_batches`] is the second-level tiling: within one shard, a
//! batch-capable executor
//! ([`ParallelRunner::run_streaming_batched`](super::ParallelRunner::run_streaming_batched))
//! claims fixed-width lane groups, and the last group must carry exactly
//! the remaining indices — the classic tail-batch hazard (dropping or
//! padding the tail) is ruled out by construction and pinned by the
//! regression tests here.

/// One contiguous shard of a sample index space: the half-open index
/// range `offset..offset + len`.
///
/// `Shard` is `Ord` by `(offset, len)` so a coordinator can merge shard
/// results in a deterministic order regardless of which worker finished
/// first — what makes the merged state independent of retry orderings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Shard {
    /// First sample index of the shard.
    pub offset: usize,
    /// Number of samples in the shard; planners never emit 0.
    pub len: usize,
}

impl Shard {
    /// The first index past the shard.
    #[must_use]
    pub fn end(self) -> usize {
        self.offset + self.len
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.offset, self.end())
    }
}

/// Splits `0..total` into at most `count` contiguous disjoint shards of
/// near-equal length (lengths differ by at most one; longer shards come
/// first). Returns fewer than `count` shards when `total < count` —
/// zero-length shards are never emitted, because a zero-length shard is
/// not a job. Deterministic in its inputs.
///
/// ```
/// use vscore::mc::plan_shards;
///
/// let plan = plan_shards(10, 3);
/// assert_eq!(
///     plan.iter().map(|s| (s.offset, s.len)).collect::<Vec<_>>(),
///     vec![(0, 4), (4, 3), (7, 3)]
/// );
/// ```
#[must_use]
pub fn plan_shards(total: usize, count: usize) -> Vec<Shard> {
    if total == 0 || count == 0 {
        return Vec::new();
    }
    let count = count.min(total);
    let base = total / count;
    let extra = total % count;
    let mut plan = Vec::with_capacity(count);
    let mut offset = 0;
    for i in 0..count {
        let len = base + usize::from(i < extra);
        plan.push(Shard { offset, len });
        offset += len;
    }
    plan
}

/// Rejected [`plan_batches`] requests — caller bugs surfaced as typed
/// errors rather than panics, so a fleet coordinator can refuse a bad job
/// spec and keep serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPlanError {
    /// The lane count was zero; a batch holds at least one lane.
    ZeroLanes,
    /// `offset + len` does not fit the sample index space (`usize::MAX` is
    /// reserved as the executor's shutdown sentinel).
    RangeOverflow {
        /// First index of the rejected range.
        offset: usize,
        /// Length of the rejected range.
        len: usize,
    },
}

impl std::fmt::Display for BatchPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchPlanError::ZeroLanes => {
                write!(f, "batch plan requires at least one lane (lanes = 0)")
            }
            BatchPlanError::RangeOverflow { offset, len } => write!(
                f,
                "batch range {offset} + {len} overflows the sample index space"
            ),
        }
    }
}

impl std::error::Error for BatchPlanError {}

/// Tiles the shard `offset..offset + len` into consecutive batches of
/// `lanes` samples — the chunks a batched executor claims. Every batch is
/// full-width except possibly the last, which holds **exactly** the
/// remaining indices: whatever the relation of `len` to `lanes`, no sample
/// index is dropped and none is executed twice.
///
/// ```
/// use vscore::mc::plan_batches;
///
/// // A 10-sample shard at offset 4, 4 lanes wide: two full batches and
/// // a 2-lane tail.
/// let plan = plan_batches(4, 10, 4).unwrap();
/// assert_eq!(
///     plan.iter().map(|b| (b.offset, b.len)).collect::<Vec<_>>(),
///     vec![(4, 4), (8, 4), (12, 2)]
/// );
/// ```
///
/// # Errors
///
/// [`BatchPlanError::ZeroLanes`] when `lanes` is zero;
/// [`BatchPlanError::RangeOverflow`] when `offset + len` overflows or
/// reaches `usize::MAX`.
pub fn plan_batches(offset: usize, len: usize, lanes: usize) -> Result<Vec<Shard>, BatchPlanError> {
    if lanes == 0 {
        return Err(BatchPlanError::ZeroLanes);
    }
    let end = match offset.checked_add(len) {
        Some(end) if end < usize::MAX => end,
        _ => return Err(BatchPlanError::RangeOverflow { offset, len }),
    };
    let mut plan = Vec::with_capacity(len.div_ceil(lanes));
    let mut at = offset;
    while at < end {
        let len = lanes.min(end - at);
        plan.push(Shard { offset: at, len });
        at += len;
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plan must tile `0..total` exactly: disjoint, covering, in order.
    fn assert_tiles(plan: &[Shard], total: usize) {
        let mut next = 0;
        for s in plan {
            assert_eq!(s.offset, next, "gap or overlap at {s}");
            assert!(s.len > 0, "zero-length shard {s}");
            next = s.end();
        }
        assert_eq!(next, total, "plan does not cover 0..{total}");
    }

    #[test]
    fn plans_tile_the_index_space() {
        for total in [1, 2, 7, 100, 101, 12_000] {
            for count in [1, 2, 3, 7, 64] {
                let plan = plan_shards(total, count);
                assert_tiles(&plan, total);
                assert_eq!(plan.len(), count.min(total));
                let (lo, hi) = plan.iter().fold((usize::MAX, 0), |(lo, hi), s| {
                    (lo.min(s.len), hi.max(s.len))
                });
                assert!(hi - lo <= 1, "unbalanced plan for {total}/{count}");
            }
        }
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        assert!(plan_shards(0, 4).is_empty());
        assert!(plan_shards(10, 0).is_empty());
    }

    /// The tail-batch regression: a batch plan must execute exactly the
    /// shard's indices — full-width batches plus one exact-remainder tail,
    /// never a dropped, padded, or duplicated index.
    #[test]
    fn batch_plans_tile_the_shard_exactly() {
        for offset in [0, 3, 1000] {
            for len in [0, 1, 7, 8, 9, 255, 256, 257, 1000] {
                for lanes in [1, 4, 8, 13] {
                    let plan = plan_batches(offset, len, lanes).unwrap();
                    let mut next = offset;
                    for b in &plan {
                        assert_eq!(b.offset, next, "gap or overlap at {b}");
                        assert!(b.len > 0 && b.len <= lanes, "bad width {b}");
                        next = b.end();
                    }
                    assert_eq!(next, offset + len, "tail indices dropped for {len}/{lanes}");
                    // Only the final batch may be partial.
                    for b in plan.iter().rev().skip(1) {
                        assert_eq!(b.len, lanes, "non-tail partial batch {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn batch_plan_rejects_degenerate_requests() {
        assert_eq!(plan_batches(0, 10, 0), Err(BatchPlanError::ZeroLanes));
        assert_eq!(
            plan_batches(usize::MAX - 1, 2, 4),
            Err(BatchPlanError::RangeOverflow {
                offset: usize::MAX - 1,
                len: 2
            })
        );
        // `usize::MAX` itself is reserved as the shutdown sentinel.
        assert_eq!(
            plan_batches(usize::MAX - 1, 1, 4),
            Err(BatchPlanError::RangeOverflow {
                offset: usize::MAX - 1,
                len: 1
            })
        );
        assert!(plan_batches(5, 0, 4).unwrap().is_empty());
    }

    #[test]
    fn shards_order_by_offset_for_deterministic_merges() {
        let mut shards = [
            Shard { offset: 8, len: 2 },
            Shard { offset: 0, len: 4 },
            Shard { offset: 4, len: 4 },
        ];
        shards.sort();
        assert_eq!(shards[0].offset, 0);
        assert_eq!(shards[2].offset, 8);
    }
}
