//! Monte Carlo engines.
//!
//! Two levels, mirroring the paper's validation:
//!
//! * **Device level** — sample mismatch, evaluate the electrical metrics
//!   (Table III, Figs. 3-4).
//! * **Circuit level** — [`McFactory`] implements
//!   [`circuits::DeviceFactory`], drawing an independent
//!   [`mosfet::VariationDelta`] per transistor instance so that benchmark
//!   netlists (INV, NAND2, DFF, SRAM) see uncorrelated within-die mismatch
//!   (Figs. 5-9).
//!
//! Either level shards across threads with [`ParallelRunner`] (see
//! [`parallel`]): each worker owns its elaborated sessions, each sample
//! draws from a stream derived purely from `(seed, sample index)`, and the
//! outcome is bit-identical for any worker count. Results either buffer
//! into an [`McOutcome`] or stream to a [`Sink`] (quantile sketch,
//! histogram, incremental CSV, live moments) via
//! [`ParallelRunner::run_streaming`], which holds O(workers) sample memory
//! however long the run. Beyond one process,
//! [`ParallelRunner::run_streaming_range`] executes a disjoint shard of
//! the index space, and [`ParallelRunner::run_streaming_batched`] hands
//! batch-capable workers K consecutive indices per claim (tiled as
//! [`plan_batches`] describes) for K-lane hot paths like
//! `spice::Session::dc_batch`, so independent processes/machines combine
//! their
//! [`MergeableSink`] sketches ([`TDigest`], [`Histogram`],
//! [`WelfordSink`]) afterwards. `ARCHITECTURE.md` at the repo root
//! diagrams the data flow.
//!
//! # Example
//!
//! A parallel device-level variance estimate (the circuit-level loops in
//! `vsbench` follow the same shape with benches as worker state):
//!
//! ```
//! use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
//! use vscore::mc::ParallelRunner;
//! use vscore::metrics::DeviceMetrics;
//! use vscore::sensitivity::{VariedModel, VsBuilder};
//!
//! let builder = VsBuilder {
//!     params: VsParams::nmos_40nm(),
//!     polarity: Polarity::Nmos,
//!     geom: Geometry::from_nm(600.0, 40.0),
//! };
//! let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
//! let out = ParallelRunner::new(42)
//!     .workers(2)
//!     .run_scalar(
//!         64,
//!         |_w, _s| Ok::<(), std::convert::Infallible>(()),
//!         |(), sampler, _i| {
//!             let delta = spec.sample(builder.geometry(), || sampler.standard_normal());
//!             Ok(DeviceMetrics::evaluate(builder.build(delta).as_ref(), 0.9).idsat)
//!         },
//!     )
//!     .unwrap();
//! assert_eq!(out.moments().count(), 64);
//! assert!(out.moments().std() > 0.0);
//! ```

pub mod manifest;
pub mod parallel;
pub mod shard;

pub use manifest::{Manifest, ManifestEntry, ManifestError};
pub use parallel::{EarlyStop, McOutcome, ParallelRunner, StreamOutcome};
pub use shard::{plan_batches, plan_shards, BatchPlanError, Shard};
// The sink vocabulary consumed by `ParallelRunner::run_streaming`, re-
// exported so Monte Carlo call sites need a single import path.
pub use stats::histogram::Histogram;
pub use stats::importance::{
    ExactSum, GaussianProposal, Statistic, WeightedHistogram, WeightedMoments, WeightedSink,
};
pub use stats::sink::{
    CodecError, CsvSink, MergeableSink, P2Quantiles, Sink, VecSink, WelfordSink, WelfordWatch,
};
pub use stats::tdigest::TDigest;

use crate::metrics::DeviceMetrics;
use crate::sensitivity::VariedModel;
use circuits::cells::DeviceFactory;
use mosfet::{
    bsim::{BsimModel, BsimParams},
    vs::{VsModel, VsParams},
    Geometry, MismatchSpec, MosfetModel, Polarity,
};
use stats::{Sampler, Welford};

/// Draws `n` mismatch samples and evaluates the metrics for each.
pub fn device_metric_samples(
    builder: &dyn VariedModel,
    spec: &MismatchSpec,
    vdd: f64,
    n: usize,
    sampler: &mut Sampler,
) -> Vec<DeviceMetrics> {
    let geom = builder.geometry();
    (0..n)
        .map(|_| {
            let delta = spec.sample(geom, || sampler.standard_normal());
            DeviceMetrics::evaluate(builder.build(delta).as_ref(), vdd)
        })
        .collect()
}

/// Streaming moment accumulators for the three metric columns — one pass
/// over the samples, no per-column buffers.
fn column_moments(samples: &[DeviceMetrics]) -> [Welford; 3] {
    let mut acc = [Welford::new(); 3];
    for s in samples {
        let row = s.as_array();
        for (w, &x) in acc.iter_mut().zip(&row) {
            w.push(x);
        }
    }
    acc
}

/// Sample variances of `[Idsat, log10 Ioff, Cgg]`.
///
/// # Panics
///
/// Panics if `samples` has fewer than 2 entries.
pub fn variances(samples: &[DeviceMetrics]) -> [f64; 3] {
    assert!(samples.len() >= 2, "need at least two samples");
    column_moments(samples).map(|w| w.variance())
}

/// Sample means of `[Idsat, log10 Ioff, Cgg]`.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn means(samples: &[DeviceMetrics]) -> [f64; 3] {
    assert!(!samples.is_empty(), "need at least one sample");
    column_moments(samples).map(|w| w.mean())
}

/// Which model family a factory instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// The statistical Virtual Source model (fitted parameters + extracted
    /// mismatch).
    Vs,
    /// The golden BSIM-like kit (nominal parameters + foundry truth).
    Bsim,
}

/// Where an [`McFactory`]'s standard-normal mismatch draws come from.
///
/// The default is the factory's internal [`Sampler`]. The rare-event
/// engine swaps in the two other sources: per-dimension mean-shifted
/// proposals for importance sampling (accumulating the exact
/// log-likelihood-ratio weight as draws happen), and pinned literal
/// values for derivative probing of the metric surface.
#[derive(Debug, Clone)]
enum DrawMode {
    /// Plain Monte Carlo: each draw is `sampler.standard_normal()`.
    Random,
    /// Importance sampling: draw `k` comes from `N(shifts[k], 1)` via the
    /// factory sampler, and the exact log-weight of the shifted proposal
    /// accumulates into the factory's pending log-weight.
    Shifted(std::sync::Arc<[f64]>),
    /// Deterministic probing: draw `k` *is* `values[k]`, no randomness.
    Pinned(std::sync::Arc<[f64]>),
}

/// A sampling device factory for circuit-level Monte Carlo.
///
/// Every call to [`DeviceFactory::nmos`]/[`DeviceFactory::pmos`] draws an
/// independent mismatch vector — the within-die assumption of the paper.
/// Construct with [`MismatchSpec::default`] (all zeros) for nominal devices.
///
/// For rare-event runs the factory's standard-normal draws can be
/// redirected: [`McFactory::set_proposal_shifts`] turns every subsequent
/// draw into a mean-shifted importance-sampling proposal (with the exact
/// log-likelihood weight accumulated and collected via
/// [`McFactory::take_log_weight`]), and [`McFactory::set_pinned`] replaces
/// draws with literal values for finite-difference probing of a metric
/// surface. [`McFactory::draws_taken`] counts draws in any mode, which is
/// how an experiment discovers the mismatch dimensionality of a bench.
#[derive(Debug, Clone)]
pub struct McFactory {
    family: ModelFamily,
    vs_nmos: VsParams,
    vs_pmos: VsParams,
    bsim_nmos: BsimParams,
    bsim_pmos: BsimParams,
    spec_nmos: MismatchSpec,
    spec_pmos: MismatchSpec,
    sampler: Sampler,
    mode: DrawMode,
    draws: usize,
    log_weight: f64,
}

impl McFactory {
    /// Factory for the statistical VS model.
    pub fn vs(
        nmos: VsParams,
        pmos: VsParams,
        spec_nmos: MismatchSpec,
        spec_pmos: MismatchSpec,
        sampler: Sampler,
    ) -> Self {
        McFactory {
            family: ModelFamily::Vs,
            vs_nmos: nmos,
            vs_pmos: pmos,
            bsim_nmos: BsimParams::nmos_40nm(),
            bsim_pmos: BsimParams::pmos_40nm(),
            spec_nmos,
            spec_pmos,
            sampler,
            mode: DrawMode::Random,
            draws: 0,
            log_weight: 0.0,
        }
    }

    /// Factory for the golden kit.
    pub fn bsim(
        nmos: BsimParams,
        pmos: BsimParams,
        spec_nmos: MismatchSpec,
        spec_pmos: MismatchSpec,
        sampler: Sampler,
    ) -> Self {
        McFactory {
            family: ModelFamily::Bsim,
            vs_nmos: VsParams::nmos_40nm(),
            vs_pmos: VsParams::pmos_40nm(),
            bsim_nmos: nmos,
            bsim_pmos: pmos,
            spec_nmos,
            spec_pmos,
            sampler,
            mode: DrawMode::Random,
            draws: 0,
            log_weight: 0.0,
        }
    }

    /// Reseeds the internal sampler (one seed per Monte Carlo trial keeps
    /// trials independent and reproducible).
    pub fn reseed(&mut self, seed: u64) {
        self.sampler = Sampler::from_seed(seed);
    }

    /// Replaces the internal sampler with an externally derived stream —
    /// the [`ParallelRunner`] path: clone a factory template per worker,
    /// then hand each sample its own [`Sampler::stream`]-derived sampler.
    pub fn set_sampler(&mut self, sampler: Sampler) {
        self.sampler = sampler;
    }

    /// Redirects subsequent standard-normal draws through mean-shifted
    /// unit-variance importance-sampling proposals: draw `k` comes from
    /// `N(shifts[k], 1)`, and the exact log-likelihood-ratio weight of the
    /// shifted proposal accumulates until [`McFactory::take_log_weight`]
    /// collects it. Resets the draw counter and pending log-weight, so the
    /// next device build starts the shift vector from dimension 0.
    ///
    /// The shift vector must cover every draw the bench makes — a draw
    /// beyond `shifts.len()` panics, catching a mismatch between the
    /// fitted shift direction and the bench's actual dimensionality
    /// instead of silently recycling shifts.
    pub fn set_proposal_shifts(&mut self, shifts: std::sync::Arc<[f64]>) {
        assert!(
            shifts.iter().all(|s| s.is_finite()),
            "proposal shifts must be finite"
        );
        self.mode = DrawMode::Shifted(shifts);
        self.draws = 0;
        self.log_weight = 0.0;
    }

    /// Replaces subsequent draws with literal pinned values: draw `k`
    /// returns exactly `values[k]` — no randomness, log-weight stays zero.
    /// This is the finite-difference probe mode: evaluate a bench at a
    /// chosen point of the mismatch space (e.g. `±h·e_k` around nominal)
    /// to estimate the gradient of the metric surface. Resets the draw
    /// counter; draws beyond `values.len()` panic.
    pub fn set_pinned(&mut self, values: std::sync::Arc<[f64]>) {
        assert!(
            values.iter().all(|v| v.is_finite()),
            "pinned draw values must be finite"
        );
        self.mode = DrawMode::Pinned(values);
        self.draws = 0;
        self.log_weight = 0.0;
    }

    /// Restores plain random draws from the internal sampler.
    pub fn clear_draw_mode(&mut self) {
        self.mode = DrawMode::Random;
        self.draws = 0;
        self.log_weight = 0.0;
    }

    /// Collects the log-likelihood-ratio weight accumulated since the last
    /// mode change or collection, and rearms for the next sample: the draw
    /// counter returns to 0 (the shift vector restarts at dimension 0) and
    /// the pending log-weight clears. Always exactly `0.0` in random and
    /// pinned modes and for all-zero shifts — the degenerate IS run *is*
    /// plain MC, to the bit.
    pub fn take_log_weight(&mut self) -> f64 {
        self.draws = 0;
        std::mem::replace(&mut self.log_weight, 0.0)
    }

    /// Standard-normal draws consumed since the last mode change or
    /// [`McFactory::take_log_weight`] — the probe for a bench's mismatch
    /// dimensionality (e.g. one 6T SRAM resample = 6 devices × 5
    /// parameters = 30 draws).
    pub fn draws_taken(&self) -> usize {
        self.draws
    }

    /// One standard-normal-equivalent draw routed through the active
    /// `DrawMode`.
    fn draw(&mut self) -> f64 {
        let k = self.draws;
        self.draws += 1;
        match &self.mode {
            DrawMode::Random => self.sampler.standard_normal(),
            DrawMode::Shifted(shifts) => {
                assert!(
                    k < shifts.len(),
                    "bench drew dimension {k} but the proposal shift vector has {} entries",
                    shifts.len()
                );
                let shift = shifts[k];
                let x = shift + self.sampler.standard_normal();
                // Exact log-likelihood ratio of N(0,1) over N(shift,1):
                // ((x-shift)² - x²)/2 — identically 0.0 for a zero shift,
                // so degenerate IS reduces to plain MC bit-exactly.
                let z = x - shift;
                self.log_weight += 0.5 * (z * z - x * x);
                x
            }
            DrawMode::Pinned(values) => {
                assert!(
                    k < values.len(),
                    "bench drew dimension {k} but only {} pinned values were supplied",
                    values.len()
                );
                values[k]
            }
        }
    }
}

impl DeviceFactory for McFactory {
    fn nmos(&mut self, geom: Geometry) -> Box<dyn MosfetModel> {
        let spec = self.spec_nmos;
        let delta = spec.sample(geom, || self.draw());
        match self.family {
            ModelFamily::Vs => Box::new(VsModel::with_variation(
                self.vs_nmos,
                Polarity::Nmos,
                geom,
                delta,
            )),
            ModelFamily::Bsim => Box::new(BsimModel::with_variation(
                self.bsim_nmos,
                Polarity::Nmos,
                geom,
                delta,
            )),
        }
    }

    fn pmos(&mut self, geom: Geometry) -> Box<dyn MosfetModel> {
        let spec = self.spec_pmos;
        let delta = spec.sample(geom, || self.draw());
        match self.family {
            ModelFamily::Vs => Box::new(VsModel::with_variation(
                self.vs_pmos,
                Polarity::Pmos,
                geom,
                delta,
            )),
            ModelFamily::Bsim => Box::new(BsimModel::with_variation(
                self.bsim_pmos,
                Polarity::Pmos,
                geom,
                delta,
            )),
        }
    }

    fn family(&self) -> &'static str {
        match self.family {
            ModelFamily::Vs => "vs",
            ModelFamily::Bsim => "bsim",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::VsBuilder;

    const VDD: f64 = 0.9;

    #[test]
    fn metric_sampling_statistics_follow_spec() {
        let builder = VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(600.0, 40.0),
        };
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mut sampler = Sampler::from_seed(3);
        let samples = device_metric_samples(&builder, &spec, VDD, 3000, &mut sampler);
        let v = variances(&samples);
        let predicted = crate::bpv::predict_variances(&builder, &spec, VDD);
        // Monte Carlo variance matches linear propagation within ~15%.
        for (mc, lin) in v.iter().zip(&predicted) {
            assert!(
                (mc / lin - 1.0).abs() < 0.2,
                "MC {mc:.3e} vs linear {lin:.3e}"
            );
        }
    }

    #[test]
    fn zero_spec_is_deterministic() {
        let builder = VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(600.0, 40.0),
        };
        let mut sampler = Sampler::from_seed(1);
        let samples =
            device_metric_samples(&builder, &MismatchSpec::default(), VDD, 5, &mut sampler);
        let v = variances(&samples);
        assert!(v.iter().all(|&x| x.abs() < 1e-30));
    }

    #[test]
    fn factory_produces_distinct_devices() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mut f = McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(11),
        );
        let g = Geometry::from_nm(300.0, 40.0);
        let a = f.nmos(g);
        let b = f.nmos(g);
        let bias = mosfet::Bias {
            vgs: VDD,
            vds: VDD,
            vbs: 0.0,
        };
        assert_ne!(a.ids(bias), b.ids(bias), "instances must be independent");
        assert_eq!(f.family(), "vs");
    }

    #[test]
    fn reseeded_factories_reproduce() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mk = || {
            McFactory::bsim(
                BsimParams::nmos_40nm(),
                BsimParams::pmos_40nm(),
                spec,
                spec,
                Sampler::from_seed(42),
            )
        };
        let g = Geometry::from_nm(300.0, 40.0);
        let bias = mosfet::Bias {
            vgs: VDD,
            vds: VDD,
            vbs: 0.0,
        };
        let mut f1 = mk();
        let mut f2 = mk();
        assert_eq!(f1.nmos(g).ids(bias), f2.nmos(g).ids(bias));
        assert_eq!(f1.family(), "bsim");
    }

    #[test]
    fn zero_shift_proposal_draws_are_bit_identical_to_plain_mc() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mk = || {
            McFactory::vs(
                VsParams::nmos_40nm(),
                VsParams::pmos_40nm(),
                spec,
                spec,
                Sampler::from_seed(77),
            )
        };
        let g = Geometry::from_nm(300.0, 40.0);
        let bias = mosfet::Bias {
            vgs: VDD,
            vds: VDD,
            vbs: 0.0,
        };
        let mut plain = mk();
        let mut shifted = mk();
        shifted.set_proposal_shifts(std::sync::Arc::from(vec![0.0; 10]));
        let a = plain.nmos(g).ids(bias);
        let b = shifted.nmos(g).ids(bias);
        assert_eq!(a.to_bits(), b.to_bits(), "degenerate IS must be plain MC");
        assert_eq!(shifted.draws_taken(), 5, "one device = 5 mismatch draws");
        assert_eq!(shifted.take_log_weight().to_bits(), 0.0f64.to_bits());
        assert_eq!(shifted.draws_taken(), 0, "collection rearms the counter");
    }

    #[test]
    fn shifted_draws_accumulate_the_exact_log_weight() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mut f = McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(5),
        );
        let shifts: Vec<f64> = vec![1.5, -0.5, 0.0, 2.0, 0.25];
        // Reconstruct the expected weight from the same normal stream.
        let mut ref_sampler = Sampler::from_seed(5);
        let mut want = 0.0;
        for &b in &shifts {
            let x = b + ref_sampler.standard_normal();
            want += 0.5 * ((x - b) * (x - b) - x * x);
        }
        f.set_proposal_shifts(std::sync::Arc::from(shifts));
        let _ = f.nmos(Geometry::from_nm(300.0, 40.0));
        assert_eq!(f.take_log_weight().to_bits(), want.to_bits());
        // Second collection without new draws is exactly zero.
        assert_eq!(f.take_log_weight(), 0.0);
    }

    #[test]
    fn pinned_draws_are_deterministic_probes() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mut f = McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(1),
        );
        let g = Geometry::from_nm(300.0, 40.0);
        let bias = mosfet::Bias {
            vgs: VDD,
            vds: VDD,
            vbs: 0.0,
        };
        f.set_pinned(std::sync::Arc::from(vec![0.0; 5]));
        let nominal = f.nmos(g).ids(bias);
        f.set_pinned(std::sync::Arc::from(vec![0.0; 5]));
        let again = f.nmos(g).ids(bias);
        assert_eq!(nominal.to_bits(), again.to_bits(), "pinned probes repeat");
        assert_eq!(f.take_log_weight(), 0.0, "probing carries no weight");
        // A Vt0 perturbation moves the current; random draws resume after.
        f.set_pinned(std::sync::Arc::from(vec![3.0, 0.0, 0.0, 0.0, 0.0]));
        let perturbed = f.nmos(g).ids(bias);
        assert_ne!(nominal, perturbed);
        f.clear_draw_mode();
        let random = f.nmos(g).ids(bias);
        assert_ne!(random, nominal);
    }

    #[test]
    #[should_panic(expected = "pinned values were supplied")]
    fn exhausting_pinned_values_panics() {
        let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
        let mut f = McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(1),
        );
        f.set_pinned(std::sync::Arc::from(vec![0.0; 4])); // one draw short
        let _ = f.nmos(Geometry::from_nm(300.0, 40.0));
    }

    #[test]
    fn means_and_variances_have_matching_shapes() {
        let builder = VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(300.0, 40.0),
        };
        let mut sampler = Sampler::from_seed(2);
        let samples = device_metric_samples(
            &builder,
            &MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29),
            VDD,
            100,
            &mut sampler,
        );
        let m = means(&samples);
        assert!(m[0] > 0.0 && m[1] < 0.0 && m[2] > 0.0);
    }
}
