//! The shard manifest: a crash-tolerant journal of completed shards, so
//! an interrupted campaign resumes from durable results instead of
//! recomputing them.
//!
//! A manifest is a [`stats::artifact`] **journal** (unsealed — no footer,
//! torn trailing appends tolerated) with two section kinds:
//!
//! * one leading **binding** section (tag `'B'`) carrying opaque bytes
//!   that identify the campaign — the coordinator passes a canonical
//!   encoding of circuit/analysis/seed/total/sink config. Opening a
//!   manifest with different binding bytes fails with
//!   [`CodecError::Mismatch`], so results from one campaign can never be
//!   resumed into another.
//! * zero or more **entry** sections (tag `'C'`), one appended (and
//!   fsynced) per completed shard: the shard's `(offset, len)`, the
//!   FNV-1a 64 digest of the shard artifact's file bytes, and the
//!   artifact's file name. On resume the digest lets the reader reject a
//!   shard whose artifact was corrupted after the manifest recorded it.
//!
//! Because every sample is a pure function of `(seed, index)`, a resumed
//! campaign that trusts these entries and recomputes only the missing
//! shards merges to *bit-identical* sketch bytes — the e2e suite pins
//! this.

use stats::artifact::{frame_section, header_bytes, Journal};
use stats::codec::{self, CodecError, Reader};
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// Section tag for the campaign binding.
pub const BINDING_TAG: u8 = b'B';
/// Section tag for a completed-shard entry.
pub const ENTRY_TAG: u8 = b'C';

/// Why a manifest could not be created, opened, or appended to.
#[derive(Debug)]
pub enum ManifestError {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// The manifest bytes are corrupt, from a different campaign, or from
    /// a format this build does not understand.
    Codec(CodecError),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Io(e) => write!(f, "manifest i/o error: {e}"),
            ManifestError::Codec(e) => write!(f, "manifest decode error: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<std::io::Error> for ManifestError {
    fn from(e: std::io::Error) -> Self {
        ManifestError::Io(e)
    }
}

impl From<CodecError> for ManifestError {
    fn from(e: CodecError) -> Self {
        ManifestError::Codec(e)
    }
}

/// One completed shard on durable storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// First sample index of the shard.
    pub offset: usize,
    /// Number of samples in the shard.
    pub len: usize,
    /// FNV-1a 64 digest of the shard artifact's complete file bytes.
    pub digest: u64,
    /// File name of the shard artifact, relative to the manifest's
    /// directory.
    pub artifact: String,
}

impl ManifestEntry {
    fn to_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        codec::put_header(&mut out, ENTRY_TAG);
        codec::put_u64(&mut out, self.offset as u64);
        codec::put_u64(&mut out, self.len as u64);
        codec::put_u64(&mut out, self.digest);
        codec::put_bytes(&mut out, self.artifact.as_bytes());
        out
    }

    fn from_payload(payload: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::with_header(payload, ENTRY_TAG)?;
        let offset = r.take_u64()? as usize;
        let len = r.take_u64()? as usize;
        let digest = r.take_u64()?;
        let name = r.take_bytes()?;
        r.finish()?;
        let artifact = String::from_utf8(name)
            .map_err(|_| CodecError::Invalid("manifest artifact name is not UTF-8"))?;
        Ok(ManifestEntry {
            offset,
            len,
            digest,
            artifact,
        })
    }
}

fn binding_payload(binding: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_header(&mut out, BINDING_TAG);
    codec::put_bytes(&mut out, binding);
    out
}

fn binding_from_payload(payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut r = Reader::with_header(payload, BINDING_TAG)?;
    let bytes = r.take_bytes()?;
    r.finish()?;
    Ok(bytes)
}

/// An open shard manifest: the decoded entries plus the append handle.
#[derive(Debug)]
pub struct Manifest {
    file: File,
    entries: Vec<ManifestEntry>,
    torn: bool,
}

impl Manifest {
    /// Creates a fresh manifest at `path` bound to `binding`, truncating
    /// any existing file.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] if the file cannot be written.
    pub fn create(path: &Path, binding: &[u8]) -> Result<Self, ManifestError> {
        let mut file = File::create(path)?;
        file.write_all(&header_bytes())?;
        file.write_all(&frame_section(&binding_payload(binding)))?;
        file.sync_data()?;
        Ok(Manifest {
            file,
            entries: Vec::new(),
            torn: false,
        })
    }

    /// Opens an existing manifest at `path`, verifying it is bound to
    /// `binding`, and decodes its completed-shard entries. A torn
    /// trailing append (crash mid-record) is discarded and flagged via
    /// [`Manifest::torn`]; mid-file corruption is a hard error.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] on file errors; [`ManifestError::Codec`]
    /// with [`CodecError::Mismatch`] when the binding differs, or any
    /// journal decode error on corruption.
    pub fn open(path: &Path, binding: &[u8]) -> Result<Self, ManifestError> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let journal = Journal::from_bytes(&bytes)?;
        let mut sections = journal.sections.into_iter();
        let first = sections
            .next()
            .ok_or(ManifestError::Codec(CodecError::Truncated))?;
        if binding_from_payload(&first)? != binding {
            return Err(ManifestError::Codec(CodecError::Mismatch(
                "manifest is bound to a different campaign",
            )));
        }
        let entries = sections
            .map(|s| ManifestEntry::from_payload(&s))
            .collect::<Result<Vec<_>, _>>()?;
        // Reopen for appending: if a torn tail was discarded, rewrite the
        // journal to its decoded prefix so the next append lands on a
        // clean section boundary.
        let file = if journal.torn {
            let mut file = File::create(path)?;
            file.write_all(&header_bytes())?;
            file.write_all(&frame_section(&binding_payload(binding)))?;
            for entry in &entries {
                file.write_all(&frame_section(&entry.to_payload()))?;
            }
            file.sync_data()?;
            file
        } else {
            OpenOptions::new().append(true).open(path)?
        };
        Ok(Manifest {
            file,
            entries,
            torn: journal.torn,
        })
    }

    /// Opens `path` if it exists (verifying the binding), otherwise
    /// creates it.
    ///
    /// # Errors
    ///
    /// As [`Manifest::open`] / [`Manifest::create`].
    pub fn open_or_create(path: &Path, binding: &[u8]) -> Result<Self, ManifestError> {
        if path.exists() {
            Manifest::open(path, binding)
        } else {
            Manifest::create(path, binding)
        }
    }

    /// The completed-shard entries decoded at open time plus those
    /// recorded since.
    #[must_use]
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Whether opening discarded a torn trailing append — evidence of a
    /// crash mid-record, already repaired.
    #[must_use]
    pub fn torn(&self) -> bool {
        self.torn
    }

    /// Appends a completed-shard entry and fsyncs it durable before
    /// returning — after this, a crash cannot lose the shard.
    ///
    /// # Errors
    ///
    /// [`ManifestError::Io`] if the append or sync fails.
    pub fn record(&mut self, entry: ManifestEntry) -> Result<(), ManifestError> {
        self.file.write_all(&frame_section(&entry.to_payload()))?;
        self.file.sync_data()?;
        self.entries.push(entry);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("statvs_manifest_{name}_{}", std::process::id()))
    }

    fn entry(offset: usize, len: usize) -> ManifestEntry {
        ManifestEntry {
            offset,
            len,
            digest: 0xdead_beef ^ offset as u64,
            artifact: format!("shard-{offset}-{len}.svaf"),
        }
    }

    #[test]
    fn create_record_reopen_round_trips() {
        let path = temp_path("roundtrip");
        let mut m = Manifest::create(&path, b"campaign-a").unwrap();
        m.record(entry(0, 100)).unwrap();
        m.record(entry(100, 50)).unwrap();
        drop(m);

        let m = Manifest::open(&path, b"campaign-a").unwrap();
        assert_eq!(m.entries(), &[entry(0, 100), entry(100, 50)]);
        assert!(!m.torn());

        // A different binding must refuse to resume.
        assert!(matches!(
            Manifest::open(&path, b"campaign-b"),
            Err(ManifestError::Codec(CodecError::Mismatch(_)))
        ));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_discarded_and_repaired() {
        let path = temp_path("torn");
        let mut m = Manifest::create(&path, b"c").unwrap();
        m.record(entry(0, 10)).unwrap();
        m.record(entry(10, 10)).unwrap();
        drop(m);

        // Chop mid-way through the last record, as a crash would.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let m = Manifest::open(&path, b"c").unwrap();
        assert!(m.torn());
        assert_eq!(m.entries(), &[entry(0, 10)]);
        drop(m);

        // The repair rewrote a clean journal: reopening is not torn and
        // appending works on the clean boundary.
        let mut m = Manifest::open(&path, b"c").unwrap();
        assert!(!m.torn());
        m.record(entry(10, 10)).unwrap();
        drop(m);
        let m = Manifest::open(&path, b"c").unwrap();
        assert_eq!(m.entries(), &[entry(0, 10), entry(10, 10)]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_or_create_creates_then_opens() {
        let path = temp_path("ooc");
        let _ = fs::remove_file(&path);
        let mut m = Manifest::open_or_create(&path, b"x").unwrap();
        m.record(entry(0, 5)).unwrap();
        drop(m);
        let m = Manifest::open_or_create(&path, b"x").unwrap();
        assert_eq!(m.entries().len(), 1);
        fs::remove_file(&path).unwrap();
    }
}
