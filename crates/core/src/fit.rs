//! Nominal VS parameter extraction (paper Fig. 1).
//!
//! Fits the VS model's DC parameter set `{VT0, δ0, n0, vxo, µ, β}` to the
//! golden kit's I-V surface by Levenberg-Marquardt on log-current residuals
//! (log space weighs subthreshold and strong inversion equally — exactly
//! what a compact-model extraction needs to capture both `Idsat` and
//! `Ioff`). `Cinv` is measured directly from the kit's gate capacitance,
//! mirroring the paper's direct `Cinv` measurement through oxide thickness.

use crate::kit::{GoldenKit, IvData};
use mosfet::{vs::VsModel, vs::VsParams, Bias, Geometry, MosfetModel, Polarity};
use numerics::lm::{levenberg_marquardt, LmOptions, LmStatus};
use numerics::NumericsError;

/// Outcome of a nominal fit.
#[derive(Debug, Clone)]
pub struct FittedVs {
    /// The fitted parameter set (including the measured `Cinv`).
    pub params: VsParams,
    /// RMS of the log-current residuals (natural log; ~0.05 means ~5%).
    pub rms_log_error: f64,
    /// Levenberg-Marquardt iterations used.
    pub iterations: usize,
    /// Convergence status.
    pub status: LmStatus,
}

/// Measures `Cinv` from the kit's gate capacitance in strong inversion
/// (`Cgg ≈ Cinv·W·L + 2·Cov·W`), the stand-in for the paper's oxide
/// thickness measurement.
pub fn measure_cinv(kit: &GoldenKit, polarity: Polarity, geom: Geometry) -> f64 {
    use mosfet::bsim::BsimModel;
    let dev = BsimModel::new(kit.corner(polarity).params, polarity, geom);
    let s = polarity.sign();
    let cgg = dev.cgg(Bias {
        vgs: s * kit.vdd,
        vds: 0.0,
        vbs: 0.0,
    });
    let cov = VsParams::nmos_40nm().cov;
    ((cgg - 2.0 * cov * geom.w) / geom.area()).max(1e-4)
}

/// Packs the free DC parameters into an optimization vector.
fn pack(p: &VsParams) -> [f64; 7] {
    [p.vt0, p.delta0, p.n0, p.vxo, p.mu, p.beta, p.alpha]
}

/// Applies an optimization vector onto a parameter template.
fn unpack(template: &VsParams, x: &[f64]) -> VsParams {
    VsParams {
        vt0: x[0],
        delta0: x[1],
        n0: x[2],
        vxo: x[3],
        mu: x[4],
        beta: x[5],
        alpha: x[6],
        ..*template
    }
}

/// Weight on the `Idsat`/`Ioff` anchor residuals. The statistical flow
/// propagates variances through exactly these metrics, so the nominal fit
/// pins them harder than generic curve points (standard practice in
/// targeted compact-model extraction).
const ANCHOR_WEIGHT: f64 = 12.0;

/// Log-current residuals of a VS candidate against the kit I-V data, plus
/// anchor residuals on the extraction metrics.
fn residuals(
    x: &[f64],
    template: &VsParams,
    polarity: Polarity,
    geom: Geometry,
    iv: &IvData,
    vdd: f64,
) -> Vec<f64> {
    let params = unpack(template, x);
    let model = VsModel::new(params, polarity, geom);
    let s = polarity.sign();
    let id_at = |vgs: f64, vds: f64| {
        model
            .ids(Bias {
                vgs: s * vgs,
                vds: s * vds,
                vbs: 0.0,
            })
            .abs()
            .max(1e-20)
    };
    let mut r: Vec<f64> = iv
        .points
        .iter()
        .map(|&(vgs, vds, id_kit)| (id_at(vgs, vds) / id_kit.max(1e-20)).ln())
        .collect();
    // Anchors: Idsat and Ioff (the kit values are on the grid).
    let kit_at = |vgs: f64, vds: f64| {
        iv.points
            .iter()
            .find(|&&(g, d, _)| (g - vgs).abs() < 1e-9 && (d - vds).abs() < 1e-9)
            .map(|p| p.2)
    };
    if let Some(idsat_kit) = kit_at(vdd, vdd) {
        r.push(ANCHOR_WEIGHT * (id_at(vdd, vdd) / idsat_kit).ln());
    }
    if let Some(ioff_kit) = kit_at(0.0, vdd) {
        r.push(ANCHOR_WEIGHT * (id_at(0.0, vdd) / ioff_kit).ln());
    }
    // Trajectory anchors: the currents that control gate delay — the
    // saturation knee (full gate drive, half drain swing) and the
    // moderate-inversion point (half gate drive, full drain swing).
    for (vg, vd) in [(vdd, 0.45), (0.45, vdd)] {
        if let Some(kit) = kit_at(vg, vd) {
            r.push(0.5 * ANCHOR_WEIGHT * (id_at(vg, vd) / kit).ln());
        }
    }
    r
}

/// Mean kit/VS channel-charge ratio over the gate-switching trajectory
/// (overlap charge, identical in both models, is excluded). Used by the CV
/// correction stage of [`fit_vs_to_kit`].
fn charge_ratio(kit: &GoldenKit, polarity: Polarity, geom: Geometry, params: &VsParams) -> f64 {
    use mosfet::bsim::BsimModel;
    let vs = VsModel::new(*params, polarity, geom);
    let kd = BsimModel::new(kit.corner(polarity).params, polarity, geom);
    let s = polarity.sign();
    let cov_w = params.cov * geom.w;
    let mut num = 0.0;
    let mut den = 0.0;
    for (vgs, vds) in [(0.9, 0.0), (0.9, 0.45), (0.9, 0.9), (0.6, 0.45), (0.6, 0.9)] {
        let b = Bias {
            vgs: s * vgs,
            vds: s * vds,
            vbs: 0.0,
        };
        let q_ov = cov_w * (vgs + (vgs - vds));
        num += kd.charges(b).qg.abs() - q_ov;
        den += vs.charges(b).qg.abs() - q_ov;
    }
    if den > 0.0 && num > 0.0 {
        (num / den).clamp(0.5, 2.0)
    } else {
        1.0
    }
}

/// Fits the VS model to the kit's nominal I-V for one polarity.
///
/// # Errors
///
/// Propagates Levenberg-Marquardt failures (bad bounds, non-finite
/// residuals).
pub fn fit_vs_to_kit(
    kit: &GoldenKit,
    polarity: Polarity,
    geom: Geometry,
) -> Result<FittedVs, NumericsError> {
    let mut template = match polarity {
        Polarity::Nmos => VsParams::nmos_40nm(),
        Polarity::Pmos => VsParams::pmos_40nm(),
    };
    template.cinv = measure_cinv(kit, polarity, geom);
    let iv = kit.nominal_iv(polarity, geom);
    let lower = [0.15, 0.02, 1.05, 3e4, 4e-3, 1.1, 1.2];
    let upper = [0.65, 0.35, 2.2, 4e5, 9e-2, 2.6, 5.0];

    // Staged extraction (standard compact-model practice):
    //   stage A - threshold group {VT0, δ0, n0} on the subthreshold /
    //             near-threshold points only;
    //   stage B - transport group {vxo, µ, β, α} on strong inversion;
    //   stage C - joint polish of all seven with metric anchors.
    let sub_iv = IvData {
        points: iv
            .points
            .iter()
            .copied()
            .filter(|&(vgs, _, _)| vgs <= 0.45)
            .collect(),
    };
    let strong_iv = IvData {
        points: iv
            .points
            .iter()
            .copied()
            .filter(|&(vgs, _, _)| vgs >= 0.45)
            .collect(),
    };

    let mut x = pack(&template);
    // Stage A: indices 0..3 free.
    let xa = levenberg_marquardt(
        |p| {
            let mut full = x;
            full[..3].copy_from_slice(p);
            residuals(&full, &template, polarity, geom, &sub_iv, kit.vdd)
        },
        &x[..3],
        LmOptions {
            max_iter: 150,
            lower: Some(lower[..3].to_vec()),
            upper: Some(upper[..3].to_vec()),
            ..LmOptions::default()
        },
    )?;
    x[..3].copy_from_slice(&xa.x);

    // Stage B: indices 3..7 free.
    let xb = levenberg_marquardt(
        |p| {
            let mut full = x;
            full[3..].copy_from_slice(p);
            residuals(&full, &template, polarity, geom, &strong_iv, kit.vdd)
        },
        &x[3..],
        LmOptions {
            max_iter: 150,
            lower: Some(lower[3..].to_vec()),
            upper: Some(upper[3..].to_vec()),
            ..LmOptions::default()
        },
    )?;
    x[3..].copy_from_slice(&xb.x);

    // Stage C: joint polish with anchors.
    let mut res = levenberg_marquardt(
        |p| residuals(p, &template, polarity, geom, &iv, kit.vdd),
        &x,
        LmOptions {
            max_iter: 300,
            lower: Some(lower.to_vec()),
            upper: Some(upper.to_vec()),
            ..LmOptions::default()
        },
    )?;

    // Stage D: CV correction. The DC fit pins currents, but gate delay also
    // depends on the charge the device presents as a *load*. Match the VS
    // channel charge to the kit's along the switching trajectory by scaling
    // Cinv, then re-polish the DC parameters (vxo/µ absorb the change).
    // Two passes converge to <1%.
    for _ in 0..2 {
        let k = charge_ratio(kit, polarity, geom, &unpack(&template, &res.x));
        template.cinv *= k;
        res = levenberg_marquardt(
            |p| residuals(p, &template, polarity, geom, &iv, kit.vdd),
            &res.x.clone(),
            LmOptions {
                max_iter: 200,
                lower: Some(lower.to_vec()),
                upper: Some(upper.to_vec()),
                ..LmOptions::default()
            },
        )?;
    }
    // RMS over the plain curve residuals (exclude the weighted anchors).
    let n_curve = iv.points.len().max(1);
    let rms = (res.residuals[..n_curve].iter().map(|r| r * r).sum::<f64>() / n_curve as f64).sqrt();
    Ok(FittedVs {
        params: unpack(&template, &res.x),
        rms_log_error: rms,
        iterations: xa.iterations + xb.iterations + res.iterations,
        status: res.status,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kit() -> GoldenKit {
        GoldenKit::default_40nm()
    }

    #[test]
    fn nmos_fit_reaches_good_accuracy() {
        let f = fit_vs_to_kit(&kit(), Polarity::Nmos, Geometry::from_nm(300.0, 40.0)).unwrap();
        // Paper Fig. 1 shows near-overlay quality; ln-RMS < 0.15 (~15%)
        // across 5 decades of current (including kit GIDL/tunneling floors the VS model intentionally omits) is a solid fit for a different
        // transport model.
        assert!(f.rms_log_error < 0.20, "rms ln error = {}", f.rms_log_error);
        // Parameters stay physical.
        assert!(f.params.vt0 > 0.2 && f.params.vt0 < 0.6);
        assert!(f.params.n0 > 1.0 && f.params.n0 < 2.2);
    }

    #[test]
    fn pmos_fit_reaches_good_accuracy() {
        let f = fit_vs_to_kit(&kit(), Polarity::Pmos, Geometry::from_nm(300.0, 40.0)).unwrap();
        assert!(f.rms_log_error < 0.20, "rms ln error = {}", f.rms_log_error);
    }

    #[test]
    fn fitted_idsat_matches_kit_within_percent_scale() {
        use crate::metrics::DeviceMetrics;
        let kit = kit();
        let geom = Geometry::from_nm(300.0, 40.0);
        let f = fit_vs_to_kit(&kit, Polarity::Nmos, geom).unwrap();
        let vs = VsModel::new(f.params, Polarity::Nmos, geom);
        let kit_dev = mosfet::bsim::BsimModel::new(kit.nmos.params, Polarity::Nmos, geom);
        let e_vs = DeviceMetrics::evaluate(&vs, kit.vdd);
        let e_kit = DeviceMetrics::evaluate(&kit_dev, kit.vdd);
        assert!(
            (e_vs.idsat / e_kit.idsat - 1.0).abs() < 0.08,
            "Idsat: vs {} vs kit {}",
            e_vs.idsat,
            e_kit.idsat
        );
        assert!(
            (e_vs.log10_ioff - e_kit.log10_ioff).abs() < 0.3,
            "log10 Ioff: {} vs {}",
            e_vs.log10_ioff,
            e_kit.log10_ioff
        );
    }

    #[test]
    fn measured_cinv_close_to_kit_cox() {
        let kit = kit();
        let c = measure_cinv(&kit, Polarity::Nmos, Geometry::from_nm(600.0, 40.0));
        // Kit Cox is 1.5 µF/cm² = 0.015 F/m²; Vgsteff smoothing shaves a
        // little off.
        assert!(
            (0.6..1.1).contains(&(c / kit.nmos.params.cox)),
            "cinv = {c}"
        );
    }
}
