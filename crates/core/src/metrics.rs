//! Electrical performance metrics for statistical extraction.
//!
//! The paper selects `e_i = {Idsat, log10(Ioff), Cgg@Vdd}`: metrics that are
//! near-Gaussian under Gaussian process variations (Section III). `Ioff`
//! itself is lognormal — hence the log — and mid-transition drain currents
//! are excluded altogether.

use mosfet::{Bias, MosfetModel};

/// The three extraction metrics at a given supply voltage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceMetrics {
    /// Saturation drain current magnitude at `|Vgs| = |Vds| = Vdd`, A.
    pub idsat: f64,
    /// `log10` of the off-current magnitude at `Vgs = 0, |Vds| = Vdd`.
    pub log10_ioff: f64,
    /// Gate capacitance `dQg/dVgs` at `|Vgs| = Vdd, Vds = 0`, F.
    pub cgg: f64,
}

impl DeviceMetrics {
    /// Evaluates all three metrics for a model at the given supply.
    pub fn evaluate(model: &dyn MosfetModel, vdd: f64) -> DeviceMetrics {
        let s = model.polarity().sign();
        let idsat = model
            .ids(Bias {
                vgs: s * vdd,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs();
        let ioff = model
            .ids(Bias {
                vgs: 0.0,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs()
            .max(1e-30);
        let cgg = model.cgg(Bias {
            vgs: s * vdd,
            vds: 0.0,
            vbs: 0.0,
        });
        DeviceMetrics {
            idsat,
            log10_ioff: ioff.log10(),
            cgg,
        }
    }

    /// The metrics as an array in the fixed order `[Idsat, log10 Ioff, Cgg]`.
    pub fn as_array(&self) -> [f64; 3] {
        [self.idsat, self.log10_ioff, self.cgg]
    }

    /// Metric names aligned with [`DeviceMetrics::as_array`].
    pub const NAMES: [&'static str; 3] = ["Idsat", "log10Ioff", "Cgg@Vdd"];
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosfet::{bsim::BsimModel, vs::VsModel, Geometry};

    const VDD: f64 = 0.9;

    #[test]
    fn vs_nmos_metrics_are_physical() {
        let m = VsModel::nominal_nmos_40nm(Geometry::from_nm(600.0, 40.0));
        let e = DeviceMetrics::evaluate(&m, VDD);
        assert!(e.idsat > 1e-5 && e.idsat < 1e-2, "idsat = {}", e.idsat);
        assert!(
            e.log10_ioff < -5.0 && e.log10_ioff > -13.0,
            "ioff = {}",
            e.log10_ioff
        );
        assert!(e.cgg > 1e-17 && e.cgg < 1e-13, "cgg = {}", e.cgg);
    }

    #[test]
    fn pmos_metrics_use_folded_polarity() {
        let m = VsModel::nominal_pmos_40nm(Geometry::from_nm(600.0, 40.0));
        let e = DeviceMetrics::evaluate(&m, VDD);
        assert!(e.idsat > 0.0);
        assert!(e.cgg > 0.0);
    }

    #[test]
    fn kit_and_vs_metrics_same_scale() {
        let g = Geometry::from_nm(600.0, 40.0);
        let vs = DeviceMetrics::evaluate(&VsModel::nominal_nmos_40nm(g), VDD);
        let kit = DeviceMetrics::evaluate(&BsimModel::nominal_nmos_40nm(g), VDD);
        let r = vs.idsat / kit.idsat;
        assert!((0.3..3.0).contains(&r), "Idsat ratio = {r}");
    }

    #[test]
    fn array_round_trip() {
        let m = VsModel::nominal_nmos_40nm(Geometry::from_nm(300.0, 40.0));
        let e = DeviceMetrics::evaluate(&m, VDD);
        let a = e.as_array();
        assert_eq!(a[0], e.idsat);
        assert_eq!(a[1], e.log10_ioff);
        assert_eq!(a[2], e.cgg);
        assert_eq!(DeviceMetrics::NAMES.len(), 3);
    }
}
