//! The statistical Virtual Source model: the paper's contribution.
//!
//! This crate implements the complete flow of *"Statistical Modeling with
//! the Virtual Source MOSFET Model"* (Yu et al., DATE 2013):
//!
//! 1. [`kit`] — the "golden" design kit facade: nominal BSIM-like devices
//!    plus hidden foundry-truth mismatch; it emits nominal I-V data and
//!    Monte Carlo metric variances, exactly the artifacts a real proprietary
//!    kit exposes to a modeling team.
//! 2. [`fit`] — nominal VS parameter extraction against the kit's I-V
//!    curves via Levenberg-Marquardt (paper Fig. 1).
//! 3. [`metrics`] — the chosen electrical metrics
//!    `e_i = {Idsat, log10 Ioff, Cgg@Vdd}` (Gaussian-friendly, per
//!    Section III of the paper).
//! 4. [`sensitivity`] — finite-difference sensitivities `∂e_i/∂p_j` of the
//!    VS model with respect to the statistical parameter set.
//! 5. [`bpv`] — **backward propagation of variance**: the stacked system of
//!    paper Eq. (10), solved jointly across geometries (non-negative least
//!    squares) and per-geometry (paper Fig. 2), with the `α2 = α3` LER
//!    constraint and directly-measured `σ_Cinv`.
//! 6. [`mc`] — Monte Carlo engines: device-level metric sampling, the
//!    circuit-level [`mc::McFactory`] that plugs sampled devices into the
//!    benchmark circuits, and [`mc::ParallelRunner`] — the deterministic,
//!    work-sharded executor that spreads either level across every
//!    available core with bit-identical results for any worker count.
//!
//! `ARCHITECTURE.md` at the repo root diagrams the crate graph and the
//! parallel Monte Carlo data flow.
//!
//! # Quickstart
//!
//! ```no_run
//! use vscore::pipeline::{extract_statistical_vs_model, ExtractionConfig};
//!
//! let report = extract_statistical_vs_model(&ExtractionConfig::default())
//!     .expect("extraction converges");
//! println!("extracted NMOS alphas: {:?}", report.nmos.extracted.to_paper_units());
//! ```

pub mod bpv;
pub mod correlated;
pub mod fit;
pub mod kit;
pub mod mc;
pub mod metrics;
pub mod pipeline;
pub mod sensitivity;
pub mod verilog_a;

pub use kit::GoldenKit;
pub use metrics::DeviceMetrics;
