//! The "golden" design kit facade.
//!
//! The paper characterizes its statistical VS model against a proprietary
//! 40-nm BSIM4 industrial design kit. [`GoldenKit`] plays that role for the
//! reproduction: BSIM-like nominal devices plus hidden foundry-truth
//! mismatch coefficients. The kit deliberately exposes only what a real kit
//! would:
//!
//! * nominal I-V curves (for the nominal VS fit, paper Fig. 1),
//! * Monte Carlo samples / variances of electrical metrics (the "measured"
//!   statistics that feed BPV),
//! * a directly-measured oxide mismatch coefficient `α5` (the paper
//!   measures `σ_Cinv` from oxide thickness rather than extracting it).
//!
//! The truth coefficients themselves never enter the extraction path.

use crate::bpv::MeasuredVariance;
use crate::mc::{device_metric_samples, variances};
use crate::sensitivity::BsimBuilder;
use mosfet::{bsim::BsimParams, Geometry, MismatchSpec, Polarity};
use stats::Sampler;

/// One polarity's kit content.
#[derive(Debug, Clone, Copy)]
pub struct KitCorner {
    /// Nominal model parameters.
    pub params: BsimParams,
    /// Foundry-truth mismatch (hidden from extraction; used only to
    /// *generate* Monte Carlo data and as the oracle in validation).
    pub truth: MismatchSpec,
}

/// The synthetic 40-nm design kit.
#[derive(Debug, Clone, Copy)]
pub struct GoldenKit {
    /// NMOS corner.
    pub nmos: KitCorner,
    /// PMOS corner.
    pub pmos: KitCorner,
    /// Nominal supply voltage, V.
    pub vdd: f64,
}

/// A sampled I-V surface: `(vgs, vds, id)` triples.
#[derive(Debug, Clone)]
pub struct IvData {
    /// Bias points and drain current magnitudes (canonical polarity frame).
    pub points: Vec<(f64, f64, f64)>,
}

impl GoldenKit {
    /// The default 40-nm-class kit.
    pub fn default_40nm() -> Self {
        GoldenKit {
            nmos: KitCorner {
                params: BsimParams::nmos_40nm(),
                truth: BsimParams::foundry_mismatch_nmos(),
            },
            pmos: KitCorner {
                params: BsimParams::pmos_40nm(),
                truth: BsimParams::foundry_mismatch_pmos(),
            },
            vdd: 0.9,
        }
    }

    /// The kit corner for a polarity.
    pub fn corner(&self, polarity: Polarity) -> &KitCorner {
        match polarity {
            Polarity::Nmos => &self.nmos,
            Polarity::Pmos => &self.pmos,
        }
    }

    /// A [`BsimBuilder`] for kit devices of the given polarity/geometry.
    pub fn builder(&self, polarity: Polarity, geom: Geometry) -> BsimBuilder {
        BsimBuilder {
            params: self.corner(polarity).params,
            polarity,
            geom,
        }
    }

    /// Nominal I-V characterization data (what Fig. 1 fits against):
    /// Id-Vg sweeps at `Vds ∈ {50 mV, Vdd}` and Id-Vd sweeps at several
    /// gate overdrives, in the canonical (NMOS-like) frame.
    pub fn nominal_iv(&self, polarity: Polarity, geom: Geometry) -> IvData {
        let s = polarity.sign();
        let model = self.builder(polarity, geom).params;
        let dev = mosfet::bsim::BsimModel::new(model, polarity, geom);
        use mosfet::MosfetModel;
        let mut points = Vec::new();
        // Id-Vg at low and high Vds.
        for &vds in &[0.05, self.vdd] {
            let mut vgs = 0.0;
            while vgs <= self.vdd + 1e-12 {
                let id = dev
                    .ids(mosfet::Bias {
                        vgs: s * vgs,
                        vds: s * vds,
                        vbs: 0.0,
                    })
                    .abs();
                points.push((vgs, vds, id));
                vgs += 0.05;
            }
        }
        // Id-Vd at several Vgs.
        for &vgs in &[0.5, 0.7, self.vdd] {
            let mut vds = 0.05;
            while vds <= self.vdd + 1e-12 {
                let id = dev
                    .ids(mosfet::Bias {
                        vgs: s * vgs,
                        vds: s * vds,
                        vbs: 0.0,
                    })
                    .abs();
                points.push((vgs, vds, id));
                vds += 0.05;
            }
        }
        IvData { points }
    }

    /// Monte Carlo "measurement" of metric variances at one geometry — the
    /// data a modeling team obtains from kit simulations or silicon.
    pub fn measure_variances(
        &self,
        polarity: Polarity,
        geom: Geometry,
        n_samples: usize,
        sampler: &mut Sampler,
    ) -> MeasuredVariance {
        let corner = self.corner(polarity);
        let builder = self.builder(polarity, geom);
        let samples = device_metric_samples(&builder, &corner.truth, self.vdd, n_samples, sampler);
        MeasuredVariance {
            geom,
            var: variances(&samples),
        }
    }

    /// The directly-measured oxide mismatch coefficient (`α5`, SI F/m).
    ///
    /// The paper measures `σ_Cinv` through oxide thickness instead of BPV
    /// because BPV overestimates tightly controlled parameters; handing the
    /// truth value over mirrors that measurement.
    pub fn measured_a_cinv(&self, polarity: Polarity) -> f64 {
        self.corner(polarity).truth.a_cinv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iv_data_covers_both_sweeps() {
        let kit = GoldenKit::default_40nm();
        let iv = kit.nominal_iv(Polarity::Nmos, Geometry::from_nm(300.0, 40.0));
        // 2 Vg sweeps x 19 points + 3 Vd sweeps x 18 points.
        assert!(iv.points.len() > 50);
        // All currents positive and finite.
        assert!(iv
            .points
            .iter()
            .all(|&(_, _, id)| id > 0.0 && id.is_finite()));
        // Saturation current at (vdd, vdd) is the largest.
        let max = iv.points.iter().map(|p| p.2).fold(0.0_f64, f64::max);
        let at_full = iv
            .points
            .iter()
            .find(|&&(vg, vd, _)| (vg - kit.vdd).abs() < 1e-9 && (vd - kit.vdd).abs() < 1e-9)
            .expect("grid contains the (vdd, vdd) point")
            .2;
        assert!((max / at_full) < 1.001);
    }

    #[test]
    fn pmos_iv_is_positive_in_canonical_frame() {
        let kit = GoldenKit::default_40nm();
        let iv = kit.nominal_iv(Polarity::Pmos, Geometry::from_nm(600.0, 40.0));
        assert!(iv.points.iter().all(|&(_, _, id)| id >= 0.0));
    }

    #[test]
    fn measured_variances_scale_with_area() {
        let kit = GoldenKit::default_40nm();
        let mut sampler = Sampler::from_seed(7);
        let small = kit.measure_variances(
            Polarity::Nmos,
            Geometry::from_nm(120.0, 40.0),
            800,
            &mut sampler,
        );
        let large = kit.measure_variances(
            Polarity::Nmos,
            Geometry::from_nm(1500.0, 40.0),
            800,
            &mut sampler,
        );
        // σ(log10 Ioff) shrinks with device area (Pelgrom).
        assert!(small.var[1] > 3.0 * large.var[1]);
    }

    #[test]
    fn truth_is_not_used_by_accessors() {
        // The "public" kit surface hands out only measured artifacts; the
        // truth struct is reachable but clearly separated.
        let kit = GoldenKit::default_40nm();
        assert!(kit.measured_a_cinv(Polarity::Nmos) > 0.0);
        assert!(kit.measured_a_cinv(Polarity::Pmos) > 0.0);
    }
}
