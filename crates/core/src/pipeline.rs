//! The end-to-end extraction pipeline.
//!
//! Chains the paper's full flow for both polarities:
//!
//! 1. measure `Cinv` (oxide) and fit the nominal VS model to the kit I-V;
//! 2. Monte Carlo the kit at several geometries to "measure" metric
//!    variances;
//! 3. backward-propagate those variances through the fitted VS model to
//!    extract the Pelgrom coefficients `α1..α5` (Table II);
//! 4. report everything needed for validation.

use crate::bpv::{solve_bpv, BpvConfig, BpvSolution, MeasuredVariance};
use crate::fit::{fit_vs_to_kit, FittedVs};
use crate::kit::GoldenKit;
use crate::sensitivity::{VariedModel, VsBuilder};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use numerics::NumericsError;
use stats::Sampler;
use std::fmt;

/// Errors from the extraction pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Nominal fitting failed.
    Fit(NumericsError),
    /// BPV solve failed.
    Bpv(NumericsError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Fit(e) => write!(f, "nominal fit failed: {e}"),
            CoreError::Bpv(e) => write!(f, "BPV extraction failed: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct ExtractionConfig {
    /// Supply voltage, V.
    pub vdd: f64,
    /// Geometry set used for the BPV stack (paper: several widths at
    /// L = 40 nm).
    pub geometries: Vec<Geometry>,
    /// Kit Monte Carlo samples per geometry (paper: > 1000).
    pub mc_samples: usize,
    /// Geometry used for the nominal I-V fit.
    pub fit_geometry: Geometry,
    /// RNG seed for the kit Monte Carlo.
    pub seed: u64,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        ExtractionConfig {
            vdd: 0.9,
            geometries: [120.0, 300.0, 600.0, 1000.0, 1500.0]
                .into_iter()
                .map(|w| Geometry::from_nm(w, 40.0))
                .collect(),
            mc_samples: 1500,
            fit_geometry: Geometry::from_nm(300.0, 40.0),
            seed: 20130318, // DATE 2013 week
        }
    }
}

/// Extraction products for one polarity.
#[derive(Debug, Clone)]
pub struct PolarityReport {
    /// Device polarity.
    pub polarity: Polarity,
    /// Fit outcome (fitted parameters inside).
    pub fit: FittedVs,
    /// Extracted mismatch coefficients.
    pub extracted: MismatchSpec,
    /// The kit's hidden truth (oracle — for validation tables only).
    pub truth: MismatchSpec,
    /// Kit-measured metric variances per geometry.
    pub measured: Vec<MeasuredVariance>,
    /// Full BPV solution (joint + per-geometry).
    pub bpv: BpvSolution,
}

impl PolarityReport {
    /// Fitted VS parameters.
    pub fn params(&self) -> VsParams {
        self.fit.params
    }

    /// VS builders at the configured geometries (for validation MC).
    pub fn builders(&self, geometries: &[Geometry]) -> Vec<VsBuilder> {
        geometries
            .iter()
            .map(|&geom| VsBuilder {
                params: self.fit.params,
                polarity: self.polarity,
                geom,
            })
            .collect()
    }
}

/// Full extraction report.
#[derive(Debug, Clone)]
pub struct ExtractionReport {
    /// NMOS products.
    pub nmos: PolarityReport,
    /// PMOS products.
    pub pmos: PolarityReport,
    /// The kit everything was characterized against.
    pub kit: GoldenKit,
    /// The configuration used.
    pub config: ExtractionConfig,
}

fn extract_polarity(
    kit: &GoldenKit,
    polarity: Polarity,
    cfg: &ExtractionConfig,
    sampler: &mut Sampler,
) -> Result<PolarityReport, CoreError> {
    let fit = fit_vs_to_kit(kit, polarity, cfg.fit_geometry).map_err(CoreError::Fit)?;
    let measured: Vec<MeasuredVariance> = cfg
        .geometries
        .iter()
        .map(|&g| kit.measure_variances(polarity, g, cfg.mc_samples, sampler))
        .collect();
    let builders: Vec<VsBuilder> = cfg
        .geometries
        .iter()
        .map(|&geom| VsBuilder {
            params: fit.params,
            polarity,
            geom,
        })
        .collect();
    let refs: Vec<&dyn VariedModel> = builders.iter().map(|b| b as &dyn VariedModel).collect();
    let bpv = solve_bpv(
        &refs,
        &measured,
        &BpvConfig {
            vdd: cfg.vdd,
            a_cinv: kit.measured_a_cinv(polarity),
        },
    )
    .map_err(CoreError::Bpv)?;
    Ok(PolarityReport {
        polarity,
        fit,
        extracted: bpv.spec,
        truth: kit.corner(polarity).truth,
        measured,
        bpv,
    })
}

/// Runs the complete extraction for both polarities.
///
/// # Errors
///
/// Returns [`CoreError`] when fitting or BPV fails.
pub fn extract_statistical_vs_model(cfg: &ExtractionConfig) -> Result<ExtractionReport, CoreError> {
    let kit = GoldenKit::default_40nm();
    let mut sampler = Sampler::from_seed(cfg.seed);
    let nmos = extract_polarity(&kit, Polarity::Nmos, cfg, &mut sampler)?;
    let pmos = extract_polarity(&kit, Polarity::Pmos, cfg, &mut sampler)?;
    Ok(ExtractionReport {
        nmos,
        pmos,
        kit,
        config: cfg.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ExtractionConfig {
        ExtractionConfig {
            mc_samples: 600,
            geometries: [120.0, 300.0, 600.0, 1500.0]
                .into_iter()
                .map(|w| Geometry::from_nm(w, 40.0))
                .collect(),
            ..ExtractionConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end() {
        let report = extract_statistical_vs_model(&quick_config()).unwrap();
        for rep in [&report.nmos, &report.pmos] {
            let alphas = rep.extracted.to_paper_units();
            // All coefficients positive and in the paper's order of
            // magnitude (Table II: α1 ~ 2-3 V·nm, α2 ~ 3-4 nm, α4 ~
            // hundreds-to-thousands nm·cm²/Vs).
            assert!(
                alphas[0] > 0.5 && alphas[0] < 8.0,
                "{:?} α1 = {}",
                rep.polarity,
                alphas[0]
            );
            assert!(
                alphas[1] > 0.5 && alphas[1] < 12.0,
                "{:?} α2 = {}",
                rep.polarity,
                alphas[1]
            );
            assert_eq!(alphas[1], alphas[2], "α2 = α3 by construction");
        }
    }

    #[test]
    fn extracted_variances_match_measured() {
        // The paper's Table III criterion: the statistical VS model must
        // reproduce the kit's σ(Idsat) and σ(log10 Ioff).
        let report = extract_statistical_vs_model(&quick_config()).unwrap();
        let rep = &report.nmos;
        let builders = rep.builders(&report.config.geometries);
        for (b, meas) in builders.iter().zip(&rep.measured) {
            let predicted = crate::bpv::predict_variances(b, &rep.extracted, report.config.vdd);
            // σ agreement within ~20% (MC noise at 600 samples is ~6%).
            for i in 0..2 {
                let ratio = (predicted[i] / meas.var[i]).sqrt();
                assert!(
                    (0.75..1.3).contains(&ratio),
                    "{} σ ratio = {ratio} at {}",
                    crate::metrics::DeviceMetrics::NAMES[i],
                    meas.geom
                );
            }
        }
    }
}
