//! Backward propagation of variance (BPV) — paper Section III, Eq. (8)-(10).
//!
//! Measured variances of the electrical metrics over several geometries are
//! equated to their first-order propagation through the VS model:
//!
//! ```text
//! σ²(e_i) - (∂e_i/∂Cinv)² σ²Cinv  =  (∂e_i/∂VT0)² α1²/(WL)
//!                                  + [(∂e_i/∂L)² L/W + (∂e_i/∂W)² W/L] α2²
//!                                  + (∂e_i/∂µ)² α4²/(WL)
//! ```
//!
//! with the paper's two structural choices baked in:
//!
//! * `α2 = α3` — line-edge roughness affects length and width equally, so
//!   one LER coefficient covers both (`σL/σW = L/W`).
//! * `σ_Cinv` is **measured directly** (oxide thickness is tightly
//!   controlled; BPV would overestimate it), so its contribution moves to
//!   the left-hand side.
//!
//! The stacked system over all geometries is solved by *non-negative* least
//! squares — variances cannot be negative — and per-geometry (3x3) for the
//! consistency comparison of paper Fig. 2.

use crate::metrics::DeviceMetrics;
use crate::sensitivity::{sensitivity_matrix, VariedModel};
use mosfet::{Geometry, MismatchSpec, StatParam};
use numerics::{nnls::nnls, qr, Matrix, NumericsError};

/// Measured metric variances at one geometry (from kit Monte Carlo or
/// silicon).
#[derive(Debug, Clone, Copy)]
pub struct MeasuredVariance {
    /// Device geometry.
    pub geom: Geometry,
    /// Variances of `[Idsat, log10 Ioff, Cgg]`.
    pub var: [f64; 3],
}

/// Configuration of the BPV solve.
#[derive(Debug, Clone, Copy)]
pub struct BpvConfig {
    /// Supply voltage for metric evaluation, V.
    pub vdd: f64,
    /// Directly-measured `α5` (Cinv Pelgrom coefficient), F/m (SI).
    pub a_cinv: f64,
}

/// Result of the BPV extraction.
#[derive(Debug, Clone)]
pub struct BpvSolution {
    /// Jointly-extracted mismatch spec (`a_l == a_w`, `a_cinv` as given).
    pub spec: MismatchSpec,
    /// Weighted residual norm of the joint solve (relative units).
    pub residual: f64,
    /// Per-geometry (individually solved) specs, aligned with the input
    /// measurement order — paper Fig. 2 compares these against the joint
    /// solution.
    pub per_geometry: Vec<MismatchSpec>,
}

/// Builds one geometry's 3 equations: returns `(coeffs 3x3, lhs 3)`.
fn geometry_rows(
    builder: &dyn VariedModel,
    measured: &MeasuredVariance,
    cfg: &BpvConfig,
) -> (Matrix, [f64; 3]) {
    let geom = measured.geom;
    let s = sensitivity_matrix(builder, cfg.vdd);
    let area = geom.area();
    let sigma_cinv = cfg.a_cinv / area.sqrt();
    let mut coeffs = Matrix::zeros(3, 3);
    let mut lhs = [0.0; 3];
    for i in 0..3 {
        lhs[i] = measured.var[i] - (s[(i, 4)] * sigma_cinv).powi(2);
        coeffs[(i, 0)] = s[(i, 0)].powi(2) / area;
        coeffs[(i, 1)] =
            s[(i, 1)].powi(2) * (geom.l / geom.w) + s[(i, 2)].powi(2) * (geom.w / geom.l);
        coeffs[(i, 2)] = s[(i, 3)].powi(2) / area;
    }
    (coeffs, lhs)
}

fn spec_from_squares(x: &[f64], a_cinv: f64) -> MismatchSpec {
    let a_vt = x[0].max(0.0).sqrt();
    let a_lw = x[1].max(0.0).sqrt();
    let a_mu = x[2].max(0.0).sqrt();
    MismatchSpec {
        a_vt,
        a_l: a_lw,
        a_w: a_lw,
        a_mu,
        a_cinv,
    }
}

/// Solves the stacked BPV system.
///
/// `builders` supply the sensitivity model (normally the fitted VS model)
/// at each measured geometry; `measured` holds the observed variances.
///
/// # Errors
///
/// Returns [`NumericsError::DimensionMismatch`] when inputs are misaligned
/// or empty, and propagates NNLS failures.
pub fn solve_bpv(
    builders: &[&dyn VariedModel],
    measured: &[MeasuredVariance],
    cfg: &BpvConfig,
) -> Result<BpvSolution, NumericsError> {
    if builders.len() != measured.len() || builders.is_empty() {
        return Err(NumericsError::DimensionMismatch {
            context: format!(
                "BPV needs one builder per measurement, got {} and {}",
                builders.len(),
                measured.len()
            ),
        });
    }
    let g = builders.len();
    let mut a = Matrix::zeros(3 * g, 3);
    let mut b = vec![0.0; 3 * g];
    let mut per_geometry = Vec::with_capacity(g);

    for (gi, (builder, meas)) in builders.iter().zip(measured).enumerate() {
        let (coeffs, lhs) = geometry_rows(*builder, meas, cfg);
        // Relative weighting: normalize each equation by its measured
        // variance so all metrics/geometries contribute equally.
        for i in 0..3 {
            let w = 1.0 / meas.var[i].max(1e-300);
            for j in 0..3 {
                a[(3 * gi + i, j)] = coeffs[(i, j)] * w;
            }
            b[3 * gi + i] = lhs[i] * w;
        }
        // Per-geometry (exactly determined) solve, for Fig. 2.
        let mut cg = Matrix::zeros(3, 3);
        let mut bg = vec![0.0; 3];
        for i in 0..3 {
            let w = 1.0 / meas.var[i].max(1e-300);
            for j in 0..3 {
                cg[(i, j)] = coeffs[(i, j)] * w;
            }
            bg[i] = lhs[i] * w;
        }
        let x_g = qr::lstsq(&cg, &bg).unwrap_or_else(|_| vec![0.0; 3]);
        per_geometry.push(spec_from_squares(&x_g, cfg.a_cinv));
    }

    let sol = nnls(&a, &b)?;
    Ok(BpvSolution {
        spec: spec_from_squares(&sol.x, cfg.a_cinv),
        residual: sol.residual_norm,
        per_geometry,
    })
}

/// First-order variance prediction for a geometry under a mismatch spec —
/// the forward direction of Eq. (9). Returns variances of
/// `[Idsat, log10 Ioff, Cgg]`.
pub fn predict_variances(builder: &dyn VariedModel, spec: &MismatchSpec, vdd: f64) -> [f64; 3] {
    let s = sensitivity_matrix(builder, vdd);
    let geom = builder.geometry();
    let mut out = [0.0; 3];
    for i in 0..3 {
        for (j, p) in StatParam::ALL.into_iter().enumerate() {
            out[i] += (s[(i, j)] * spec.sigma(p, geom)).powi(2);
        }
    }
    out
}

/// Per-parameter `σ/µ` contributions to Idsat mismatch (paper Fig. 3):
/// returns `(total, [per-parameter])`, each as a fraction of nominal Idsat.
pub fn decompose_idsat(
    builder: &dyn VariedModel,
    spec: &MismatchSpec,
    vdd: f64,
) -> (f64, [f64; 5]) {
    let s = sensitivity_matrix(builder, vdd);
    let geom = builder.geometry();
    let nominal =
        DeviceMetrics::evaluate(builder.build(mosfet::VariationDelta::zero()).as_ref(), vdd).idsat;
    let mut contrib = [0.0; 5];
    let mut total_var = 0.0;
    for (j, p) in StatParam::ALL.into_iter().enumerate() {
        let v = (s[(0, j)] * spec.sigma(p, geom)).powi(2);
        contrib[j] = v.sqrt() / nominal;
        total_var += v;
    }
    (total_var.sqrt() / nominal, contrib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sensitivity::VsBuilder;
    use mosfet::{vs::VsParams, Polarity};

    const VDD: f64 = 0.9;

    fn builders() -> Vec<VsBuilder> {
        [120.0, 300.0, 600.0, 1000.0, 1500.0]
            .into_iter()
            .map(|w| VsBuilder {
                params: VsParams::nmos_40nm(),
                polarity: Polarity::Nmos,
                geom: Geometry::from_nm(w, 40.0),
            })
            .collect()
    }

    fn truth() -> MismatchSpec {
        MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
    }

    /// The defining test: variances generated by forward propagation must
    /// be inverted back to the same coefficients.
    #[test]
    fn bpv_round_trip_recovers_truth() {
        let bs = builders();
        let truth = truth();
        let measured: Vec<MeasuredVariance> = bs
            .iter()
            .map(|b| MeasuredVariance {
                geom: b.geom,
                var: predict_variances(b, &truth, VDD),
            })
            .collect();
        let refs: Vec<&dyn VariedModel> = bs.iter().map(|b| b as &dyn VariedModel).collect();
        let sol = solve_bpv(
            &refs,
            &measured,
            &BpvConfig {
                vdd: VDD,
                a_cinv: truth.a_cinv,
            },
        )
        .unwrap();
        let got = sol.spec.to_paper_units();
        let want = truth.to_paper_units();
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g / w - 1.0).abs() < 0.02,
                "recovered {got:?} vs truth {want:?}"
            );
        }
    }

    #[test]
    fn per_geometry_agrees_with_joint_on_consistent_data() {
        let bs = builders();
        let truth = truth();
        let measured: Vec<MeasuredVariance> = bs
            .iter()
            .map(|b| MeasuredVariance {
                geom: b.geom,
                var: predict_variances(b, &truth, VDD),
            })
            .collect();
        let refs: Vec<&dyn VariedModel> = bs.iter().map(|b| b as &dyn VariedModel).collect();
        let sol = solve_bpv(
            &refs,
            &measured,
            &BpvConfig {
                vdd: VDD,
                a_cinv: truth.a_cinv,
            },
        )
        .unwrap();
        // Paper Fig. 2 observes < 10% difference; on perfectly consistent
        // data the two solutions coincide.
        for pg in &sol.per_geometry {
            for (a, b) in pg.to_paper_units().iter().zip(sol.spec.to_paper_units()) {
                if b > 0.0 {
                    assert!((a / b - 1.0).abs() < 0.05, "per-geom {a} vs joint {b}");
                }
            }
        }
    }

    #[test]
    fn zero_variance_input_gives_zero_alphas() {
        let bs = builders();
        let measured: Vec<MeasuredVariance> = bs
            .iter()
            .map(|b| MeasuredVariance {
                geom: b.geom,
                var: [1e-30, 1e-30, 1e-40],
            })
            .collect();
        let refs: Vec<&dyn VariedModel> = bs.iter().map(|b| b as &dyn VariedModel).collect();
        let sol = solve_bpv(
            &refs,
            &measured,
            &BpvConfig {
                vdd: VDD,
                a_cinv: 0.0,
            },
        )
        .unwrap();
        let u = sol.spec.to_paper_units();
        assert!(u[0] < 0.2 && u[1] < 0.5, "near-zero expected: {u:?}");
    }

    #[test]
    fn misaligned_inputs_rejected() {
        let bs = builders();
        let refs: Vec<&dyn VariedModel> = bs.iter().map(|b| b as &dyn VariedModel).collect();
        assert!(solve_bpv(
            &refs,
            &[],
            &BpvConfig {
                vdd: VDD,
                a_cinv: 0.0
            }
        )
        .is_err());
    }

    #[test]
    fn decomposition_sums_to_total() {
        let bs = builders();
        let (total, parts) = decompose_idsat(&bs[1], &truth(), VDD);
        let sum_sq: f64 = parts.iter().map(|p| p * p).sum();
        assert!((sum_sq.sqrt() / total - 1.0).abs() < 1e-9);
        // VT0 should be a dominant contributor for small devices (paper Fig. 3).
        assert!(parts[0] > 0.3 * total, "VT0 share = {}", parts[0] / total);
    }

    #[test]
    fn sigma_idsat_grows_as_width_shrinks() {
        let bs = builders();
        let truth = truth();
        let narrow = predict_variances(&bs[0], &truth, VDD)[0].sqrt()
            / DeviceMetrics::evaluate(bs[0].build(Default::default()).as_ref(), VDD).idsat;
        let wide = predict_variances(&bs[4], &truth, VDD)[0].sqrt()
            / DeviceMetrics::evaluate(bs[4].build(Default::default()).as_ref(), VDD).idsat;
        assert!(narrow > 2.0 * wide, "narrow {narrow} vs wide {wide}");
    }
}
