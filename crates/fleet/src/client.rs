//! A minimal HTTP/1.1 client on `std::net::TcpStream`, speaking exactly
//! the `statvs serve` protocol: one request per connection, JSON bodies,
//! `Connection: close` framing.
//!
//! The client mirrors the server's hostile-input posture from the other
//! side of the wire: every way a worker can misbehave — refuse the
//! connection, stall past the timeout, close mid-response, return
//! garbage framing or non-JSON — maps to a typed [`ClientError`] the
//! coordinator can classify as transient (retry on another worker) or
//! protocol-fatal. Nothing here panics on a hostile peer.

use serve::json::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on one response, bytes. Run envelopes carry hex sketch
/// payloads (a few kB); a worker streaming unbounded garbage must not
/// make the coordinator buffer it.
const MAX_RESPONSE_BYTES: usize = 4 * 1024 * 1024;

/// Why one HTTP exchange with a worker failed. Every variant is a
/// *transport or framing* fault — an HTTP error status is a successful
/// exchange and comes back as `(status, body)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// TCP connect failed (refused, unreachable, connect timeout). The
    /// classic dead-worker signature.
    Connect(std::io::ErrorKind),
    /// The socket failed mid-exchange.
    Io(std::io::ErrorKind),
    /// The worker stalled past the configured I/O timeout.
    Timeout,
    /// The worker closed the connection before a complete response
    /// (missing header terminator, or a body shorter than its declared
    /// `Content-Length`).
    Truncated,
    /// The response bytes do not parse as an HTTP response.
    Malformed(&'static str),
    /// The response body is not valid JSON.
    BadJson(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(kind) => write!(f, "connect failed: {kind:?}"),
            ClientError::Io(kind) => write!(f, "socket error: {kind:?}"),
            ClientError::Timeout => write!(f, "worker did not respond within the timeout"),
            ClientError::Truncated => write!(f, "worker closed the connection mid-response"),
            ClientError::Malformed(what) => write!(f, "malformed response: {what}"),
            ClientError::BadJson(e) => write!(f, "response body is not JSON: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The client: connect/I/O timeouts applied to every exchange.
#[derive(Debug, Clone)]
pub struct HttpClient {
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Read/write timeout for the exchange itself.
    pub io_timeout: Duration,
}

impl Default for HttpClient {
    fn default() -> Self {
        HttpClient {
            connect_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_secs(10),
        }
    }
}

impl HttpClient {
    /// One exchange: send `method path` with an optional JSON body, read
    /// the complete response, parse the body as JSON. Returns the HTTP
    /// status and parsed body — error envelopes are *successful*
    /// exchanges here; the caller branches on the status.
    ///
    /// # Errors
    ///
    /// [`ClientError`] on any transport or framing fault.
    pub fn exchange(
        &self,
        addr: SocketAddr,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, Json), ClientError> {
        let payload = body.unwrap_or("");
        let request = format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
            payload.len()
        );
        let raw = self.raw_exchange(addr, request.as_bytes())?;
        let (status, body_text) = parse_response(&raw)?;
        let json = Json::parse(body_text).map_err(|e| ClientError::BadJson(e.to_string()))?;
        Ok((status, json))
    }

    /// Sends raw bytes and reads until the worker closes the connection
    /// (or the timeout/size cap fires).
    fn raw_exchange(&self, addr: SocketAddr, request: &[u8]) -> Result<Vec<u8>, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)
            .map_err(|e| ClientError::Connect(e.kind()))?;
        stream
            .set_read_timeout(Some(self.io_timeout))
            .map_err(|e| ClientError::Io(e.kind()))?;
        stream
            .set_write_timeout(Some(self.io_timeout))
            .map_err(|e| ClientError::Io(e.kind()))?;
        let mut stream = stream;
        stream.write_all(request).map_err(io_fault)?;
        // Half-close: the server's post-error drain sees EOF immediately.
        let _ = stream.shutdown(std::net::Shutdown::Write);

        let mut response = Vec::new();
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(response),
                Ok(n) => {
                    if response.len() + n > MAX_RESPONSE_BYTES {
                        return Err(ClientError::Malformed("response exceeds the size cap"));
                    }
                    response.extend_from_slice(&chunk[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(io_fault(e)),
            }
        }
    }
}

/// Maps a mid-exchange I/O error, surfacing timeouts distinctly (they
/// drive the coordinator's straggler handling).
fn io_fault(e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
        kind => ClientError::Io(kind),
    }
}

/// Splits a complete raw response into `(status, body)`, validating the
/// status line and — when the worker declared one — the `Content-Length`.
fn parse_response(raw: &[u8]) -> Result<(u16, &str), ClientError> {
    if raw.is_empty() {
        return Err(ClientError::Truncated);
    }
    let text = std::str::from_utf8(raw).map_err(|_| ClientError::Malformed("non-UTF-8 bytes"))?;
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        // Bytes arrived but the header terminator never did: the worker
        // died (or was killed) mid-response.
        return Err(ClientError::Truncated);
    };
    let status_line = head.lines().next().unwrap_or("");
    let mut parts = status_line.split(' ');
    if parts.next().filter(|v| v.starts_with("HTTP/1.")).is_none() {
        return Err(ClientError::Malformed("bad status line"));
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or(ClientError::Malformed("bad status code"))?;
    for line in head.lines().skip(1) {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let declared: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Malformed("bad Content-Length"))?;
                if body.len() < declared {
                    return Err(ClientError::Truncated);
                }
            }
        }
    }
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_complete_response() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\n{\"ok\":true}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
    }

    #[test]
    fn truncation_is_detected_both_ways() {
        // No header terminator at all.
        assert_eq!(
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Le"),
            Err(ClientError::Truncated)
        );
        // Headers complete, body shorter than declared.
        assert_eq!(
            parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n{\"ok\""),
            Err(ClientError::Truncated)
        );
        assert_eq!(parse_response(b""), Err(ClientError::Truncated));
    }

    #[test]
    fn garbage_framing_is_malformed_not_a_panic() {
        assert!(matches!(
            parse_response(b"SPICE/9 hello\r\n\r\nbody"),
            Err(ClientError::Malformed(_))
        ));
        assert!(matches!(
            parse_response(b"HTTP/1.1 abc OK\r\n\r\n{}"),
            Err(ClientError::Malformed(_))
        ));
        assert!(matches!(
            parse_response(&[0xff, 0xfe, 0x00]),
            Err(ClientError::Malformed(_))
        ));
    }
}
