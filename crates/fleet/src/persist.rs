//! Campaign persistence: durable shard artifacts plus the manifest that
//! makes a killed campaign resumable.
//!
//! A [`CampaignStore`] owns one directory:
//!
//! ```text
//! <dir>/manifest.svaf          crash-tolerant journal (vscore::mc::manifest)
//! <dir>/shard-{offset}-{len}.svaf   sealed artifact per completed shard
//! ```
//!
//! Each shard artifact is a **sealed** [`stats::artifact`] container
//! holding a `'P'` meta section (shard identity + sample accounting)
//! followed by the shard's tagged sketch payloads exactly as the worker
//! shipped them (`'W'` Welford, optional `'H'` histogram, `'T'`
//! t-digest). The artifact is written to a temp file and renamed into
//! place, then the manifest records `(offset, len)`, the artifact's file
//! name, and the FNV-1a 64 digest of its complete file bytes — in that
//! order, so a crash at any point leaves either a resumable state or an
//! orphan temp file, never a manifest entry pointing at garbage that
//! would be trusted.
//!
//! On restore, every defense is checked: manifest binding (campaign
//! identity), file digest, artifact seal, and meta-vs-manifest shard
//! identity. Anything wrong demotes the entry to a *skip* — the shard is
//! recomputed — rather than poisoning the merge, because determinism
//! makes recomputation merely slow, while trusting corrupt bytes would
//! be silently wrong forever.

use crate::coordinator::FleetSpec;
use crate::merge::ShardPayload;
use stats::artifact::{fnv1a64, seal, section_tag, Artifact};
use stats::codec::{self, CodecError, Reader};
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use vscore::mc::manifest::{Manifest, ManifestEntry, ManifestError};
use vscore::mc::Shard;

/// Section tag for the shard meta (identity + accounting) payload.
pub const SHARD_META_TAG: u8 = b'P';
/// File name of the manifest inside a campaign directory.
pub const MANIFEST_NAME: &str = "manifest.svaf";

/// Why the campaign store could not persist or recover state.
#[derive(Debug)]
pub enum StoreError {
    /// A file operation failed.
    Io(std::io::Error),
    /// The manifest refused to open or append (corrupt, or bound to a
    /// different campaign).
    Manifest(ManifestError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "campaign store i/o error: {e}"),
            StoreError::Manifest(e) => write!(f, "campaign store: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ManifestError> for StoreError {
    fn from(e: ManifestError) -> Self {
        StoreError::Manifest(e)
    }
}

/// A manifest entry that could not be restored and will be recomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreSkip {
    /// The artifact file name the manifest pointed at.
    pub artifact: String,
    /// Why it was rejected.
    pub reason: String,
}

/// What a restore recovered: trustworthy payloads plus the entries it
/// refused.
#[derive(Debug, Default)]
pub struct Restored {
    /// Fully verified shard payloads, ready to merge.
    pub payloads: Vec<ShardPayload>,
    /// Entries demoted to recomputation, with reasons.
    pub skipped: Vec<RestoreSkip>,
}

/// The canonical campaign binding for `spec` — the identity the manifest
/// is locked to. Floats are rendered as exact bit patterns so two specs
/// bind equal iff every field is bit-identical.
#[must_use]
pub fn binding(spec: &FleetSpec) -> Vec<u8> {
    let mut s = format!(
        "circuit={};analysis={};seed={};total={}",
        spec.circuit,
        spec.analysis.as_deref().unwrap_or("-"),
        spec.seed,
        spec.total
    );
    match spec.histogram {
        Some((lo, hi, bins)) => {
            s.push_str(&format!(
                ";histogram={:016x}:{:016x}:{bins}",
                lo.to_bits(),
                hi.to_bits()
            ));
        }
        None => s.push_str(";histogram=-"),
    }
    match spec.tdigest_compression {
        Some(c) => s.push_str(&format!(";tdigest={:016x}", c.to_bits())),
        None => s.push_str(";tdigest=-"),
    }
    s.into_bytes()
}

/// Encodes a shard payload as sealed-artifact sections.
fn payload_sections(payload: &ShardPayload) -> Vec<Vec<u8>> {
    let mut meta = Vec::new();
    codec::put_header(&mut meta, SHARD_META_TAG);
    codec::put_u64(&mut meta, payload.shard.offset as u64);
    codec::put_u64(&mut meta, payload.shard.len as u64);
    codec::put_u64(&mut meta, payload.observed);
    codec::put_u64(&mut meta, payload.failures);
    let mut sections = vec![meta, payload.welford.clone()];
    if let Some(h) = &payload.histogram {
        sections.push(h.clone());
    }
    if let Some(t) = &payload.tdigest {
        sections.push(t.clone());
    }
    sections
}

/// Decodes a shard payload back out of a verified artifact.
fn payload_from_artifact(artifact: &Artifact) -> Result<ShardPayload, CodecError> {
    let meta = artifact
        .sections
        .first()
        .ok_or(CodecError::Invalid("shard artifact has no sections"))?;
    let mut r = Reader::with_header(meta, SHARD_META_TAG)?;
    let offset = r.take_u64()? as usize;
    let len = r.take_u64()? as usize;
    let observed = r.take_u64()?;
    let failures = r.take_u64()?;
    r.finish()?;
    let welford = artifact
        .section_with_tag(b'W')
        .ok_or(CodecError::Invalid(
            "shard artifact lacks a welford section",
        ))?
        .to_vec();
    Ok(ShardPayload {
        shard: Shard { offset, len },
        observed,
        failures,
        welford,
        histogram: artifact.section_with_tag(b'H').map(<[u8]>::to_vec),
        tdigest: artifact.section_with_tag(b'T').map(<[u8]>::to_vec),
    })
}

/// The durable half of a campaign: a directory of sealed shard artifacts
/// indexed by a crash-tolerant manifest.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
    manifest: Manifest,
}

impl CampaignStore {
    /// Opens (or initializes) the campaign store in `dir` for `spec`,
    /// creating the directory and manifest as needed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on directory/file failures;
    /// [`StoreError::Manifest`] when an existing manifest is corrupt or
    /// bound to a *different* campaign — resuming someone else's shards
    /// is refused, never silently merged.
    pub fn open(dir: &Path, spec: &FleetSpec) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        let manifest = Manifest::open_or_create(&dir.join(MANIFEST_NAME), &binding(spec))?;
        Ok(CampaignStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// Opens the store that owns `manifest_path` (its parent directory).
    ///
    /// # Errors
    ///
    /// As [`CampaignStore::open`].
    pub fn open_manifest(manifest_path: &Path, spec: &FleetSpec) -> Result<Self, StoreError> {
        let dir = manifest_path.parent().unwrap_or(Path::new("."));
        fs::create_dir_all(dir)?;
        let manifest = Manifest::open_or_create(manifest_path, &binding(spec))?;
        Ok(CampaignStore {
            dir: dir.to_path_buf(),
            manifest,
        })
    }

    /// The campaign directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest path inside the campaign directory.
    #[must_use]
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    /// Persists one completed shard durably: sealed artifact via temp
    /// file + rename, then the fsynced manifest entry.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if any write, rename, or manifest append fails.
    pub fn save(&mut self, payload: &ShardPayload) -> Result<(), StoreError> {
        let name = format!("shard-{}-{}.svaf", payload.shard.offset, payload.shard.len);
        let bytes = seal(payload_sections(payload));
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, self.dir.join(&name))?;
        self.manifest.record(ManifestEntry {
            offset: payload.shard.offset,
            len: payload.shard.len,
            digest: fnv1a64(&bytes),
            artifact: name,
        })?;
        Ok(())
    }

    /// Recovers every trustworthy shard payload the manifest knows about.
    /// Entries whose artifact is missing, corrupt, digest-mismatched, or
    /// inconsistent with the manifest are returned as skips (to be
    /// recomputed), never as payloads.
    #[must_use]
    pub fn restore(&self) -> Restored {
        let mut out = Restored::default();
        for entry in self.manifest.entries() {
            match self.restore_entry(entry) {
                Ok(payload) => out.payloads.push(payload),
                Err(reason) => out.skipped.push(RestoreSkip {
                    artifact: entry.artifact.clone(),
                    reason,
                }),
            }
        }
        out
    }

    /// Verifies and decodes one manifest entry's artifact.
    fn restore_entry(&self, entry: &ManifestEntry) -> Result<ShardPayload, String> {
        let path = self.dir.join(&entry.artifact);
        let bytes = fs::read(&path).map_err(|e| format!("unreadable artifact: {e}"))?;
        let found = fnv1a64(&bytes);
        if found != entry.digest {
            return Err(format!(
                "digest mismatch: manifest {:#018x}, file {found:#018x}",
                entry.digest
            ));
        }
        let artifact =
            Artifact::from_bytes(&bytes).map_err(|e| format!("artifact decode error: {e}"))?;
        let payload =
            payload_from_artifact(&artifact).map_err(|e| format!("shard payload error: {e}"))?;
        if payload.shard.offset != entry.offset || payload.shard.len != entry.len {
            return Err(format!(
                "shard identity mismatch: manifest says ({}, {}), artifact says {}",
                entry.offset, entry.len, payload.shard
            ));
        }
        Ok(payload)
    }
}

/// The first section of every shard artifact: its tag identifies the
/// container kind for tools like `statvs export`.
#[must_use]
pub fn is_shard_artifact(artifact: &Artifact) -> bool {
    artifact
        .sections
        .first()
        .and_then(|s| section_tag(s))
        .is_some_and(|t| t == SHARD_META_TAG)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::histogram::Histogram;
    use stats::sink::{MergeableSink, Sink, WelfordSink};

    fn spec() -> FleetSpec {
        FleetSpec {
            circuit: "device_idsat".to_string(),
            analysis: None,
            seed: 9,
            total: 40,
            histogram: Some((0.0, 1.0, 8)),
            tdigest_compression: None,
        }
    }

    fn payload(offset: usize, values: &[f64]) -> ShardPayload {
        let mut w = WelfordSink::new();
        let mut h = Histogram::new(0.0, 1.0, 8);
        for (i, &v) in values.iter().enumerate() {
            w.observe(offset + i, v);
            h.observe(offset + i, v);
        }
        w.finish();
        Sink::finish(&mut h);
        ShardPayload {
            shard: Shard {
                offset,
                len: values.len(),
            },
            observed: values.len() as u64,
            failures: 0,
            welford: w.to_bytes(),
            histogram: Some(MergeableSink::to_bytes(&h)),
            tdigest: None,
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("statvs_store_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_then_restore_round_trips_bit_exactly() {
        let dir = temp_dir("roundtrip");
        let a = payload(0, &[0.1, 0.4, 0.9]);
        let b = payload(3, &[0.2, 0.6]);
        let mut store = CampaignStore::open(&dir, &spec()).unwrap();
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        drop(store);

        let store = CampaignStore::open(&dir, &spec()).unwrap();
        let restored = store.restore();
        assert!(restored.skipped.is_empty());
        assert_eq!(restored.payloads, vec![a, b]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_different_campaign_cannot_adopt_the_store() {
        let dir = temp_dir("binding");
        let mut store = CampaignStore::open(&dir, &spec()).unwrap();
        store.save(&payload(0, &[0.5])).unwrap();
        drop(store);

        let mut other = spec();
        other.seed = 10;
        assert!(matches!(
            CampaignStore::open(&dir, &other),
            Err(StoreError::Manifest(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_or_missing_artifacts_become_skips_not_payloads() {
        let dir = temp_dir("skips");
        let mut store = CampaignStore::open(&dir, &spec()).unwrap();
        let a = payload(0, &[0.1, 0.2]);
        let b = payload(2, &[0.3, 0.4]);
        let c = payload(4, &[0.5, 0.6]);
        store.save(&a).unwrap();
        store.save(&b).unwrap();
        store.save(&c).unwrap();

        // Corrupt b's artifact in place; delete c's outright.
        let b_path = dir.join("shard-2-2.svaf");
        let mut bytes = fs::read(&b_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&b_path, &bytes).unwrap();
        fs::remove_file(dir.join("shard-4-2.svaf")).unwrap();

        let restored = store.restore();
        assert_eq!(restored.payloads, vec![a]);
        assert_eq!(restored.skipped.len(), 2);
        assert!(restored.skipped[0].reason.contains("digest mismatch"));
        assert!(restored.skipped[1].reason.contains("unreadable"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn binding_distinguishes_every_spec_field() {
        let base = spec();
        let mut variants = Vec::new();
        for f in [
            |s: &mut FleetSpec| s.circuit = "x".into(),
            |s: &mut FleetSpec| s.analysis = Some("dc".into()),
            |s: &mut FleetSpec| s.seed += 1,
            |s: &mut FleetSpec| s.total += 1,
            |s: &mut FleetSpec| s.histogram = Some((0.0, 2.0, 8)),
            |s: &mut FleetSpec| s.histogram = None,
            |s: &mut FleetSpec| s.tdigest_compression = Some(50.0),
        ] {
            let mut v = base.clone();
            f(&mut v);
            variants.push(binding(&v));
        }
        let b = binding(&base);
        for v in &variants {
            assert_ne!(&b, v);
        }
    }
}
