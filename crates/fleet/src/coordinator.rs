//! The fleet coordinator: dispatch → poll → retry → merge.
//!
//! A campaign is a set of disjoint `(offset, len)` shards of one
//! experiment's sample index space, executed against one or more
//! `statvs serve` workers. Because every sample is a pure function of
//! `(seed, index)`, a shard is *re-issuable for free*: a killed worker, a
//! straggler past its deadline, or a transient server failure all resolve
//! the same way — dispatch the identical shard to another worker, and the
//! bytes that eventually come back are the bytes the first attempt would
//! have produced. The coordinator exploits exactly that:
//!
//! ```text
//!   plan            dispatch                 poll                merge
//!   ─────────       ────────────────         ────────────        ─────────────
//!   0..N split  →   POST /experiments   →    GET /runs/{id}  →   dedupe by shard,
//!   into shards     round-robin over         capped exp.         sort by offset,
//!                   workers                  backoff             try_merge_from
//!                        ▲                      │
//!                        └── re-issue on ───────┘
//!                            kill / deadline / retryable failure
//! ```
//!
//! Retries and merge order cannot change the answer: duplicate results
//! dedupe by shard identity, and merging happens in sorted shard order
//! ([`crate::merge`]), so the merged state is deterministic across worker
//! counts, kill schedules, and retry orderings — the property the
//! `fleet_e2e` suite pins against a single-process reference.

use crate::client::{ClientError, HttpClient};
use crate::merge::{merge_payloads, MergeError, MergedResult, ShardPayload};
use crate::persist::{CampaignStore, StoreError};
use serve::json::{num, obj, s, Json};
use serve::store::hex_decode;
use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;
use std::time::{Duration, Instant};
use vscore::mc::{plan_shards, Shard};

/// What to run: the experiment identity shared by every shard.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Circuit template id (see the server's `GET /circuits`).
    pub circuit: String,
    /// Analysis kind; `None` uses the template's default.
    pub analysis: Option<String>,
    /// Base RNG seed shared by every shard.
    pub seed: u64,
    /// Total sample count of the campaign; sent with every shard so the
    /// server can reject inconsistent `(offset, len)` requests.
    pub total: usize,
    /// Explicit histogram `(lo, hi, bins)`; `None` uses the template
    /// default (identical across shards either way).
    pub histogram: Option<(f64, f64, usize)>,
    /// Explicit t-digest compression; `None` uses the server default.
    pub tdigest_compression: Option<f64>,
}

impl FleetSpec {
    /// The `POST /experiments` body for one shard of this campaign.
    #[must_use]
    pub fn post_body(&self, shard: Shard) -> String {
        let mut members = vec![
            ("circuit", s(&self.circuit)),
            ("seed", num(self.seed as f64)),
            (
                "shard",
                obj(vec![
                    ("offset", num(shard.offset as f64)),
                    ("len", num(shard.len as f64)),
                ]),
            ),
            ("total", num(self.total as f64)),
        ];
        if let Some(analysis) = &self.analysis {
            members.push(("analysis", s(analysis)));
        }
        if let Some((lo, hi, bins)) = self.histogram {
            members.push((
                "histogram",
                obj(vec![
                    ("lo", num(lo)),
                    ("hi", num(hi)),
                    ("bins", num(bins as f64)),
                ]),
            ));
        }
        if let Some(compression) = self.tdigest_compression {
            members.push(("tdigest", obj(vec![("compression", num(compression))])));
        }
        obj(members).to_text()
    }
}

/// Fault-tolerance tunables.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Dispatch attempts per shard before the campaign fails; each
    /// attempt targets the next worker round-robin, so consecutive
    /// retries of one shard land on different workers.
    pub max_attempts: usize,
    /// Per-shard wall-clock deadline from dispatch; a shard still
    /// unfinished past it is a straggler and gets re-issued.
    pub shard_deadline: Duration,
    /// First poll interval after a dispatch.
    pub poll_initial: Duration,
    /// Poll-interval cap for the exponential backoff.
    pub poll_max: Duration,
    /// Consecutive failed polls (connect refused, timeout, truncation)
    /// before the worker is presumed dead and the shard re-issued.
    pub max_poll_faults: usize,
    /// Connect/I-O timeouts for every exchange.
    pub client: HttpClient,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            max_attempts: 5,
            shard_deadline: Duration::from_secs(300),
            poll_initial: Duration::from_millis(25),
            poll_max: Duration::from_millis(500),
            max_poll_faults: 3,
            client: HttpClient::default(),
        }
    }
}

/// Progress events, for CLI narration and for tests asserting that
/// retries actually happened.
#[derive(Debug, Clone)]
pub enum FleetEvent {
    /// A shard was posted to a worker (`attempt` counts from 1).
    Dispatched {
        /// The shard.
        shard: Shard,
        /// Which worker took it.
        worker: SocketAddr,
        /// Server-assigned run id.
        run_id: u64,
        /// Dispatch attempt number for this shard.
        attempt: usize,
    },
    /// A shard's payload was collected.
    Completed {
        /// The shard.
        shard: Shard,
        /// The worker that finished it.
        worker: SocketAddr,
    },
    /// A shard attempt was abandoned and will be re-issued.
    Retrying {
        /// The shard.
        shard: Shard,
        /// The worker the failed attempt targeted, when one was reached.
        worker: Option<SocketAddr>,
        /// Attempts consumed so far.
        attempt: usize,
        /// Why the attempt was abandoned.
        reason: String,
    },
    /// A shard's payload was recovered from the campaign store instead of
    /// being dispatched — the resume path.
    Restored {
        /// The shard.
        shard: Shard,
    },
    /// A campaign-store entry was rejected (missing, corrupt, or
    /// mismatched artifact); its shard will be recomputed.
    RestoreSkipped {
        /// The artifact file the manifest pointed at.
        artifact: String,
        /// Why it was rejected.
        reason: String,
    },
}

/// Why a campaign failed.
#[derive(Debug)]
pub enum FleetError {
    /// No workers were configured.
    NoWorkers,
    /// The shard plan is unusable (zero-length or overlapping shards,
    /// shards escaping `0..total`).
    BadPlan(String),
    /// A worker rejected the spec or reported a non-retryable failure;
    /// re-issuing the identical shard cannot succeed.
    Fatal {
        /// The shard that hit the failure.
        shard: Shard,
        /// The server's reason.
        reason: String,
    },
    /// A shard burned through every dispatch attempt.
    Exhausted {
        /// The shard that gave up.
        shard: Shard,
        /// Attempts consumed.
        attempts: usize,
        /// The last failure observed.
        last_error: String,
    },
    /// The collected payloads refused to merge (corrupt worker output).
    Merge(MergeError),
    /// The campaign store failed to persist or recover durable state.
    Store(StoreError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoWorkers => write!(f, "no workers configured"),
            FleetError::BadPlan(why) => write!(f, "bad shard plan: {why}"),
            FleetError::Fatal { shard, reason } => {
                write!(f, "shard {shard} failed fatally: {reason}")
            }
            FleetError::Exhausted {
                shard,
                attempts,
                last_error,
            } => write!(
                f,
                "shard {shard} exhausted its {attempts} attempts; last error: {last_error}"
            ),
            FleetError::Merge(e) => write!(f, "merge refused: {e}"),
            FleetError::Store(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<MergeError> for FleetError {
    fn from(e: MergeError) -> Self {
        FleetError::Merge(e)
    }
}

impl From<StoreError> for FleetError {
    fn from(e: StoreError) -> Self {
        FleetError::Store(e)
    }
}

/// A finished campaign: the merged result plus dispatch accounting.
#[derive(Debug)]
pub struct FleetReport {
    /// The merged sketches and sample accounting.
    pub merged: MergedResult,
    /// Successful dispatches (`202` responses) over the campaign.
    pub dispatches: usize,
    /// Dispatches beyond the first per shard — the retry count.
    pub reissues: usize,
    /// Shards recovered from the campaign store instead of dispatched.
    pub restored: usize,
    /// Wall-clock duration of the campaign.
    pub wall: Duration,
}

/// Per-shard lifecycle inside the coordinator loop.
enum SlotState {
    /// Waiting to be dispatched (again); `not_before` implements the
    /// capped dispatch backoff.
    Pending { not_before: Instant },
    /// Posted; being polled.
    InFlight {
        worker: usize,
        run_id: u64,
        dispatched: Instant,
        next_poll: Instant,
        interval: Duration,
        poll_faults: usize,
    },
    /// Payload collected.
    Done,
}

struct Slot {
    shard: Shard,
    state: SlotState,
    attempts: usize,
    last_error: String,
}

/// How one dispatch attempt failed.
enum DispatchFault {
    /// Worth retrying on another worker.
    Transient(String),
    /// The spec itself was rejected; no retry can succeed.
    Fatal(String),
}

/// What one poll learned.
enum PollVerdict {
    /// The run finished; payload collected.
    Done(Box<ShardPayload>),
    /// Still queued/running.
    NotYet,
    /// The attempt is dead (run failed retryably, run lost, garbage
    /// payload); re-issue now.
    Reissue(String),
    /// The server reported a non-retryable failure.
    Fatal(String),
    /// The worker could not be reached; counts toward
    /// [`FleetConfig::max_poll_faults`].
    Unreachable(String),
}

/// The coordinator: a worker list plus fault-tolerance configuration.
pub struct Coordinator {
    workers: Vec<SocketAddr>,
    cfg: FleetConfig,
}

impl Coordinator {
    /// Builds a coordinator over `workers`.
    ///
    /// # Errors
    ///
    /// [`FleetError::NoWorkers`] when the list is empty.
    pub fn new(workers: Vec<SocketAddr>, cfg: FleetConfig) -> Result<Self, FleetError> {
        if workers.is_empty() {
            return Err(FleetError::NoWorkers);
        }
        Ok(Coordinator { workers, cfg })
    }

    /// The configured workers.
    #[must_use]
    pub fn workers(&self) -> &[SocketAddr] {
        &self.workers
    }

    /// Runs a campaign over a balanced plan of `shard_count` shards.
    ///
    /// # Errors
    ///
    /// See [`FleetError`].
    pub fn run(&self, spec: &FleetSpec, shard_count: usize) -> Result<FleetReport, FleetError> {
        self.run_shards(spec, &plan_shards(spec.total, shard_count), &mut |_| {})
    }

    /// Runs a campaign over an explicit shard list, reporting progress
    /// through `observe`. Duplicate `(offset, len)` entries are deduped;
    /// distinct shards must be disjoint and inside `0..total`.
    ///
    /// # Errors
    ///
    /// See [`FleetError`].
    pub fn run_shards(
        &self,
        spec: &FleetSpec,
        shards: &[Shard],
        observe: &mut dyn FnMut(&FleetEvent),
    ) -> Result<FleetReport, FleetError> {
        self.run_campaign(spec, shards, None, observe)
    }

    /// Runs a campaign backed by a [`CampaignStore`]: shards already
    /// durable in the store are restored instead of dispatched, and every
    /// newly completed shard is persisted before it counts — so a
    /// `SIGKILL` at any instant loses at most the shards in flight, and a
    /// restart with the same store recomputes only those. Determinism
    /// makes the resumed merge bit-identical to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// See [`FleetError`]; additionally [`FleetError::Store`] when
    /// persisting a completed shard fails (durability is the point — a
    /// store that cannot be written must not be silently skipped).
    pub fn run_shards_resumable(
        &self,
        spec: &FleetSpec,
        shards: &[Shard],
        store: &mut CampaignStore,
        observe: &mut dyn FnMut(&FleetEvent),
    ) -> Result<FleetReport, FleetError> {
        self.run_campaign(spec, shards, Some(store), observe)
    }

    /// The dispatch → poll → retry loop shared by the plain and
    /// resumable entry points.
    fn run_campaign(
        &self,
        spec: &FleetSpec,
        shards: &[Shard],
        mut store: Option<&mut CampaignStore>,
        observe: &mut dyn FnMut(&FleetEvent),
    ) -> Result<FleetReport, FleetError> {
        let start = Instant::now();
        let distinct = validate_plan(shards, spec.total)?;
        let mut slots: Vec<Slot> = distinct
            .into_iter()
            .map(|shard| Slot {
                shard,
                state: SlotState::Pending { not_before: start },
                attempts: 0,
                last_error: String::new(),
            })
            .collect();

        let mut payloads: Vec<ShardPayload> = Vec::with_capacity(slots.len());
        let mut restored = 0usize;
        if let Some(store) = store.as_deref_mut() {
            let recovered = store.restore();
            for skip in recovered.skipped {
                observe(&FleetEvent::RestoreSkipped {
                    artifact: skip.artifact,
                    reason: skip.reason,
                });
            }
            // Only payloads whose shard is exactly in this plan are
            // usable; anything else (a different partition) is ignored
            // and recomputed.
            let by_shard: BTreeMap<Shard, ShardPayload> = recovered
                .payloads
                .into_iter()
                .map(|p| (p.shard, p))
                .collect();
            for slot in &mut slots {
                if let Some(payload) = by_shard.get(&slot.shard) {
                    payloads.push(payload.clone());
                    slot.state = SlotState::Done;
                    restored += 1;
                    observe(&FleetEvent::Restored { shard: slot.shard });
                }
            }
        }

        let mut cursor = 0usize; // round-robin worker cursor
        let mut dispatches = 0usize;
        let mut reissues = 0usize;
        let mut remaining = slots.len() - restored;

        while remaining > 0 {
            let now = Instant::now();
            // The earliest instant any sleeping slot wants attention.
            let mut wake: Option<Instant> = None;
            let track = |t: Instant, wake: &mut Option<Instant>| {
                *wake = Some(wake.map_or(t, |w: Instant| w.min(t)));
            };

            for slot in &mut slots {
                match slot.state {
                    SlotState::Done => {}
                    SlotState::Pending { not_before } => {
                        if now < not_before {
                            track(not_before, &mut wake);
                            continue;
                        }
                        if slot.attempts >= self.cfg.max_attempts {
                            return Err(FleetError::Exhausted {
                                shard: slot.shard,
                                attempts: slot.attempts,
                                last_error: slot.last_error.clone(),
                            });
                        }
                        let worker = cursor % self.workers.len();
                        cursor += 1;
                        slot.attempts += 1;
                        match self.dispatch(self.workers[worker], spec, slot.shard) {
                            Ok(run_id) => {
                                dispatches += 1;
                                if slot.attempts > 1 {
                                    reissues += 1;
                                }
                                observe(&FleetEvent::Dispatched {
                                    shard: slot.shard,
                                    worker: self.workers[worker],
                                    run_id,
                                    attempt: slot.attempts,
                                });
                                let next_poll = now + self.cfg.poll_initial;
                                slot.state = SlotState::InFlight {
                                    worker,
                                    run_id,
                                    dispatched: now,
                                    next_poll,
                                    interval: self.cfg.poll_initial,
                                    poll_faults: 0,
                                };
                                track(next_poll, &mut wake);
                            }
                            Err(DispatchFault::Fatal(reason)) => {
                                return Err(FleetError::Fatal {
                                    shard: slot.shard,
                                    reason,
                                });
                            }
                            Err(DispatchFault::Transient(reason)) => {
                                observe(&FleetEvent::Retrying {
                                    shard: slot.shard,
                                    worker: Some(self.workers[worker]),
                                    attempt: slot.attempts,
                                    reason: reason.clone(),
                                });
                                slot.last_error = reason;
                                let not_before = now + dispatch_backoff(&self.cfg, slot.attempts);
                                slot.state = SlotState::Pending { not_before };
                                track(not_before, &mut wake);
                            }
                        }
                    }
                    SlotState::InFlight {
                        worker,
                        run_id,
                        dispatched,
                        next_poll,
                        interval,
                        poll_faults,
                    } => {
                        if now < next_poll {
                            track(next_poll, &mut wake);
                            continue;
                        }
                        let addr = self.workers[worker];
                        let reissue = |slot: &mut Slot,
                                       observe: &mut dyn FnMut(&FleetEvent),
                                       reason: String,
                                       now: Instant| {
                            observe(&FleetEvent::Retrying {
                                shard: slot.shard,
                                worker: Some(addr),
                                attempt: slot.attempts,
                                reason: reason.clone(),
                            });
                            slot.last_error = reason;
                            slot.state = SlotState::Pending { not_before: now };
                        };
                        match self.poll(addr, run_id, slot.shard) {
                            PollVerdict::Done(payload) => {
                                // Persist before counting the shard done:
                                // a crash after this line can restore it,
                                // a crash before recomputes it — never a
                                // completed-but-lost shard.
                                if let Some(store) = store.as_deref_mut() {
                                    store.save(&payload)?;
                                }
                                payloads.push(*payload);
                                slot.state = SlotState::Done;
                                remaining -= 1;
                                observe(&FleetEvent::Completed {
                                    shard: slot.shard,
                                    worker: addr,
                                });
                            }
                            PollVerdict::NotYet => {
                                if now.duration_since(dispatched) > self.cfg.shard_deadline {
                                    reissue(
                                        slot,
                                        observe,
                                        format!(
                                            "straggler: no result within the {:?} deadline",
                                            self.cfg.shard_deadline
                                        ),
                                        now,
                                    );
                                    continue;
                                }
                                let interval = (interval * 2).min(self.cfg.poll_max);
                                let next_poll = now + interval;
                                slot.state = SlotState::InFlight {
                                    worker,
                                    run_id,
                                    dispatched,
                                    next_poll,
                                    interval,
                                    poll_faults: 0,
                                };
                                track(next_poll, &mut wake);
                            }
                            PollVerdict::Reissue(reason) => reissue(slot, observe, reason, now),
                            PollVerdict::Fatal(reason) => {
                                return Err(FleetError::Fatal {
                                    shard: slot.shard,
                                    reason,
                                });
                            }
                            PollVerdict::Unreachable(reason) => {
                                let poll_faults = poll_faults + 1;
                                if poll_faults >= self.cfg.max_poll_faults {
                                    reissue(
                                        slot,
                                        observe,
                                        format!("worker presumed dead: {reason}"),
                                        now,
                                    );
                                    continue;
                                }
                                let next_poll = now + interval;
                                slot.state = SlotState::InFlight {
                                    worker,
                                    run_id,
                                    dispatched,
                                    next_poll,
                                    interval,
                                    poll_faults,
                                };
                                track(next_poll, &mut wake);
                            }
                        }
                    }
                }
            }

            if remaining > 0 {
                if let Some(wake) = wake {
                    let pause = wake.saturating_duration_since(Instant::now());
                    std::thread::sleep(pause.min(Duration::from_millis(100)));
                }
            }
        }

        let merged = merge_payloads(payloads)?;
        Ok(FleetReport {
            merged,
            dispatches,
            reissues,
            restored,
            wall: start.elapsed(),
        })
    }

    /// One dispatch attempt against `addr`: `POST /experiments`, expect a
    /// `202` with a run id. A `400` means the spec itself is wrong — no
    /// worker will ever accept it, so it is fatal; everything else
    /// (transport faults, `503` queue-full, `5xx`) is load or a dead
    /// worker and worth retrying elsewhere.
    fn dispatch(
        &self,
        addr: SocketAddr,
        spec: &FleetSpec,
        shard: Shard,
    ) -> Result<u64, DispatchFault> {
        let body = spec.post_body(shard);
        match self
            .cfg
            .client
            .exchange(addr, "POST", "/experiments", Some(&body))
        {
            Ok((202, reply)) => reply
                .get("run")
                .and_then(|r| r.get("id"))
                .and_then(Json::as_u64)
                .ok_or_else(|| DispatchFault::Transient("202 reply lacked a run id".to_string())),
            Ok((400, reply)) => Err(DispatchFault::Fatal(error_message(&reply))),
            Ok((status, reply)) => Err(DispatchFault::Transient(format!(
                "dispatch got status {status}: {}",
                error_message(&reply)
            ))),
            Err(e) => Err(DispatchFault::Transient(e.to_string())),
        }
    }

    /// One poll of `GET /runs/{run_id}` on `addr`.
    fn poll(&self, addr: SocketAddr, run_id: u64, shard: Shard) -> PollVerdict {
        match self
            .cfg
            .client
            .exchange(addr, "GET", &format!("/runs/{run_id}"), None)
        {
            Ok((200, body)) => classify_run(&body, shard),
            // The worker restarted and lost its run store: the run id is
            // gone, but the worker is healthy — re-issue.
            Ok((404, _)) => PollVerdict::Reissue(format!("worker lost run {run_id} (404)")),
            Ok((status, body)) => PollVerdict::Reissue(format!(
                "unexpected poll status {status}: {}",
                body.to_text()
            )),
            Err(
                e @ (ClientError::Connect(_)
                | ClientError::Timeout
                | ClientError::Truncated
                | ClientError::Io(_)),
            ) => PollVerdict::Unreachable(e.to_string()),
            Err(e) => PollVerdict::Reissue(e.to_string()),
        }
    }
}

/// Pulls the human-readable message out of a server error envelope,
/// falling back to the raw JSON when the envelope shape is unexpected.
fn error_message(body: &Json) -> String {
    body.get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .map_or_else(|| body.to_text(), str::to_string)
}

/// Capped exponential backoff between dispatch attempts of one shard.
fn dispatch_backoff(cfg: &FleetConfig, attempts: usize) -> Duration {
    let factor = 1u32 << attempts.min(6) as u32;
    (cfg.poll_initial * factor).min(cfg.poll_max)
}

/// Validates and dedupes a shard plan: non-empty, every shard non-empty
/// and inside `0..total`, distinct shards disjoint. Returns the sorted
/// distinct shards.
fn validate_plan(shards: &[Shard], total: usize) -> Result<Vec<Shard>, FleetError> {
    if shards.is_empty() {
        return Err(FleetError::BadPlan("no shards".to_string()));
    }
    let distinct: BTreeSet<Shard> = shards.iter().copied().collect();
    let sorted: Vec<Shard> = distinct.into_iter().collect();
    for shard in &sorted {
        if shard.len == 0 {
            return Err(FleetError::BadPlan(format!("zero-length shard {shard}")));
        }
        if shard.end() > total {
            return Err(FleetError::BadPlan(format!(
                "shard {shard} escapes the campaign's 0..{total} index space"
            )));
        }
    }
    for pair in sorted.windows(2) {
        if pair[1].offset < pair[0].end() {
            return Err(FleetError::BadPlan(format!(
                "shards {} and {} overlap",
                pair[0], pair[1]
            )));
        }
    }
    Ok(sorted)
}

/// Classifies a `200` run envelope into a poll verdict.
fn classify_run(body: &Json, shard: Shard) -> PollVerdict {
    let Some(run) = body.get("run") else {
        return PollVerdict::Reissue("poll response lacks a run envelope".to_string());
    };
    match run.get("status").and_then(Json::as_str) {
        Some("done") => match payload_from_run(run, shard) {
            Ok(payload) => PollVerdict::Done(Box::new(payload)),
            // A garbage payload from this worker may be fine elsewhere.
            Err(why) => PollVerdict::Reissue(format!("garbage payload: {why}")),
        },
        Some("failed") => {
            let error = run.get("error");
            let message = error
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("run failed without a reason")
                .to_string();
            // Missing retryable information is treated as retryable: only
            // an explicit fatal verdict should abort a whole campaign.
            let retryable = error
                .and_then(|e| e.get("retryable"))
                .and_then(Json::as_bool)
                .unwrap_or(true);
            if retryable {
                PollVerdict::Reissue(format!("run failed (retryable): {message}"))
            } else {
                PollVerdict::Fatal(message)
            }
        }
        Some("queued" | "running") => PollVerdict::NotYet,
        other => PollVerdict::Reissue(format!("unknown run status {other:?}")),
    }
}

/// Extracts a [`ShardPayload`] from a `done` run envelope.
fn payload_from_run(run: &Json, shard: Shard) -> Result<ShardPayload, String> {
    let result = run.get("result").ok_or("done run lacks a result")?;
    let observed = result
        .get("observed")
        .and_then(Json::as_u64)
        .ok_or("result lacks `observed`")?;
    let failures = result
        .get("failures")
        .and_then(Json::as_u64)
        .ok_or("result lacks `failures`")?;
    let sketches = result.get("sketches").ok_or("result lacks sketches")?;
    if sketches.get("encoding").and_then(Json::as_str) != Some("hex") {
        return Err("unknown sketch encoding".to_string());
    }
    let decode = |name: &str| -> Result<Option<Vec<u8>>, String> {
        match sketches.get(name).and_then(Json::as_str) {
            None => Ok(None),
            Some(hex) => hex_decode(hex)
                .map(Some)
                .map_err(|e| format!("{name}: {e}")),
        }
    };
    let welford = decode("welford")?.ok_or("result lacks the welford sketch")?;
    Ok(ShardPayload {
        shard,
        observed,
        failures,
        welford,
        histogram: decode("histogram")?,
        tdigest: decode("tdigest")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> FleetSpec {
        FleetSpec {
            circuit: "device_idsat".to_string(),
            analysis: None,
            seed: 7,
            total: 100,
            histogram: Some((0.0, 2e-3, 64)),
            tdigest_compression: None,
        }
    }

    #[test]
    fn post_body_carries_shard_and_total() {
        let body = spec().post_body(Shard {
            offset: 40,
            len: 10,
        });
        let json = Json::parse(&body).unwrap();
        assert_eq!(
            json.get("circuit").and_then(Json::as_str),
            Some("device_idsat")
        );
        assert_eq!(json.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(json.get("total").and_then(Json::as_u64), Some(100));
        let shard = json.get("shard").unwrap();
        assert_eq!(shard.get("offset").and_then(Json::as_u64), Some(40));
        assert_eq!(shard.get("len").and_then(Json::as_u64), Some(10));
        assert_eq!(
            json.get("histogram")
                .and_then(|h| h.get("bins"))
                .and_then(Json::as_u64),
            Some(64)
        );
        assert!(json.get("tdigest").is_none());
        assert!(json.get("analysis").is_none());
    }

    #[test]
    fn plans_are_validated_and_deduped() {
        let a = Shard { offset: 0, len: 50 };
        let b = Shard {
            offset: 50,
            len: 50,
        };
        // Duplicates collapse; order does not matter.
        let sorted = validate_plan(&[b, a, b], 100).unwrap();
        assert_eq!(sorted, vec![a, b]);

        assert!(matches!(
            validate_plan(&[], 100),
            Err(FleetError::BadPlan(_))
        ));
        assert!(matches!(
            validate_plan(&[Shard { offset: 0, len: 0 }], 100),
            Err(FleetError::BadPlan(_))
        ));
        assert!(matches!(
            validate_plan(
                &[Shard {
                    offset: 90,
                    len: 20
                }],
                100
            ),
            Err(FleetError::BadPlan(_))
        ));
        assert!(matches!(
            validate_plan(
                &[
                    Shard { offset: 0, len: 60 },
                    Shard {
                        offset: 50,
                        len: 50
                    }
                ],
                110
            ),
            Err(FleetError::BadPlan(_))
        ));
    }

    #[test]
    fn run_classification_covers_the_lifecycle() {
        let shard = Shard { offset: 0, len: 5 };
        let parse = |text: &str| Json::parse(text).unwrap();

        let queued = parse(r#"{"run": {"status": "queued"}}"#);
        assert!(matches!(classify_run(&queued, shard), PollVerdict::NotYet));
        let running = parse(r#"{"run": {"status": "running"}}"#);
        assert!(matches!(classify_run(&running, shard), PollVerdict::NotYet));

        let retryable = parse(
            r#"{"run": {"status": "failed",
                 "error": {"message": "queue hiccup", "retryable": true}}}"#,
        );
        assert!(matches!(
            classify_run(&retryable, shard),
            PollVerdict::Reissue(_)
        ));

        let fatal = parse(
            r#"{"run": {"status": "failed",
                 "error": {"message": "unknown circuit", "retryable": false}}}"#,
        );
        assert!(matches!(classify_run(&fatal, shard), PollVerdict::Fatal(_)));

        // Missing retryable info defaults to retryable: only an explicit
        // fatal verdict may abort a campaign.
        let bare = parse(r#"{"run": {"status": "failed"}}"#);
        assert!(matches!(
            classify_run(&bare, shard),
            PollVerdict::Reissue(_)
        ));

        let garbage = parse(r#"{"run": {"status": "done", "result": {"observed": "x"}}}"#);
        assert!(matches!(
            classify_run(&garbage, shard),
            PollVerdict::Reissue(_)
        ));
        let alien = parse(r#"{"weather": "fine"}"#);
        assert!(matches!(
            classify_run(&alien, shard),
            PollVerdict::Reissue(_)
        ));
    }

    #[test]
    fn done_envelopes_decode_into_payloads() {
        let shard = Shard { offset: 10, len: 4 };
        let run = Json::parse(
            r#"{"status": "done", "result": {
                 "observed": 3, "failures": 1,
                 "sketches": {"encoding": "hex", "welford": "00ff"}}}"#,
        )
        .unwrap();
        let payload = payload_from_run(&run, shard).unwrap();
        assert_eq!(payload.observed, 3);
        assert_eq!(payload.failures, 1);
        assert_eq!(payload.welford, vec![0x00, 0xff]);
        assert!(payload.histogram.is_none());

        let bad_encoding = Json::parse(
            r#"{"status": "done", "result": {
                 "observed": 3, "failures": 1,
                 "sketches": {"encoding": "base64", "welford": "AA=="}}}"#,
        )
        .unwrap();
        assert!(payload_from_run(&bad_encoding, shard).is_err());

        let bad_hex = Json::parse(
            r#"{"status": "done", "result": {
                 "observed": 3, "failures": 1,
                 "sketches": {"encoding": "hex", "welford": "zz"}}}"#,
        )
        .unwrap();
        assert!(payload_from_run(&bad_hex, shard).is_err());
    }

    #[test]
    fn empty_worker_lists_are_rejected() {
        assert!(matches!(
            Coordinator::new(Vec::new(), FleetConfig::default()),
            Err(FleetError::NoWorkers)
        ));
    }

    #[test]
    fn dispatch_backoff_is_capped() {
        let cfg = FleetConfig::default();
        assert_eq!(dispatch_backoff(&cfg, 1), Duration::from_millis(50));
        assert_eq!(dispatch_backoff(&cfg, 2), Duration::from_millis(100));
        assert_eq!(dispatch_backoff(&cfg, 100), cfg.poll_max);
    }
}
