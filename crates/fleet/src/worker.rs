//! Spawning local `statvs serve` workers as child processes.
//!
//! `statvs fleet --spawn N` (and the fault-injection test suite) boots
//! its own worker pool: each worker is a real `statvs serve` process on
//! an ephemeral loopback port, discovered by parsing the server's
//! startup line from its stdout. Children are killed on drop, so a
//! coordinator crash cannot leak simulator processes — and a test can
//! call [`LocalWorker::kill`] mid-shard to inject exactly the fault a
//! real fleet sees when a machine dies.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::Path;
use std::process::{Child, Command, Stdio};

/// The marker `statvs serve` prints once its listener is bound.
const READY_MARKER: &str = "listening on http://";

/// One spawned `statvs serve` child process and its bound address.
#[derive(Debug)]
pub struct LocalWorker {
    child: Child,
    addr: SocketAddr,
}

impl LocalWorker {
    /// Spawns `binary serve --port 0 --workers threads` and blocks until
    /// the child prints its listening address (or exits).
    ///
    /// # Errors
    ///
    /// `std::io::Error` when the child cannot be spawned, exits before
    /// announcing its address, or prints an unparseable address.
    pub fn spawn(binary: &Path, threads: usize) -> std::io::Result<LocalWorker> {
        let mut child = Command::new(binary)
            .args(["serve", "--port", "0", "--workers", &threads.to_string()])
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        // The ready line is the first (and only) thing the server prints;
        // EOF before it means the child died during boot.
        for line in &mut lines {
            let line = line?;
            if let Some(rest) = line.split(READY_MARKER).nth(1) {
                let addr_text = rest.split_whitespace().next().unwrap_or("");
                let addr = addr_text.parse().map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("unparseable worker address `{addr_text}`"),
                    )
                })?;
                // Leave the remaining pipe open; the server prints nothing
                // further, so the child can never block on a full pipe.
                return Ok(LocalWorker { child, addr });
            }
        }
        let _ = child.kill();
        let _ = child.wait();
        Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "worker exited before announcing its address",
        ))
    }

    /// The worker's bound loopback address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Kills the child process immediately — the fault-injection
    /// primitive: an in-flight shard dies with the worker, exactly as it
    /// would when a fleet machine goes down mid-run.
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Whether the child is still running.
    pub fn is_alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for LocalWorker {
    fn drop(&mut self) {
        self.kill();
    }
}
