//! Fault-tolerant fleet coordination for `statvs serve` workers.
//!
//! This crate is the client half of the serve protocol: it takes one
//! experiment (circuit, seed, total sample count), splits its sample
//! index space into disjoint `(offset, len)` shards, dispatches them to
//! one or more workers over HTTP, polls with capped exponential backoff,
//! re-issues shards whose workers die, stall, or fail retryably, and
//! merges the returned sketch bytes into a single campaign result.
//!
//! Everything rests on the determinism contract from `vscore::mc`: each
//! Monte Carlo sample is a pure function of `(seed, index)`, so the union
//! of disjoint shard streams *is* the single-process stream, and a
//! re-issued shard reproduces its first attempt byte for byte. That turns
//! fault tolerance into bookkeeping — the merged histogram after any
//! number of kills and retries is byte-identical to an unpartitioned run
//! (`tests/fleet_e2e.rs` in the root package pins exactly that).
//!
//! Modules:
//!
//! - [`client`] — a zero-dependency HTTP/1.1 client over `TcpStream`,
//!   with typed transport faults (refused, timeout, truncated).
//! - [`worker`] — spawn/kill local `statvs serve` child processes; the
//!   fault-injection primitive for the e2e suite.
//! - [`coordinator`] — the dispatch → poll → retry state machine.
//! - [`merge`] — order-independent, duplicate-tolerant payload merging.
//! - [`persist`] — the durable campaign store (sealed shard artifacts +
//!   crash-tolerant manifest) behind
//!   [`Coordinator::run_shards_resumable`]: a killed campaign restarted
//!   over the same store recomputes only the shards that were in flight,
//!   and the resumed merge is bit-identical to an uninterrupted run.

pub mod client;
pub mod coordinator;
pub mod merge;
pub mod persist;
pub mod worker;

pub use client::{ClientError, HttpClient};
pub use coordinator::{Coordinator, FleetConfig, FleetError, FleetEvent, FleetReport, FleetSpec};
pub use merge::{merge_payloads, MergeError, MergedResult, ShardPayload};
pub use persist::{CampaignStore, RestoreSkip, Restored, StoreError};
pub use worker::LocalWorker;
