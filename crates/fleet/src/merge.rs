//! Deterministic merging of shard sketch payloads.
//!
//! The coordinator's correctness story ends here: shard results arrive in
//! whatever order workers, retries, and the network produce, possibly
//! with duplicates (a re-issued shard whose first attempt turned out to
//! have finished after all). [`merge_payloads`] makes the outcome
//! independent of all of that by
//!
//! 1. **deduplicating** by shard identity `(offset, len)` — determinism
//!    guarantees a re-run of the same shard is byte-identical, so
//!    duplicates carry no information (and a *non*-identical duplicate is
//!    a corrupt worker, reported as an error, never silently merged);
//! 2. **validating** every payload (sample accounting must balance,
//!    sketch bytes must decode, shards must not overlap);
//! 3. **merging in sorted shard order**, so the accumulated
//!    floating-point state never depends on completion order.
//!
//! Histogram merges are integer adds, so the merged histogram is
//! *byte-identical* to a single-process run over the union; Welford
//! count/extrema are bit-exact with moments equal to rounding (the
//! documented `Welford::merge` caveat); t-digest quantiles agree within
//! the documented rank-error bound.

use stats::histogram::Histogram;
use stats::sink::{MergeableSink, WelfordSink};
use stats::{TDigest, Welford};
use std::collections::BTreeMap;
use vscore::mc::Shard;

/// One shard's result as shipped by a worker: the sample accounting plus
/// the serialized sketch states.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPayload {
    /// Which shard of the index space this is — the dedupe key.
    pub shard: Shard,
    /// Samples that produced a metric value.
    pub observed: u64,
    /// Samples whose solve failed (counted, not fatal).
    pub failures: u64,
    /// Serialized `Welford` moment state (always present).
    pub welford: Vec<u8>,
    /// Serialized `Histogram` state, when the run requested it.
    pub histogram: Option<Vec<u8>>,
    /// Serialized `TDigest` state, when the run requested it.
    pub tdigest: Option<Vec<u8>>,
}

/// The merged campaign result.
#[derive(Debug, Clone)]
pub struct MergedResult {
    /// Samples that produced a metric value, across all distinct shards.
    pub observed: u64,
    /// Failed samples across all distinct shards.
    pub failures: u64,
    /// Merged moment state.
    pub moments: Welford,
    /// Merged histogram, when every payload carried one.
    pub histogram: Option<Histogram>,
    /// Merged t-digest, when every payload carried one.
    pub tdigest: Option<TDigest>,
    /// Distinct shards merged.
    pub shards: usize,
    /// Duplicate payloads dropped by the `(offset, len)` dedupe.
    pub deduplicated: usize,
}

/// Why a set of shard payloads refused to merge. Every variant is a
/// worker or coordinator bug surfaced loudly instead of silently folded
/// into a wrong result.
#[derive(Debug, Clone, PartialEq)]
pub enum MergeError {
    /// Nothing to merge.
    Empty,
    /// Two payloads for the same shard disagree — a worker returned
    /// garbage (determinism makes honest re-runs byte-identical).
    InconsistentDuplicate(Shard),
    /// Two distinct shards overlap; merging would double-count samples.
    Overlap(Shard, Shard),
    /// A payload's accounting does not balance (`observed + failures !=
    /// len`, or the decoded sketch disagrees with the declared counts).
    BadAccounting(Shard, String),
    /// Sketch bytes failed to decode or to merge.
    BadSketch(Shard, String),
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "no shard payloads to merge"),
            MergeError::InconsistentDuplicate(s) => {
                write!(f, "shard {s} was returned twice with different bytes")
            }
            MergeError::Overlap(a, b) => write!(f, "shards {a} and {b} overlap"),
            MergeError::BadAccounting(s, why) => write!(f, "shard {s}: {why}"),
            MergeError::BadSketch(s, why) => write!(f, "shard {s}: {why}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Merges shard payloads into one campaign result; see the module docs
/// for the determinism contract.
///
/// # Errors
///
/// [`MergeError`] on duplicates that disagree, overlapping shards,
/// unbalanced accounting, or undecodable/unmergeable sketch bytes.
pub fn merge_payloads(
    payloads: impl IntoIterator<Item = ShardPayload>,
) -> Result<MergedResult, MergeError> {
    // Dedupe by shard identity; BTreeMap gives the sorted iteration the
    // deterministic-merge argument needs.
    let mut distinct: BTreeMap<Shard, ShardPayload> = BTreeMap::new();
    let mut deduplicated = 0;
    for payload in payloads {
        match distinct.get(&payload.shard) {
            None => {
                distinct.insert(payload.shard, payload);
            }
            Some(first) if *first == payload => deduplicated += 1,
            Some(_) => return Err(MergeError::InconsistentDuplicate(payload.shard)),
        }
    }
    if distinct.is_empty() {
        return Err(MergeError::Empty);
    }

    // Disjointness: consecutive sorted shards must not overlap.
    let shards: Vec<Shard> = distinct.keys().copied().collect();
    for pair in shards.windows(2) {
        if pair[1].offset < pair[0].end() {
            return Err(MergeError::Overlap(pair[0], pair[1]));
        }
    }

    let mut observed = 0u64;
    let mut failures = 0u64;
    let mut welford: Option<WelfordSink> = None;
    let mut histogram: Option<Histogram> = None;
    let mut tdigest: Option<TDigest> = None;
    for (index, payload) in distinct.values().enumerate() {
        let shard = payload.shard;
        if payload.observed + payload.failures != shard.len as u64 {
            return Err(MergeError::BadAccounting(
                shard,
                format!(
                    "observed {} + failures {} != shard len {}",
                    payload.observed, payload.failures, shard.len
                ),
            ));
        }
        let w = WelfordSink::from_bytes(&payload.welford)
            .map_err(|e| MergeError::BadSketch(shard, format!("welford: {e}")))?;
        if w.moments().count() != payload.observed {
            return Err(MergeError::BadAccounting(
                shard,
                format!(
                    "welford count {} != declared observed {}",
                    w.moments().count(),
                    payload.observed
                ),
            ));
        }
        observed += payload.observed;
        failures += payload.failures;
        match &mut welford {
            None => welford = Some(w),
            Some(acc) => acc
                .try_merge_from(&w)
                .map_err(|e| MergeError::BadSketch(shard, format!("welford: {e}")))?,
        }
        merge_optional::<Histogram>(
            &mut histogram,
            &payload.histogram,
            index,
            shard,
            "histogram",
        )?;
        merge_optional::<TDigest>(&mut tdigest, &payload.tdigest, index, shard, "tdigest")?;
    }

    Ok(MergedResult {
        observed,
        failures,
        moments: welford.expect("at least one payload merged").moments(),
        histogram,
        tdigest,
        shards: shards.len(),
        deduplicated,
    })
}

/// Decodes and merges one optional sketch, insisting that either every
/// payload carries it or none does — a mixed campaign is a coordinator
/// bug that would silently drop data.
fn merge_optional<S: MergeableSink>(
    acc: &mut Option<S>,
    bytes: &Option<Vec<u8>>,
    index: usize,
    shard: Shard,
    name: &str,
) -> Result<(), MergeError> {
    match (bytes, index) {
        (Some(bytes), _) => {
            let decoded = S::from_bytes(bytes)
                .map_err(|e| MergeError::BadSketch(shard, format!("{name}: {e}")))?;
            match acc {
                None if index == 0 => *acc = Some(decoded),
                None => Err(MergeError::BadSketch(
                    shard,
                    format!("{name} present here but absent from an earlier shard"),
                ))?,
                Some(acc) => acc
                    .try_merge_from(&decoded)
                    .map_err(|e| MergeError::BadSketch(shard, format!("{name}: {e}")))?,
            }
            Ok(())
        }
        (None, 0) => Ok(()),
        (None, _) if acc.is_none() => Ok(()),
        (None, _) => Err(MergeError::BadSketch(
            shard,
            format!("{name} absent here but present in an earlier shard"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::sink::Sink;

    /// Builds a payload by streaming `values` into real sinks.
    fn payload(offset: usize, values: &[f64]) -> ShardPayload {
        let mut w = WelfordSink::new();
        let mut h = Histogram::new(0.0, 1.0, 8);
        let mut d = TDigest::new(100.0);
        for (i, &v) in values.iter().enumerate() {
            w.observe(offset + i, v);
            h.observe(offset + i, v);
            d.observe(offset + i, v);
        }
        w.finish();
        Sink::finish(&mut h);
        d.finish();
        ShardPayload {
            shard: Shard {
                offset,
                len: values.len(),
            },
            observed: values.len() as u64,
            failures: 0,
            welford: w.to_bytes(),
            histogram: Some(MergeableSink::to_bytes(&h)),
            tdigest: Some(d.to_bytes()),
        }
    }

    #[test]
    fn duplicates_dedupe_and_order_does_not_matter() {
        let a = payload(0, &[0.1, 0.2, 0.3]);
        let b = payload(3, &[0.5, 0.6]);
        let forward = merge_payloads([a.clone(), b.clone()]).unwrap();
        let reversed = merge_payloads([b.clone(), a.clone(), b.clone()]).unwrap();
        assert_eq!(reversed.deduplicated, 1);
        assert_eq!(forward.observed, 5);
        assert_eq!(reversed.observed, 5);
        assert_eq!(forward.moments.mean(), reversed.moments.mean());
        assert_eq!(
            MergeableSink::to_bytes(forward.histogram.as_ref().unwrap()),
            MergeableSink::to_bytes(reversed.histogram.as_ref().unwrap()),
        );
    }

    #[test]
    fn garbage_duplicates_are_rejected() {
        let a = payload(0, &[0.1, 0.2]);
        let mut forged = payload(0, &[0.8, 0.9]);
        forged.shard = a.shard;
        assert_eq!(
            merge_payloads([a.clone(), forged]).unwrap_err(),
            MergeError::InconsistentDuplicate(a.shard)
        );
    }

    #[test]
    fn overlapping_shards_are_rejected() {
        let a = payload(0, &[0.1, 0.2, 0.3]);
        let b = payload(2, &[0.5, 0.6]);
        assert!(matches!(
            merge_payloads([a, b]).unwrap_err(),
            MergeError::Overlap(_, _)
        ));
    }

    #[test]
    fn unbalanced_accounting_is_rejected() {
        let mut a = payload(0, &[0.1, 0.2]);
        a.observed = 5;
        assert!(matches!(
            merge_payloads([a]).unwrap_err(),
            MergeError::BadAccounting(_, _)
        ));
        let mut b = payload(0, &[0.1, 0.2]);
        b.failures = 1; // observed 2 + failures 1 != len 2
        assert!(matches!(
            merge_payloads([b]).unwrap_err(),
            MergeError::BadAccounting(_, _)
        ));
    }

    #[test]
    fn corrupt_sketch_bytes_are_rejected() {
        let mut a = payload(0, &[0.1, 0.2]);
        a.welford = vec![0xff; 7];
        assert!(matches!(
            merge_payloads([a]).unwrap_err(),
            MergeError::BadSketch(_, _)
        ));
        let mut b = payload(0, &[0.1, 0.2]);
        b.histogram = Some(vec![0x00, 0x01, 0x02]);
        assert!(matches!(
            merge_payloads([b]).unwrap_err(),
            MergeError::BadSketch(_, _)
        ));
    }

    #[test]
    fn mixed_sketch_presence_is_rejected() {
        let a = payload(0, &[0.1, 0.2]);
        let mut b = payload(2, &[0.5]);
        b.histogram = None;
        assert!(matches!(
            merge_payloads([a, b]).unwrap_err(),
            MergeError::BadSketch(_, _)
        ));
        assert!(merge_payloads([payload(0, &[0.1])]).is_ok());
        assert_eq!(merge_payloads([]).unwrap_err(), MergeError::Empty);
    }
}
