//! Seeded property suite for the fleet-merge determinism contract:
//! **any** partitioning of a campaign's sample index space — unequal
//! shard sizes, re-issued duplicates, arbitrary arrival order — merges to
//! the same result as one unpartitioned run.
//!
//! Concretely, for random partitions (seeded xorshift, so failures
//! reproduce):
//!
//! - merged `Histogram` state is **byte-identical** to the single-run
//!   reference (integer bin adds commute and associate);
//! - merged `Welford` count/min/max are bit-exact, mean and variance
//!   within `1e-12` (the pairwise-merge rounding caveat);
//! - merged `TDigest` state is byte-identical across arrival orders and
//!   duplicate injections (sorted-shard-order merging), with quantiles
//!   tracking the reference within the digest's rank-error bound;
//! - duplicates injected into the payload stream are deduped by
//!   `(offset, len)` and never double-counted.
//!
//! The final test pushes one random partition through a real loopback
//! `statvs serve` server — coordinator, HTTP client, hex codec and all —
//! and holds it to the same standard.

use fleet::coordinator::{Coordinator, FleetConfig, FleetSpec};
use fleet::merge::{merge_payloads, ShardPayload};
use serve::pool::Engine;
use serve::store::ExperimentSpec;
use serve::{Server, ServerConfig};
use stats::sink::MergeableSink;
use std::time::Duration;
use vscore::mc::Shard;

const CIRCUIT: &str = "device_idsat";
const TOTAL: usize = 240;
const SEED: u64 = 20130318; // the paper's conference date

/// Tiny deterministic RNG (xorshift64*) so every trial reproduces.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `0..bound`.
    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A random partition of `0..total` into 1..=max_parts shards of
/// (usually) unequal lengths.
fn random_partition(rng: &mut Rng, total: usize, max_parts: usize) -> Vec<Shard> {
    let parts = 1 + rng.below(max_parts);
    let mut cuts: Vec<usize> = (0..parts - 1).map(|_| 1 + rng.below(total - 1)).collect();
    cuts.push(0);
    cuts.push(total);
    cuts.sort_unstable();
    cuts.dedup();
    cuts.windows(2)
        .map(|w| Shard {
            offset: w[0],
            len: w[1] - w[0],
        })
        .collect()
}

/// The template's spec for one shard, mirroring what the server would run.
fn shard_spec(engine: &Engine, shard: Shard) -> ExperimentSpec {
    let template = engine.template(CIRCUIT).expect("template registered");
    ExperimentSpec {
        circuit: CIRCUIT.to_string(),
        analysis: template.analyses[0].to_string(),
        seed: SEED,
        offset: shard.offset,
        len: shard.len,
        total: Some(TOTAL),
        want_welford: true,
        want_histogram: true,
        want_tdigest: true,
        histogram: template.default_histogram,
        tdigest_compression: 100.0,
        proposal: (0.0, 1.0),
        threshold: 3.0,
        want_wmoments: false,
        want_whistogram: false,
    }
}

/// Executes one shard in-process and wraps the result as a payload.
fn shard_payload(engine: &Engine, shard: Shard) -> ShardPayload {
    let result = engine
        .execute(&shard_spec(engine, shard))
        .expect("shard runs");
    ShardPayload {
        shard,
        observed: result.observed,
        failures: result.failures,
        welford: result.welford_bytes.expect("welford requested"),
        histogram: Some(result.histogram_bytes.expect("histogram requested")),
        tdigest: Some(result.tdigest_bytes.expect("tdigest requested")),
    }
}

#[test]
fn random_partitions_merge_bit_identically_with_the_single_run() {
    let engine = Engine::new().expect("engine builds");
    let reference = engine
        .execute(&shard_spec(
            &engine,
            Shard {
                offset: 0,
                len: TOTAL,
            },
        ))
        .expect("reference runs");
    let ref_histogram = reference.histogram_bytes.as_ref().unwrap();
    let ref_welford =
        stats::sink::WelfordSink::from_bytes(reference.welford_bytes.as_ref().unwrap())
            .unwrap()
            .moments();
    let ref_digest = stats::TDigest::from_bytes(reference.tdigest_bytes.as_ref().unwrap()).unwrap();

    let mut rng = Rng(0x5eed_0001);
    for trial in 0..8 {
        let partition = random_partition(&mut rng, TOTAL, 9);
        let mut payloads: Vec<ShardPayload> = partition
            .iter()
            .map(|&shard| shard_payload(&engine, shard))
            .collect();

        // Inject re-issued duplicates: identical payloads for randomly
        // chosen shards, as if a straggler's first attempt finished after
        // its replacement.
        let duplicates = 1 + rng.below(2);
        for _ in 0..duplicates {
            let pick = payloads[rng.below(partition.len())].clone();
            payloads.push(pick);
        }
        // Arrival order is whatever the network felt like: rotate by a
        // random amount (a cheap seeded shuffle).
        let rotation = rng.below(payloads.len());
        payloads.rotate_left(rotation);

        let merged = merge_payloads(payloads.clone())
            .unwrap_or_else(|e| panic!("trial {trial}: merge refused: {e}"));
        assert_eq!(merged.deduplicated, duplicates, "trial {trial}");
        assert_eq!(merged.shards, partition.len(), "trial {trial}");
        assert_eq!(merged.observed + merged.failures, TOTAL as u64);

        // Histogram: byte-identical to the unpartitioned run.
        let merged_histogram = MergeableSink::to_bytes(merged.histogram.as_ref().unwrap());
        assert_eq!(
            &merged_histogram,
            ref_histogram,
            "trial {trial} ({} shards): histogram bytes diverged",
            partition.len()
        );

        // Welford: count/extrema exact, moments to rounding.
        assert_eq!(merged.moments.count(), ref_welford.count());
        assert_eq!(merged.moments.min(), ref_welford.min(), "trial {trial}");
        assert_eq!(merged.moments.max(), ref_welford.max(), "trial {trial}");
        assert!((merged.moments.mean() - ref_welford.mean()).abs() <= 1e-12);
        assert!((merged.moments.variance() - ref_welford.variance()).abs() <= 1e-12);

        // TDigest: deterministic across arrival orders — re-merging the
        // same payload set in a different rotation gives identical bytes.
        let mut rotated = payloads.clone();
        rotated.rotate_left(1);
        let remerged = merge_payloads(rotated).unwrap();
        assert_eq!(
            MergeableSink::to_bytes(merged.tdigest.as_ref().unwrap()),
            MergeableSink::to_bytes(remerged.tdigest.as_ref().unwrap()),
            "trial {trial}: tdigest merge depended on arrival order"
        );
        // ...and quantiles track the unpartitioned digest.
        let digest = merged.tdigest.as_ref().unwrap();
        assert_eq!(digest.count(), ref_digest.count());
        for p in [0.1, 0.5, 0.9] {
            let q = digest.quantile(p).unwrap();
            let q_ref = ref_digest.quantile(p).unwrap();
            let scale = ref_welford.max() - ref_welford.min();
            assert!(
                (q - q_ref).abs() <= 0.05 * scale,
                "trial {trial} q{p}: {q} vs {q_ref}"
            );
        }
    }
}

#[test]
fn a_random_partition_round_trips_through_a_real_server() {
    let engine = Engine::new().expect("engine builds");
    let reference = engine
        .execute(&shard_spec(
            &engine,
            Shard {
                offset: 0,
                len: TOTAL,
            },
        ))
        .expect("reference runs");

    let server = Server::bind(&ServerConfig::default()).expect("server boots");
    let addr = server.addr();
    let handle = server.start();

    let mut rng = Rng(0x5eed_0002);
    // A duplicated entry in the plan itself: the coordinator dedupes by
    // (offset, len) before dispatching.
    let mut plan = random_partition(&mut rng, TOTAL, 7);
    let duplicate = plan[rng.below(plan.len())];
    plan.push(duplicate);

    let spec = FleetSpec {
        circuit: CIRCUIT.to_string(),
        analysis: None,
        seed: SEED,
        total: TOTAL,
        histogram: None,
        tdigest_compression: None,
    };
    let cfg = FleetConfig {
        poll_initial: Duration::from_millis(5),
        ..FleetConfig::default()
    };
    let coordinator = Coordinator::new(vec![addr], cfg).unwrap();
    let report = coordinator
        .run_shards(&spec, &plan, &mut |_| {})
        .expect("loopback campaign succeeds");

    // The HTTP hex round trip must not cost a single bit.
    assert_eq!(
        MergeableSink::to_bytes(report.merged.histogram.as_ref().unwrap()),
        reference.histogram_bytes.clone().unwrap(),
        "histogram bytes diverged across the HTTP round trip"
    );
    let ref_welford =
        stats::sink::WelfordSink::from_bytes(reference.welford_bytes.as_ref().unwrap())
            .unwrap()
            .moments();
    assert_eq!(report.merged.moments.count(), ref_welford.count());
    assert_eq!(report.merged.moments.min(), ref_welford.min());
    assert_eq!(report.merged.moments.max(), ref_welford.max());
    assert!((report.merged.moments.mean() - ref_welford.mean()).abs() <= 1e-12);
    assert!((report.merged.moments.variance() - ref_welford.variance()).abs() <= 1e-12);

    handle.shutdown();
}
