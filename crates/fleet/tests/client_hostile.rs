//! Hostile-input tests for the fleet HTTP client and the coordinator's
//! retry bounds: every way a worker can misbehave on the wire — refuse
//! the connection, stall forever, close mid-response, return garbage
//! framing or non-JSON — must surface as a typed [`ClientError`], and a
//! campaign against such workers must fail *cleanly and boundedly*
//! (attempts capped, a structured [`FleetError`], never a hang or panic).

use fleet::coordinator::{Coordinator, FleetConfig, FleetError, FleetSpec};
use fleet::{ClientError, HttpClient};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

/// A scripted one-shot "worker": accepts connections and answers each
/// with `response` verbatim (after an optional stall), forever, until the
/// listener is dropped. Returns the bound address and a join guard.
fn scripted_worker(response: &'static [u8], stall: Duration) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind scripted worker");
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { break };
            std::thread::spawn(move || {
                // Drain the request so the client's write never blocks.
                let mut buf = [0u8; 4096];
                let _ = stream.read(&mut buf);
                if !stall.is_zero() {
                    std::thread::sleep(stall);
                }
                let _ = stream.write_all(response);
            });
        }
    });
    addr
}

fn client() -> HttpClient {
    HttpClient {
        connect_timeout: Duration::from_millis(500),
        io_timeout: Duration::from_millis(300),
    }
}

fn spec() -> FleetSpec {
    FleetSpec {
        circuit: "device_idsat".to_string(),
        analysis: None,
        seed: 1,
        total: 10,
        histogram: None,
        tdigest_compression: None,
    }
}

/// A fast-failing coordinator config for bounded-retry tests.
fn config(max_attempts: usize) -> FleetConfig {
    FleetConfig {
        max_attempts,
        shard_deadline: Duration::from_secs(5),
        poll_initial: Duration::from_millis(5),
        poll_max: Duration::from_millis(20),
        max_poll_faults: 2,
        client: client(),
    }
}

#[test]
fn connection_refused_is_a_typed_connect_error() {
    // Bind then drop: the port was just free, so connecting is refused.
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let err = client()
        .exchange(addr, "GET", "/healthz", None)
        .expect_err("nobody is listening");
    assert!(
        matches!(err, ClientError::Connect(_)),
        "got {err:?} instead of a connect error"
    );
}

#[test]
fn stalling_worker_times_out_instead_of_hanging() {
    let addr = scripted_worker(b"", Duration::from_secs(60));
    let started = Instant::now();
    let err = client()
        .exchange(addr, "GET", "/healthz", None)
        .expect_err("worker never answers");
    assert_eq!(err, ClientError::Timeout);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout took {:?}",
        started.elapsed()
    );
}

#[test]
fn truncated_responses_are_detected() {
    // Headers promise 500 bytes; the worker closes after 5.
    let addr = scripted_worker(
        b"HTTP/1.1 200 OK\r\nContent-Length: 500\r\n\r\n{\"ok\"",
        Duration::ZERO,
    );
    let err = client()
        .exchange(addr, "GET", "/runs/1", None)
        .expect_err("body is short");
    assert_eq!(err, ClientError::Truncated);

    // The worker dies before finishing the headers.
    let addr = scripted_worker(b"HTTP/1.1 200 OK\r\nContent-Le", Duration::ZERO);
    let err = client()
        .exchange(addr, "GET", "/runs/1", None)
        .expect_err("headers are short");
    assert_eq!(err, ClientError::Truncated);
}

#[test]
fn garbage_framing_and_bad_json_are_typed() {
    let addr = scripted_worker(b"SPICE/9 200 fine\r\n\r\n{}", Duration::ZERO);
    let err = client()
        .exchange(addr, "GET", "/healthz", None)
        .expect_err("not HTTP");
    assert!(matches!(err, ClientError::Malformed(_)), "got {err:?}");

    let addr = scripted_worker(
        b"HTTP/1.1 200 OK\r\nContent-Length: 9\r\n\r\nnot json!",
        Duration::ZERO,
    );
    let err = client()
        .exchange(addr, "GET", "/healthz", None)
        .expect_err("body is not JSON");
    assert!(matches!(err, ClientError::BadJson(_)), "got {err:?}");
}

#[test]
fn a_campaign_against_a_dead_worker_fails_boundedly() {
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let coordinator = Coordinator::new(vec![addr], config(3)).unwrap();
    let started = Instant::now();
    let err = coordinator.run(&spec(), 2).expect_err("worker is dead");
    match err {
        FleetError::Exhausted { attempts, .. } => assert_eq!(attempts, 3),
        other => panic!("expected Exhausted, got {other}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "bounded retries took {:?}",
        started.elapsed()
    );
}

#[test]
fn a_campaign_against_a_stalling_worker_fails_boundedly() {
    // Connects succeed but every exchange stalls past the I/O timeout:
    // the straggler path, not the refused path.
    let addr = scripted_worker(b"", Duration::from_secs(60));
    let coordinator = Coordinator::new(vec![addr], config(2)).unwrap();
    let started = Instant::now();
    let err = coordinator.run(&spec(), 1).expect_err("worker stalls");
    assert!(
        matches!(err, FleetError::Exhausted { attempts: 2, .. }),
        "expected 2 exhausted attempts, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "bounded retries took {:?}",
        started.elapsed()
    );
}

#[test]
fn a_worker_speaking_garbage_fails_the_campaign_cleanly() {
    let addr = scripted_worker(
        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi",
        Duration::ZERO,
    );
    let coordinator = Coordinator::new(vec![addr], config(2)).unwrap();
    let err = coordinator.run(&spec(), 1).expect_err("garbage worker");
    assert!(matches!(err, FleetError::Exhausted { .. }), "got {err}");
}
