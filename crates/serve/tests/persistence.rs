//! Serve-side persistence end to end: the replay cache must survive a
//! full process restart.
//!
//! Boots a server with an artifact directory, completes a run over HTTP,
//! and records its result. Then the server is shut down and a **new**
//! server is booted over the same artifact directory — the restart
//! scenario. Re-posting the identical experiment must come back `done`
//! at submission time with `cached: true`, and `GET /runs/{id}` must
//! replay every sketch payload bit-identically to the first process's
//! answer. A spec differing in any field must miss the cache and
//! recompute.
//!
//! The replay is sound because a run result is a pure function of its
//! spec (every Monte Carlo sample is derived from `(seed, index)`), and
//! it is safe because the cache verifies the artifact seal, the
//! whole-file checksum, and the embedded canonical key before serving.

use serve::json::Json;
use serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// One HTTP exchange: returns the status code and parsed JSON body.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request.as_bytes()).expect("send request");
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, text) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("unframed response: {response:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    let json = Json::parse(text)
        .unwrap_or_else(|e| panic!("{method} {path}: body {text:?} is not JSON: {e}"));
    (status, json)
}

/// Polls `GET /runs/{id}` until the run leaves the queue.
fn await_run(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, reply) = http(addr, "GET", &format!("/runs/{id}"), None);
        assert_eq!(status, 200, "{}", reply.to_text());
        let run = reply.get("run").expect("run envelope").clone();
        match run.get("status").and_then(Json::as_str) {
            Some("done") => return run,
            Some("failed") => panic!("run {id} failed: {}", run.to_text()),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "run {id} did not finish in time: {}",
                    run.to_text()
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn shard_body(seed: u64, offset: usize, len: usize) -> String {
    format!(
        r#"{{"circuit": "sram6t_dc", "analysis": "dc", "seed": {seed},
            "shard": {{"offset": {offset}, "len": {len}}},
            "histogram": {{"lo": 0.0, "hi": 0.9, "bins": 48}}}}"#
    )
}

fn post_shard(addr: SocketAddr, seed: u64, offset: usize, len: usize) -> (u64, Json) {
    let (status, reply) = http(
        addr,
        "POST",
        "/experiments",
        Some(&shard_body(seed, offset, len)),
    );
    assert_eq!(status, 202, "{}", reply.to_text());
    let run = reply.get("run").expect("run envelope").clone();
    let id = run
        .get("id")
        .and_then(Json::as_u64)
        .expect("run id in envelope");
    (id, run)
}

/// The comparable core of a finished run: everything except the `cached`
/// marker, which is *expected* to flip between compute and replay.
fn result_fingerprint(run: &Json) -> (String, String, String, String) {
    let result = run.get("result").expect("finished run has a result");
    let sketches = result.get("sketches").expect("sketches").to_text();
    let moments = result.get("moments").expect("moments").to_text();
    let observed = result.get("observed").expect("observed").to_text();
    let failures = result.get("failures").expect("failures").to_text();
    (sketches, moments, observed, failures)
}

fn cached_flag(run: &Json) -> Option<bool> {
    run.get("result")
        .and_then(|r| r.get("cached"))
        .and_then(|c| match c {
            Json::Bool(b) => Some(*b),
            _ => None,
        })
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("statvs_persist_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replay_cache_survives_a_server_restart() {
    const SEED: u64 = 11;
    const LEN: usize = 60;
    let dir = temp_dir("restart");
    let cfg = ServerConfig {
        artifact_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First life: compute the run for real and remember its answer.
    let server = Server::bind(&cfg).expect("first server boots").start();
    let addr = server.addr();
    let (id, _) = post_shard(addr, SEED, 0, LEN);
    let first = await_run(addr, id);
    assert_eq!(
        cached_flag(&first),
        Some(false),
        "a cold run is computed, not replayed: {}",
        first.to_text()
    );
    let fingerprint = result_fingerprint(&first);
    server.shutdown();

    // The spill actually reached the artifact directory as a sealed
    // container — this is what the next process will replay from.
    let spilled: Vec<_> = std::fs::read_dir(&dir)
        .expect("artifact dir exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".svaf"))
        .collect();
    assert_eq!(spilled.len(), 1, "one completed run, one artifact");
    let entry_bytes = std::fs::read(spilled[0].path()).expect("artifact readable");
    stats::artifact::Artifact::from_bytes(&entry_bytes).expect("spilled entry is sealed");

    // Second life: a brand-new process image over the same directory.
    let server = Server::bind(&cfg).expect("second server boots").start();
    let addr = server.addr();
    let (replay_id, envelope) = post_shard(addr, SEED, 0, LEN);
    assert_eq!(
        envelope.get("status").and_then(Json::as_str),
        Some("done"),
        "a cache hit is done at submission time: {}",
        envelope.to_text()
    );
    assert_eq!(
        envelope.get("cached"),
        Some(&Json::Bool(true)),
        "the submission envelope announces the replay: {}",
        envelope.to_text()
    );
    let replayed = await_run(addr, replay_id);
    assert_eq!(
        cached_flag(&replayed),
        Some(true),
        "the run record carries cached: true: {}",
        replayed.to_text()
    );
    assert_eq!(
        result_fingerprint(&replayed),
        fingerprint,
        "replayed result must be bit-identical to the computed one"
    );

    // Any spec difference is a miss: a different seed goes through the
    // queue and computes fresh.
    let (other_id, other_envelope) = post_shard(addr, SEED + 1, 0, LEN);
    assert_eq!(
        other_envelope.get("cached"),
        None,
        "a different spec must not hit the cache: {}",
        other_envelope.to_text()
    );
    let other = await_run(addr, other_id);
    assert_eq!(cached_flag(&other), Some(false));
    assert_ne!(
        result_fingerprint(&other).0,
        fingerprint.0,
        "different seeds produce different sketches"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_cache_entries_recompute_instead_of_serving_garbage() {
    const SEED: u64 = 23;
    const LEN: usize = 40;
    let dir = temp_dir("corrupt");
    let cfg = ServerConfig {
        artifact_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    let server = Server::bind(&cfg).expect("server boots").start();
    let addr = server.addr();
    let (id, _) = post_shard(addr, SEED, 0, LEN);
    let first = await_run(addr, id);
    let fingerprint = result_fingerprint(&first);
    server.shutdown();

    // Flip one byte in the middle of the spilled artifact.
    let entry = std::fs::read_dir(&dir)
        .expect("artifact dir exists")
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().ends_with(".svaf"))
        .expect("one spilled entry");
    let mut bytes = std::fs::read(entry.path()).expect("readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(entry.path(), &bytes).expect("writable");

    // The rebooted server must treat the damaged entry as a miss,
    // recompute, and still land on the same (pure-function) answer.
    let server = Server::bind(&cfg).expect("server reboots").start();
    let addr = server.addr();
    let (id, envelope) = post_shard(addr, SEED, 0, LEN);
    assert_eq!(
        envelope.get("cached"),
        None,
        "a corrupt entry must not be replayed: {}",
        envelope.to_text()
    );
    let recomputed = await_run(addr, id);
    assert_eq!(cached_flag(&recomputed), Some(false));
    assert_eq!(
        result_fingerprint(&recomputed),
        fingerprint,
        "recomputation reproduces the original answer"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
