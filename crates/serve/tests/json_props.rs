//! Seeded, deterministic property tests for the in-repo JSON codec — the
//! repo's no-external-deps stand-in for a proptest suite.
//!
//! Three properties, each over hundreds of generated cases from a fixed
//! xorshift seed (fully reproducible, no flaky shrinking):
//!
//! 1. **Round-trip**: `parse(to_text(v)) == v` for arbitrary finite
//!    values.
//! 2. **Total parsing**: arbitrary garbage and arbitrary *mutations* of
//!    valid documents never panic — they parse or return a typed error.
//! 3. **Malformed inputs fail**: truncations of valid documents and a
//!    corpus of grammar violations all return `Err`, never a bogus value.

use serve::json::{Json, JsonError};

/// Deterministic xorshift64* generator; good enough spread for test-case
/// generation and completely reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A random *finite* number: scaled integers exercise both integer and
/// scientific notation paths without ever generating NaN/inf (which the
/// serializer deliberately maps to `null` and so cannot round-trip).
fn gen_number(rng: &mut Rng) -> f64 {
    let mantissa = rng.next() as i32 as f64;
    let exp = (rng.below(41) as i32 - 20) as f64;
    let n = mantissa * 10f64.powi(exp as i32);
    if n.is_finite() {
        n
    } else {
        exp
    }
}

/// A random string mixing plain ASCII, characters that require escaping,
/// and multi-byte unicode (including an astral-plane char to exercise
/// surrogate handling).
fn gen_string(rng: &mut Rng) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{8}',
        '\u{c}',
        '\u{1}',
        'é',
        '√',
        '語',
        '😀',
        '\u{10FFFF}',
    ];
    let len = rng.below(12) as usize;
    (0..len)
        .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
        .collect()
}

/// A random JSON value with bounded depth and width.
fn gen_value(rng: &mut Rng, depth: usize) -> Json {
    let choices = if depth >= 4 { 4 } else { 6 };
    match rng.below(choices) {
        0 => Json::Null,
        1 => Json::Bool(rng.below(2) == 0),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.below(4) as usize;
            Json::Arr((0..n).map(|_| gen_value(rng, depth + 1)).collect())
        }
        _ => {
            let n = rng.below(4) as usize;
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("k{i}_{}", gen_string(rng)),
                            gen_value(rng, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn generated_values_round_trip_exactly() {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    for case in 0..500 {
        let value = gen_value(&mut rng, 0);
        let text = value.to_text();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("case {case}: {text:?} failed to re-parse: {e}"));
        assert_eq!(back, value, "case {case}: round-trip mismatch for {text:?}");
        // Serialization is deterministic: a second trip is byte-identical.
        assert_eq!(back.to_text(), text, "case {case}");
    }
}

#[test]
fn truncations_of_valid_documents_error_and_never_panic() {
    let mut rng = Rng(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..60 {
        let value = gen_value(&mut rng, 0);
        let text = value.to_text();
        for cut in 0..text.len() {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let prefix = &text[..cut];
            // A strict prefix is at best a *different* valid document
            // (e.g. "1" cut from "12"); it must never panic, and if it
            // parses it must not equal the original unless it is the
            // whole text.
            if let Ok(v) = Json::parse(prefix) {
                assert!(
                    cut == text.len() || v != value || prefix == text,
                    "prefix {prefix:?} of {text:?} reproduced the full value"
                );
            }
        }
    }
}

#[test]
fn mutated_documents_and_garbage_never_panic() {
    let mut rng = Rng(0x0123_4567_89AB_CDEF);
    for _ in 0..300 {
        let value = gen_value(&mut rng, 0);
        let mut text = value.to_text();
        // Mutate: insert a random ASCII byte at a random char boundary.
        let insert = (rng.below(94) + 33) as u8 as char;
        let mut pos = rng.below(text.len() as u64 + 1) as usize;
        while !text.is_char_boundary(pos) {
            pos -= 1;
        }
        text.insert(pos, insert);
        let _ = Json::parse(&text); // must return, Ok or Err
    }
    // Pure ASCII garbage.
    for _ in 0..300 {
        let len = rng.below(24) as usize;
        let garbage: String = (0..len)
            .map(|_| (rng.below(96) + 32) as u8 as char)
            .collect();
        let _ = Json::parse(&garbage);
    }
}

#[test]
fn malformed_corpus_errors_with_the_right_variants() {
    // Truncation.
    for text in [
        "{\"a\"",
        "[1, 2",
        "\"unterminated",
        "tr",
        "-",
        "1e",
        "1e+",
        "{\"a\":",
        "\"\\",
    ] {
        assert!(
            matches!(Json::parse(text), Err(JsonError::Truncated)),
            "{text:?} should be Truncated, got {:?}",
            Json::parse(text)
        );
    }
    // Bad escapes (including raw control characters and lone surrogates).
    for text in ["\"\\x\"", "\"\\u12g4\"", "\"\u{1}\"", r#""\ud800x""#] {
        assert!(
            matches!(Json::parse(text), Err(JsonError::BadEscape { .. })),
            "{text:?} should be BadEscape, got {:?}",
            Json::parse(text)
        );
    }
    // Number grammar violations and overflow.
    for text in ["01", "1.", "+5", "1e999", "-2e308", "0x10", "1..2"] {
        assert!(
            Json::parse(text).is_err(),
            "{text:?} must not parse as a number"
        );
    }
    // Structural junk.
    for text in [
        "{,}",
        "[,]",
        "{\"a\" 1}",
        "[1;2]",
        "}",
        "]",
        ",",
        "{\"a\":1,}",
    ] {
        assert!(Json::parse(text).is_err(), "{text:?} must not parse");
    }
}
