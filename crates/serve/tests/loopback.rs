//! Loopback end-to-end test of the `statvs serve` protocol.
//!
//! Boots a real server on an ephemeral port, posts the two halves of a 6T
//! SRAM DC experiment as **disjoint shards over HTTP**, merges the
//! returned sketch bytes client-side, and checks the merge against a
//! single-process `run_streaming_range` reference over the whole range:
//! Histogram counts and Welford observation counts must be bit-identical,
//! t-digest quantiles must agree to tight tolerance — the fleet-merge
//! contract, demonstrated through the full network stack.
//!
//! A second test runs the same contract through the importance-sampling
//! template: disjoint `gauss_tail` shards posted over HTTP must merge
//! their weighted sketches bit-identically to the whole-range run, and
//! the merged estimator must land on the analytic Gaussian tail.
//!
//! A third test drives every abuse path (garbage framing, bad JSON,
//! unknown routes, oversized bodies, mismatched sketch merges) and checks
//! each one comes back as a structured error envelope, never a dropped
//! connection or a panic.

use serve::json::Json;
use serve::pool::Engine;
use serve::store::{hex_decode, ExperimentSpec};
use serve::{Server, ServerConfig};
use stats::histogram::Histogram;
use stats::sink::{MergeableSink, WelfordSink};
use stats::TDigest;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// One HTTP exchange: returns the status code and parsed JSON body.
fn http(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> (u16, Json) {
    let payload = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    );
    let (status, text) = raw_exchange(addr, request.as_bytes());
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("{method} {path}: body {text:?} is not JSON: {e}"));
    (status, json)
}

/// Sends raw bytes and returns `(status, body_text)`; the server closes
/// the connection after one response.
fn raw_exchange(addr: SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(request).expect("send request");
    // Half-close: tells the server no more bytes are coming, so its
    // bounded post-error drain sees EOF immediately.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("unframed response: {response:?}"));
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {head:?}"));
    (status, body.to_string())
}

/// Polls `GET /runs/{id}` until the run leaves the queue, returning its
/// final record.
fn await_run(addr: SocketAddr, id: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, reply) = http(addr, "GET", &format!("/runs/{id}"), None);
        assert_eq!(status, 200, "{}", reply.to_text());
        let run = reply.get("run").expect("run envelope").clone();
        match run.get("status").and_then(Json::as_str) {
            Some("done") => return run,
            Some("failed") => panic!("run {id} failed: {}", run.to_text()),
            _ => {
                assert!(
                    Instant::now() < deadline,
                    "run {id} did not finish in time: {}",
                    run.to_text()
                );
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

/// Pulls one hex sketch payload out of a finished run.
fn sketch_bytes(run: &Json, name: &str) -> Vec<u8> {
    let sketches = run
        .get("result")
        .and_then(|r| r.get("sketches"))
        .unwrap_or_else(|| panic!("no sketches in {}", run.to_text()));
    assert_eq!(
        sketches.get("encoding").and_then(Json::as_str),
        Some("hex"),
        "sketch payloads are typed with their encoding"
    );
    let hex = sketches
        .get(name)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no {name} sketch in {}", run.to_text()));
    hex_decode(hex).expect("server-produced hex decodes")
}

fn post_shard(addr: SocketAddr, seed: u64, offset: usize, len: usize) -> u64 {
    let body = format!(
        r#"{{"circuit": "sram6t_dc", "analysis": "dc", "seed": {seed},
            "shard": {{"offset": {offset}, "len": {len}}},
            "histogram": {{"lo": 0.0, "hi": 0.9, "bins": 48}}}}"#
    );
    let (status, reply) = http(addr, "POST", "/experiments", Some(&body));
    assert_eq!(status, 202, "{}", reply.to_text());
    reply
        .get("run")
        .and_then(|r| r.get("id"))
        .and_then(Json::as_u64)
        .expect("run id")
}

#[test]
fn disjoint_shards_over_http_merge_to_the_single_process_run() {
    const SEED: u64 = 42;
    const SPLIT: usize = 70;
    const TOTAL: usize = 120;

    let server = Server::bind(&ServerConfig::default()).expect("server boots");
    let addr = server.addr();
    let handle = server.start();

    // Health and registry come up before any run.
    let (status, health) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    let (status, circuits) = http(addr, "GET", "/circuits", None);
    assert_eq!(status, 200);
    assert!(circuits
        .get("circuits")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .any(|c| c.get("id").and_then(Json::as_str) == Some("sram6t_dc")));

    // Post the two halves of one experiment as disjoint shards — in real
    // deployments these would land on different servers.
    let id_a = post_shard(addr, SEED, 0, SPLIT);
    let id_b = post_shard(addr, SEED, SPLIT, TOTAL - SPLIT);
    let run_a = await_run(addr, id_a);
    let run_b = await_run(addr, id_b);

    // Merge the returned sketch bytes client-side via the fallible paths.
    let mut histogram = Histogram::from_bytes(&sketch_bytes(&run_a, "histogram")).unwrap();
    histogram
        .try_merge_from(&Histogram::from_bytes(&sketch_bytes(&run_b, "histogram")).unwrap())
        .expect("shards share the histogram configuration");
    let mut welford = WelfordSink::from_bytes(&sketch_bytes(&run_a, "welford")).unwrap();
    welford
        .try_merge_from(&WelfordSink::from_bytes(&sketch_bytes(&run_b, "welford")).unwrap())
        .expect("welford merges are total");
    let mut digest = TDigest::from_bytes(&sketch_bytes(&run_a, "tdigest")).unwrap();
    digest
        .try_merge_from(&TDigest::from_bytes(&sketch_bytes(&run_b, "tdigest")).unwrap())
        .expect("shards share the compression");

    // The single-process reference: the identical workload through
    // `run_streaming_range` over the whole index range, no HTTP.
    let reference = Engine::new()
        .expect("reference engine")
        .execute(&ExperimentSpec {
            circuit: "sram6t_dc".to_string(),
            analysis: "dc".to_string(),
            seed: SEED,
            offset: 0,
            len: TOTAL,
            total: Some(TOTAL),
            want_welford: true,
            want_histogram: true,
            want_tdigest: true,
            histogram: (0.0, 0.9, 48),
            tdigest_compression: 100.0,
            proposal: (0.0, 1.0),
            threshold: 3.0,
            want_wmoments: false,
            want_whistogram: false,
        });
    let reference = reference.expect("reference run succeeds");
    let ref_hist = Histogram::from_bytes(reference.histogram_bytes.as_ref().unwrap()).unwrap();
    let ref_welford = WelfordSink::from_bytes(reference.welford_bytes.as_ref().unwrap()).unwrap();
    let ref_digest = TDigest::from_bytes(reference.tdigest_bytes.as_ref().unwrap()).unwrap();

    // Bit-identical counts: the shard union IS the single-run stream.
    assert_eq!(
        histogram.counts(),
        ref_hist.counts(),
        "merged histogram must be bit-identical to the local run"
    );
    assert_eq!(histogram.total(), TOTAL as u64);
    let (merged, reference_moments) = (welford.moments(), ref_welford.moments());
    assert_eq!(merged.count(), reference_moments.count());
    assert_eq!(merged.count(), TOTAL as u64);
    // Moments merge through the pairwise combination formula, so they are
    // equal to rounding, not necessarily to the bit.
    assert!((merged.mean() - reference_moments.mean()).abs() <= 1e-12);
    assert!((merged.variance() - reference_moments.variance()).abs() <= 1e-12);

    // Quantiles from the merged digest stay inside the observed range and
    // agree tightly with the local digest.
    assert_eq!(digest.count(), ref_digest.count());
    for p in [0.1, 0.5, 0.9] {
        let q = digest.quantile(p).expect("non-empty digest");
        let q_ref = ref_digest.quantile(p).expect("non-empty digest");
        assert!(
            q >= reference_moments.min() && q <= reference_moments.max(),
            "q{p} = {q} escaped the observed range"
        );
        assert!((q - q_ref).abs() <= 0.02, "q{p}: {q} vs {q_ref}");
    }

    handle.shutdown();
}

#[test]
fn weighted_shards_over_http_merge_to_the_whole_range_run() {
    use stats::{WeightedHistogram, WeightedMoments, WeightedSink};

    let server = Server::bind(&ServerConfig::default()).expect("server boots");
    let addr = server.addr();
    let handle = server.start();

    let post = |offset: usize, len: usize| -> u64 {
        let body = format!(
            r#"{{"circuit": "gauss_tail", "seed": 13,
                "shard": {{"offset": {offset}, "len": {len}}},
                "proposal": {{"shift": 4.0}}, "threshold": 4.0,
                "histogram": {{"lo": -4.0, "hi": 8.0, "bins": 24}}}}"#
        );
        let (status, reply) = http(addr, "POST", "/experiments", Some(&body));
        assert_eq!(status, 202, "{}", reply.to_text());
        reply
            .get("run")
            .and_then(|r| r.get("id"))
            .and_then(Json::as_u64)
            .expect("run id")
    };

    // Three uneven shards vs the whole range, all over the wire.
    let whole = await_run(addr, post(0, 3000));
    let parts = [post(0, 811), post(811, 1489), post(2300, 700)];
    let [a, b, c] = parts.map(|id| await_run(addr, id));

    let mut moments = WeightedMoments::from_bytes(&sketch_bytes(&a, "wmoments")).unwrap();
    let mut hist = WeightedHistogram::from_bytes(&sketch_bytes(&a, "whistogram")).unwrap();
    for shard in [&b, &c] {
        moments
            .try_merge_from(&WeightedMoments::from_bytes(&sketch_bytes(shard, "wmoments")).unwrap())
            .expect("shards share the threshold");
        hist.try_merge_from(
            &WeightedHistogram::from_bytes(&sketch_bytes(shard, "whistogram")).unwrap(),
        )
        .expect("shards share the binning");
    }
    assert_eq!(
        moments.to_bytes(),
        sketch_bytes(&whole, "wmoments"),
        "merged weighted moments must be bit-identical to the whole-range run"
    );
    assert_eq!(
        hist.to_bytes(),
        sketch_bytes(&whole, "whistogram"),
        "merged weighted histogram must be bit-identical to the whole-range run"
    );
    // The merged estimator resolves the analytic 4-sigma tail — a value
    // plain MC at 3000 samples (expected hits ~0.1) cannot see.
    let truth = stats::gaussian::tail(4.0);
    assert!(
        (moments.estimate() / truth - 1.0).abs() < 0.2,
        "merged IS estimate {} vs analytic {truth}",
        moments.estimate()
    );
    // The scalar report mirrors the estimator.
    let mean = whole
        .get("result")
        .and_then(|r| r.get("moments"))
        .and_then(|m| m.get("mean"))
        .and_then(Json::as_f64)
        .expect("moments.mean");
    assert_eq!(mean, moments.estimate());

    handle.shutdown();
}

#[test]
fn hostile_inputs_get_envelopes_not_panics() {
    let cfg = ServerConfig {
        max_body: 1024,
        ..ServerConfig::default()
    };
    let server = Server::bind(&cfg).expect("server boots");
    let addr = server.addr();
    let handle = server.start();

    // Garbage framing: still a structured 400 envelope.
    let (status, body) = raw_exchange(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400);
    let envelope = Json::parse(&body).expect("error envelope is JSON");
    assert_eq!(
        envelope
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request")
    );

    // Malformed JSON body.
    let (status, reply) = http(addr, "POST", "/experiments", Some("{\"circuit\": "));
    assert_eq!(status, 400);
    assert!(reply
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .unwrap()
        .contains("invalid JSON"));

    // Unknown route and unknown run.
    let (status, _) = http(addr, "GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _) = http(addr, "GET", "/runs/999", None);
    assert_eq!(status, 404);

    // A body over the configured cap is refused before buffering.
    let big = format!(
        r#"{{"circuit": "device_idsat", "samples": 5, "analysis": "{}"}}"#,
        "x".repeat(2048)
    );
    let (status, reply) = http(addr, "POST", "/experiments", Some(&big));
    assert_eq!(status, 413, "{}", reply.to_text());

    // Mismatched sketch configurations refuse to merge client-side
    // instead of corrupting state: run the same experiment with two
    // different histogram configurations and two different compressions.
    let spec_a = r#"{"circuit": "device_idsat", "samples": 40,
                     "histogram": {"lo": 0.0, "hi": 1.0, "bins": 16},
                     "tdigest": {"compression": 50}}"#;
    let spec_b = r#"{"circuit": "device_idsat", "samples": 40,
                     "histogram": {"lo": 0.0, "hi": 1.0, "bins": 32},
                     "tdigest": {"compression": 200}}"#;
    let (_, reply_a) = http(addr, "POST", "/experiments", Some(spec_a));
    let (_, reply_b) = http(addr, "POST", "/experiments", Some(spec_b));
    let id_a = reply_a
        .get("run")
        .and_then(|r| r.get("id"))
        .and_then(Json::as_u64)
        .unwrap();
    let id_b = reply_b
        .get("run")
        .and_then(|r| r.get("id"))
        .and_then(Json::as_u64)
        .unwrap();
    let run_a = await_run(addr, id_a);
    let run_b = await_run(addr, id_b);
    let mut histogram = Histogram::from_bytes(&sketch_bytes(&run_a, "histogram")).unwrap();
    let other = Histogram::from_bytes(&sketch_bytes(&run_b, "histogram")).unwrap();
    assert!(histogram.try_merge_from(&other).is_err());
    let mut digest = TDigest::from_bytes(&sketch_bytes(&run_a, "tdigest")).unwrap();
    let other = TDigest::from_bytes(&sketch_bytes(&run_b, "tdigest")).unwrap();
    assert!(digest.try_merge_from(&other).is_err());

    // After all that abuse the server still answers.
    let (status, health) = http(addr, "GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    handle.shutdown();
}
