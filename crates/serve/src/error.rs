//! Structured error envelopes: every failure a client can provoke has a
//! status, a stable machine-readable code, and a human-readable message.
//!
//! The server's contract is that *no input panics it*: malformed JSON,
//! unknown routes, oversized bodies, invalid experiment specs, and
//! mismatched sketch merges all come back as
//! `{"error": {"code", "message", "status"}}` envelopes with the matching
//! HTTP status. [`ApiError`] is the one type every layer funnels into.

use crate::http::HttpError;
use crate::json::{num, obj, s, Json};

/// One client-visible error: HTTP status, stable code, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// The HTTP status the response carries.
    pub status: u16,
    /// A stable machine-readable code (`bad_request`, `not_found`,
    /// `queue_full`, ...). Clients branch on this, not the message.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ApiError {
    /// `400` — the request body or spec is malformed.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            code: "bad_request",
            message: message.into(),
        }
    }

    /// `404` — no such route or run.
    #[must_use]
    pub fn not_found(message: impl Into<String>) -> Self {
        ApiError {
            status: 404,
            code: "not_found",
            message: message.into(),
        }
    }

    /// `405` — the route exists but not for this method.
    #[must_use]
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        ApiError {
            status: 405,
            code: "method_not_allowed",
            message: format!("{method} is not supported on {path}"),
        }
    }

    /// `413` — the request body exceeds the configured cap.
    #[must_use]
    pub fn payload_too_large(limit: usize) -> Self {
        ApiError {
            status: 413,
            code: "payload_too_large",
            message: format!("request body exceeds the {limit}-byte limit"),
        }
    }

    /// `503` — the bounded job queue is full; retry later.
    #[must_use]
    pub fn queue_full(capacity: usize) -> Self {
        ApiError {
            status: 503,
            code: "queue_full",
            message: format!("job queue is at its {capacity}-job capacity; retry later"),
        }
    }

    /// `500` — an unexpected internal failure (including a caught panic);
    /// the message is intentionally generic.
    #[must_use]
    pub fn internal() -> Self {
        ApiError {
            status: 500,
            code: "internal",
            message: "internal server error".to_string(),
        }
    }

    /// The JSON error envelope.
    #[must_use]
    pub fn to_json(&self) -> Json {
        obj(vec![(
            "error",
            obj(vec![
                ("code", s(self.code)),
                ("message", s(&self.message)),
                ("status", num(f64::from(self.status))),
            ]),
        )])
    }
}

impl From<HttpError> for ApiError {
    fn from(e: HttpError) -> Self {
        match e {
            HttpError::PayloadTooLarge => ApiError {
                status: 413,
                code: "payload_too_large",
                message: e.to_string(),
            },
            HttpError::BadRequest(_) | HttpError::ConnectionClosed => {
                ApiError::bad_request(e.to_string())
            }
            // Unreachable in practice: the connection handler drops the
            // socket on I/O errors instead of responding.
            HttpError::Io(_) => ApiError::internal(),
        }
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.status, self.code, self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape_is_stable() {
        let e = ApiError::bad_request("circuit `nope` is unknown");
        let text = e.to_json().to_text();
        assert_eq!(
            text,
            r#"{"error":{"code":"bad_request","message":"circuit `nope` is unknown","status":400}}"#
        );
    }

    #[test]
    fn http_errors_map_to_statuses() {
        assert_eq!(ApiError::from(HttpError::PayloadTooLarge).status, 413);
        assert_eq!(ApiError::from(HttpError::BadRequest("x")).status, 400);
        assert_eq!(
            ApiError::from(HttpError::Io(std::io::ErrorKind::TimedOut)).status,
            500
        );
    }
}
