//! Circuit templates and the pooled-`Session` execution engine.
//!
//! Every experiment the server accepts targets a **circuit template**: a
//! named, pre-registered workload whose topology is elaborated once at
//! server startup into a master [`spice::Session`]. Job execution checks a
//! worker session out of the template's pool (replicating from the master
//! via [`Session::replicate`] only when the pool is empty), runs the
//! requested shard through
//! [`ParallelRunner::run_streaming_batched`](vscore::mc::ParallelRunner::run_streaming_batched)
//! — K mismatch lanes stamped and LU-solved per [`Session::dc_batch`]
//! call — and returns the session for the next job, so a long-running
//! server pays netlist validation and MNA elaboration once per template,
//! not once per request.
//!
//! Determinism is the protocol's backbone: every sample is a pure function
//! of `(seed, index)` (cold-started solves, per-lane device draws from
//! the sampler stream, lanes bit-identical to the scalar path), so two
//! servers handed disjoint shards of one experiment produce sketch bytes
//! that merge to the same state as a single local run over the union —
//! the property the loopback e2e test pins.

use crate::store::{ExperimentSpec, RunFailure, RunResult};
use circuits::sram::{full_cell, SramDevices, SramSizing};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, MosfetModel, Polarity};
use spice::{NodeId, Session, SpiceError};
use stats::histogram::Histogram;
use stats::sink::{Sink, WelfordSink};
use stats::{GaussianProposal, Sampler, TDigest, WeightedHistogram, WeightedMoments};
use std::sync::Mutex;
use vscore::mc::{McFactory, ParallelRunner};
use vscore::metrics::DeviceMetrics;
use vscore::sensitivity::{VariedModel, VsBuilder};

/// Supply voltage shared by the built-in templates (the paper's 0.9 V).
const VDD: f64 = 0.9;

/// Cap on idle pooled sessions per template; replicas beyond this are
/// dropped at check-in instead of accumulating without bound.
const MAX_IDLE_SESSIONS: usize = 8;

/// Mismatch lanes per batched DC solve on the SRAM template. Eight keeps
/// the K-lane workspace small while amortizing the stamp traversal and
/// per-sample device construction; the executed sample set and merged
/// sketch bytes are independent of this value (lane bit-identity).
const DC_BATCH_LANES: std::num::NonZeroUsize = std::num::NonZeroUsize::new(8).unwrap();

/// The paper-units mismatch specification every built-in template draws
/// from (Table II: `A_VT` 2.3 mV·µm, `A_alpha2/3` 3.71 %·µm, `A_beta`
/// 944 %·µm on a 0.29 correlation).
fn paper_spec() -> MismatchSpec {
    MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29)
}

/// The circuit-level Monte Carlo device factory for the VS model at the
/// paper's 40 nm operating point. The embedded sampler seed is irrelevant:
/// every sample replaces it with the pure `(seed, index)` stream.
fn vs_factory() -> McFactory {
    McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        paper_spec(),
        paper_spec(),
        Sampler::from_seed(0),
    )
}

/// Static description of one registered template, served by
/// `GET /circuits`.
#[derive(Debug, Clone)]
pub struct TemplateInfo {
    /// Stable template id, used as the spec's `circuit` field.
    pub id: &'static str,
    /// What one sample computes.
    pub description: &'static str,
    /// The analysis kinds the template supports (spec `analysis` field).
    pub analyses: &'static [&'static str],
    /// Physical unit of the scalar metric.
    pub unit: &'static str,
    /// Default `(lo, hi, bins)` for the histogram sink, chosen to bracket
    /// the metric's distribution.
    pub default_histogram: (f64, f64, usize),
}

/// A checked-out SRAM worker: one elaborated full-cell session plus the
/// internal node ids the metric reads.
struct SramWorker {
    session: Session,
    l: NodeId,
    r: NodeId,
}

/// The SRAM template's runtime: master session, metric node ids, and the
/// idle-worker pool. Boxed inside [`TemplateRuntime`] so session-less
/// template variants stay small.
struct SramRuntime {
    master: Session,
    l: NodeId,
    r: NodeId,
    idle: Mutex<Vec<SramWorker>>,
}

/// Per-template runtime state: the master session (elaborated once at
/// startup) plus the idle-worker pool.
enum TemplateRuntime {
    /// 6T SRAM cell DC operating point; pooled sessions.
    SramDc(Box<SramRuntime>),
    /// Device-level Idsat Monte Carlo; no circuit session needed.
    DeviceIdsat,
    /// Standard-normal tail probability by mean-shift importance
    /// sampling; pure stats, no circuit session needed.
    GaussTail,
}

/// One registered template: the static description plus runtime state.
struct Template {
    info: TemplateInfo,
    runtime: TemplateRuntime,
}

/// The execution engine: the template registry with its session pools.
/// One engine is shared (behind `Arc`) by every server worker thread.
pub struct Engine {
    templates: Vec<Template>,
}

impl Engine {
    /// Builds the engine, elaborating each template's master session.
    /// Startup is the right time to pay (and surface) elaboration cost:
    /// a server that cannot build its circuits must fail to boot, not
    /// fail its first request.
    ///
    /// # Errors
    ///
    /// Propagates [`SpiceError`] from master-session elaboration.
    pub fn new() -> Result<Self, SpiceError> {
        let sz = SramSizing::default();
        let mut f = vs_factory();
        let devices = SramDevices::draw(sz, &mut f);
        let (circuit, l, r) = full_cell(&devices, VDD);
        let master = Session::elaborate(circuit)?;
        Ok(Engine {
            templates: vec![
                Template {
                    info: TemplateInfo {
                        id: "sram6t_dc",
                        description: "6T SRAM cell DC operating point under within-die \
                                      mismatch; metric = right storage node voltage",
                        analyses: &["dc"],
                        unit: "V",
                        default_histogram: (0.0, VDD, 64),
                    },
                    runtime: TemplateRuntime::SramDc(Box::new(SramRuntime {
                        master,
                        l,
                        r,
                        idle: Mutex::new(Vec::new()),
                    })),
                },
                Template {
                    info: TemplateInfo {
                        id: "device_idsat",
                        description: "single 600nm/40nm NMOS saturation current under \
                                      Pelgrom mismatch; metric = Idsat",
                        analyses: &["dc"],
                        unit: "A",
                        default_histogram: (0.0, 2e-3, 64),
                    },
                    runtime: TemplateRuntime::DeviceIdsat,
                },
                Template {
                    info: TemplateInfo {
                        id: "gauss_tail",
                        description: "standard-normal tail probability P(Z > threshold) \
                                      by mean-shift importance sampling; metric = Z \
                                      under the proposal, with exact log-weights",
                        analyses: &["is"],
                        unit: "1",
                        default_histogram: (-4.0, 8.0, 48),
                    },
                    runtime: TemplateRuntime::GaussTail,
                },
            ],
        })
    }

    /// The registered templates, in registration order.
    pub fn templates(&self) -> impl Iterator<Item = &TemplateInfo> {
        self.templates.iter().map(|t| &t.info)
    }

    /// Looks a template up by id.
    #[must_use]
    pub fn template(&self, id: &str) -> Option<&TemplateInfo> {
        self.templates
            .iter()
            .find(|t| t.info.id == id)
            .map(|t| &t.info)
    }

    /// Idle pooled sessions per template (template id, idle count) — a
    /// health metric.
    #[must_use]
    pub fn pool_sizes(&self) -> Vec<(&'static str, usize)> {
        self.templates
            .iter()
            .map(|t| {
                let idle = match &t.runtime {
                    TemplateRuntime::SramDc(rt) => {
                        let idle = &rt.idle;
                        idle.lock().expect("no poisoned locks").len()
                    }
                    TemplateRuntime::DeviceIdsat | TemplateRuntime::GaussTail => 0,
                };
                (t.info.id, idle)
            })
            .collect()
    }

    /// Executes one experiment shard to completion, streaming into the
    /// spec's requested sinks. Per-sample solver failures (extreme
    /// mismatch draws that do not converge) are counted, not fatal —
    /// exactly as every Monte Carlo path in this workspace counts them.
    ///
    /// # Errors
    ///
    /// A [`RunFailure`] when the shard cannot run at all, classified for
    /// the coordinator: an unknown template (already rejected at spec
    /// validation, so only a registry drift can reach here) is fatal —
    /// re-issuing the identical shard anywhere fails the same way — while
    /// a session replication failure is transient (another worker, or a
    /// later attempt with a less loaded pool, can succeed).
    pub fn execute(&self, spec: &ExperimentSpec) -> Result<RunResult, RunFailure> {
        let template = self
            .templates
            .iter()
            .find(|t| t.info.id == spec.circuit)
            .ok_or_else(|| {
                RunFailure::fatal(format!("unknown circuit template `{}`", spec.circuit))
            })?;
        match &template.runtime {
            TemplateRuntime::SramDc(rt) => {
                self.execute_sram(spec, &rt.master, rt.l, rt.r, &rt.idle)
            }
            TemplateRuntime::DeviceIdsat => Ok(execute_device_idsat(spec)),
            TemplateRuntime::GaussTail => Ok(execute_gauss_tail(spec)),
        }
    }

    fn execute_sram(
        &self,
        spec: &ExperimentSpec,
        master: &Session,
        l: NodeId,
        r: NodeId,
        idle: &Mutex<Vec<SramWorker>>,
    ) -> Result<RunResult, RunFailure> {
        // Check a worker session out of the pool; replicate from the
        // master only when the pool is dry (first request, or more
        // concurrent jobs than ever before).
        let worker = {
            let pooled = idle.lock().expect("no poisoned locks").pop();
            match pooled {
                Some(w) => w,
                None => SramWorker {
                    session: master.replicate().map_err(|e| {
                        RunFailure::transient(format!("session replication failed: {e}"))
                    })?,
                    l,
                    r,
                },
            }
        };

        let sz = SramSizing::default();
        let factory = vs_factory();
        let cell = Mutex::new(worker);
        // K lanes per solve: one topology traversal stamps all K mismatch
        // draws and a batched LU factors them together. Each lane is
        // bit-identical to the old scalar "swap devices, cold-start,
        // solve from the guess" sample (the `spice` batch_equivalence
        // suite pins this), so shard bytes — and therefore fleet merges
        // and the loopback e2e — are unchanged by the batching.
        let batch = |(): &mut (), _base: usize, samplers: &mut [Sampler]| {
            let lanes: Vec<Vec<(&'static str, Box<dyn MosfetModel>)>> = samplers
                .iter()
                .map(|sampler| {
                    let mut f = factory.clone();
                    f.set_sampler(sampler.clone());
                    let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                    let [pd0, pd1] = pd;
                    let [pu0, pu1] = pu;
                    let [pg0, pg1] = pg;
                    vec![
                        ("PD1", pd0),
                        ("PD2", pd1),
                        ("PU1", pu0),
                        ("PU2", pu1),
                        ("PG1", pg0),
                        ("PG2", pg1),
                    ]
                })
                .collect();
            let mut w = cell.lock().expect("no poisoned locks");
            // Cold-start every batch: each lane departs from the pure
            // guess-built point, so every sample stays a pure function of
            // `(seed, index)` — what makes shards posted to different
            // servers merge bit-identically with a single run.
            w.session.invalidate_warm_start();
            let (wl, wr) = (w.l, w.r);
            match w.session.dc_batch(lanes, Some(&[(wl, 0.0), (wr, VDD)])) {
                Ok(ops) => ops
                    .into_iter()
                    .map(|lane| lane.map(|op| op.voltage(wr)))
                    .collect(),
                // A whole-batch error (validation, not convergence) fails
                // every lane of the chunk; per-lane solver failures are
                // already isolated inside `dc_batch`.
                Err(e) => samplers.iter().map(|_| Err(e.clone())).collect(),
            }
        };

        let mut sinks = SinkSet::for_spec(spec);
        let outcome = ParallelRunner::new(spec.seed)
            .workers(1)
            .run_streaming_batched(
                spec.offset,
                spec.len,
                DC_BATCH_LANES,
                |_, _| Ok(()),
                batch,
                &mut sinks,
            )
            .map_err(|e| RunFailure::transient(format!("shard setup failed: {e}")))?;

        // Return the session for the next job (bounded pool).
        let worker = cell.into_inner().expect("no poisoned locks");
        let mut pool = idle.lock().expect("no poisoned locks");
        if pool.len() < MAX_IDLE_SESSIONS {
            pool.push(worker);
        }
        drop(pool);

        Ok(RunResult::collect(
            outcome.observed as u64,
            outcome.failures as u64,
            spec,
            sinks,
        ))
    }
}

/// The device-level template: no session, every sample evaluates a
/// mismatch-drawn VS device directly (the `fleet_merge` example's
/// workload).
fn execute_device_idsat(spec: &ExperimentSpec) -> RunResult {
    let builder = VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom: Geometry::from_nm(600.0, 40.0),
    };
    let mismatch = paper_spec();
    let sample = move |(): &mut (), sampler: &mut Sampler, _i: usize| {
        let delta = mismatch.sample(builder.geometry(), || sampler.standard_normal());
        Ok::<f64, SpiceError>(DeviceMetrics::evaluate(builder.build(delta).as_ref(), VDD).idsat)
    };
    let mut sinks = SinkSet::for_spec(spec);
    let outcome = ParallelRunner::new(spec.seed)
        .workers(1)
        .run_streaming_range(spec.offset, spec.len, |_, _| Ok(()), sample, &mut sinks)
        .expect("device workload setup is infallible");
    RunResult::collect(
        outcome.observed as u64,
        outcome.failures as u64,
        spec,
        sinks,
    )
}

/// The importance-sampled template: every sample draws from the spec's
/// mean-shift/scale Gaussian proposal and carries the exact
/// log-likelihood-ratio weight; the weighted sinks estimate nominal
/// `N(0, 1)` statistics. Each `(value, log-weight)` record is a pure
/// function of `(seed, index)`, so disjoint shards merge bit-identically
/// with a single run over the union — the same determinism contract as
/// the circuit templates, extended through the weighted codec.
fn execute_gauss_tail(spec: &ExperimentSpec) -> RunResult {
    let (shift, scale) = spec.proposal;
    let proposal = GaussianProposal::new(shift, scale);
    let mut sinks = WeightedSinkSet::for_spec(spec);
    let outcome = ParallelRunner::new(spec.seed)
        .workers(1)
        .run_streaming_is(
            spec.offset,
            spec.len,
            |_, _| Ok::<(), SpiceError>(()),
            |(), sampler, _i| Ok(proposal.draw_weighted(sampler)),
            &mut sinks,
        )
        .expect("gauss_tail workload setup is infallible");
    RunResult::collect_weighted(
        outcome.observed as u64,
        outcome.failures as u64,
        spec,
        sinks,
    )
}

/// The per-run weighted sink bundle for importance-sampled templates:
/// the tail estimator always (it feeds the run report), the weighted
/// histogram only when its payload is requested.
pub struct WeightedSinkSet {
    /// Always-on nominal-tail estimator `P(X > threshold)`.
    pub moments: WeightedMoments,
    /// Weighted histogram of the nominal distribution, when requested.
    pub histogram: Option<WeightedHistogram>,
}

impl WeightedSinkSet {
    /// Builds the bundle a spec asked for.
    #[must_use]
    pub fn for_spec(spec: &ExperimentSpec) -> Self {
        let (lo, hi, bins) = spec.histogram;
        WeightedSinkSet {
            moments: WeightedMoments::above(spec.threshold),
            histogram: spec
                .want_whistogram
                .then(|| WeightedHistogram::new(lo, hi, bins)),
        }
    }
}

impl Sink<(f64, f64)> for WeightedSinkSet {
    fn observe(&mut self, index: usize, record: (f64, f64)) {
        self.moments.observe(index, record);
        if let Some(h) = &mut self.histogram {
            h.observe(index, record);
        }
    }

    fn finish(&mut self) {
        Sink::finish(&mut self.moments);
        if let Some(h) = &mut self.histogram {
            Sink::finish(h);
        }
    }
}

/// The per-run sink bundle: moments always (they feed the run report),
/// histogram and t-digest only when the spec requests those payloads.
/// One concrete type avoids a combinatorial explosion of tuple sinks.
pub struct SinkSet {
    /// Always-on moment accumulator.
    pub welford: WelfordSink,
    /// Fixed-bin histogram, when requested.
    pub histogram: Option<Histogram>,
    /// Mergeable quantile sketch, when requested.
    pub tdigest: Option<TDigest>,
}

impl SinkSet {
    /// Builds the bundle a spec asked for.
    #[must_use]
    pub fn for_spec(spec: &ExperimentSpec) -> Self {
        let (lo, hi, bins) = spec.histogram;
        SinkSet {
            welford: WelfordSink::new(),
            histogram: spec.want_histogram.then(|| Histogram::new(lo, hi, bins)),
            tdigest: spec
                .want_tdigest
                .then(|| TDigest::new(spec.tdigest_compression)),
        }
    }
}

impl Sink for SinkSet {
    fn observe(&mut self, index: usize, value: f64) {
        self.welford.observe(index, value);
        if let Some(h) = &mut self.histogram {
            h.observe(index, value);
        }
        if let Some(d) = &mut self.tdigest {
            d.observe(index, value);
        }
    }

    fn finish(&mut self) {
        self.welford.finish();
        if let Some(h) = &mut self.histogram {
            Sink::finish(h);
        }
        if let Some(d) = &mut self.tdigest {
            d.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ExperimentSpec;
    use stats::sink::MergeableSink;
    use stats::WeightedSink;

    fn spec(circuit: &str, seed: u64, offset: usize, len: usize) -> ExperimentSpec {
        ExperimentSpec {
            circuit: circuit.to_string(),
            analysis: "dc".to_string(),
            seed,
            offset,
            len,
            total: None,
            want_welford: true,
            want_histogram: true,
            want_tdigest: true,
            histogram: (0.0, 1.0, 16),
            tdigest_compression: 100.0,
            proposal: (0.0, 1.0),
            threshold: 3.0,
            want_wmoments: false,
            want_whistogram: false,
        }
    }

    fn is_spec(seed: u64, offset: usize, len: usize) -> ExperimentSpec {
        ExperimentSpec {
            circuit: "gauss_tail".to_string(),
            analysis: "is".to_string(),
            seed,
            offset,
            len,
            total: None,
            want_welford: false,
            want_histogram: false,
            want_tdigest: false,
            histogram: (-4.0, 8.0, 48),
            tdigest_compression: 100.0,
            proposal: (4.0, 1.0),
            threshold: 4.0,
            want_wmoments: true,
            want_whistogram: true,
        }
    }

    #[test]
    fn registry_exposes_both_templates() {
        let engine = Engine::new().expect("templates elaborate");
        let ids: Vec<_> = engine.templates().map(|t| t.id).collect();
        assert_eq!(ids, vec!["sram6t_dc", "device_idsat", "gauss_tail"]);
        assert!(engine.template("sram6t_dc").is_some());
        assert!(engine.template("nope").is_none());
    }

    #[test]
    fn device_shards_merge_to_the_single_run() {
        let engine = Engine::new().expect("templates elaborate");
        let a = engine.execute(&spec("device_idsat", 7, 0, 300)).unwrap();
        let b = engine.execute(&spec("device_idsat", 7, 300, 200)).unwrap();
        let whole = engine.execute(&spec("device_idsat", 7, 0, 500)).unwrap();

        let mut h = Histogram::from_bytes(&a.histogram_bytes.clone().unwrap()).unwrap();
        h.try_merge_from(&Histogram::from_bytes(&b.histogram_bytes.clone().unwrap()).unwrap())
            .unwrap();
        let href = Histogram::from_bytes(&whole.histogram_bytes.clone().unwrap()).unwrap();
        assert_eq!(h.counts(), href.counts());
        assert_eq!(a.observed + b.observed, whole.observed);
    }

    #[test]
    fn weighted_shards_merge_bit_identically_to_the_single_run() {
        let engine = Engine::new().expect("templates elaborate");
        // Three uneven partitions of the same 900-sample experiment.
        let whole = engine.execute(&is_spec(21, 0, 900)).unwrap();
        let a = engine.execute(&is_spec(21, 0, 137)).unwrap();
        let b = engine.execute(&is_spec(21, 137, 563)).unwrap();
        let c = engine.execute(&is_spec(21, 700, 200)).unwrap();

        let mut m = WeightedMoments::from_bytes(a.wmoments_bytes.as_ref().unwrap()).unwrap();
        for shard in [&b, &c] {
            m.try_merge_from(
                &WeightedMoments::from_bytes(shard.wmoments_bytes.as_ref().unwrap()).unwrap(),
            )
            .unwrap();
        }
        assert_eq!(m.to_bytes(), whole.wmoments_bytes.clone().unwrap());

        let mut h = WeightedHistogram::from_bytes(a.whistogram_bytes.as_ref().unwrap()).unwrap();
        for shard in [&b, &c] {
            h.try_merge_from(
                &WeightedHistogram::from_bytes(shard.whistogram_bytes.as_ref().unwrap()).unwrap(),
            )
            .unwrap();
        }
        assert_eq!(h.to_bytes(), whole.whistogram_bytes.clone().unwrap());

        // And the merged estimator resolves the analytic 4-sigma tail.
        let truth = stats::gaussian::tail(4.0);
        assert!((m.estimate() / truth - 1.0).abs() < 0.3);
        assert_eq!(whole.mean, m.estimate());
        // Mismatched thresholds refuse to merge instead of corrupting.
        let mut other = engine.execute(&is_spec(21, 0, 10)).unwrap();
        other.wmoments_bytes = None;
        let mut wrong = is_spec(21, 0, 10);
        wrong.threshold = 3.0;
        let wrong = engine.execute(&wrong).unwrap();
        assert!(m
            .try_merge_from(
                &WeightedMoments::from_bytes(wrong.wmoments_bytes.as_ref().unwrap()).unwrap()
            )
            .is_err());
    }

    #[test]
    fn sram_pool_reuses_sessions_across_jobs() {
        let engine = Engine::new().expect("templates elaborate");
        assert_eq!(
            engine.pool_sizes(),
            vec![("sram6t_dc", 0), ("device_idsat", 0), ("gauss_tail", 0)]
        );
        let r1 = engine.execute(&spec("sram6t_dc", 3, 0, 8)).unwrap();
        assert_eq!(
            engine.pool_sizes()[0],
            ("sram6t_dc", 1),
            "the session returned to the pool"
        );
        let r2 = engine.execute(&spec("sram6t_dc", 3, 0, 8)).unwrap();
        // A pooled (reused) session reproduces the fresh session's run
        // bit-for-bit: every sample is cold-started pure (seed, i).
        assert_eq!(r1.welford_bytes, r2.welford_bytes);
        assert_eq!(r1.histogram_bytes, r2.histogram_bytes);
        assert_eq!(engine.pool_sizes()[0], ("sram6t_dc", 1));
    }

    #[test]
    fn unknown_template_is_an_error_not_a_panic() {
        let engine = Engine::new().expect("templates elaborate");
        let err = engine.execute(&spec("nope", 1, 0, 10)).unwrap_err();
        assert!(err.message.contains("unknown circuit template"));
        assert!(!err.retryable, "a registry miss recurs on every retry");
    }
}
