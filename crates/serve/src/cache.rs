//! The replay cache: finished run results spilled to sealed artifacts so
//! an identical resubmission — same template, spec, seed, and shard — is
//! served from disk, across process restarts, with `cached: true`.
//!
//! Correctness rests on the workspace determinism contract: a run result
//! is a pure function of its [`ExperimentSpec`], so replaying stored
//! bytes *is* re-running the experiment, only cheaper. The cache is
//! therefore safe to treat as best-effort in both directions:
//!
//! * **store** failures are ignored by the caller (the computed result is
//!   still returned; the next identical run just recomputes), and
//! * **load** is paranoid: the artifact seal, the whole-file checksum,
//!   and the embedded canonical spec key are all verified, and *any*
//!   imperfection is a cache miss, never a served result. A hash
//!   collision in the file name is caught by the key comparison; corrupt
//!   bytes are caught by the seal.
//!
//! Each cache entry is a sealed [`stats::artifact`] container:
//! a `'K'` section (the canonical spec key), an `'R'` section (scalar run
//! accounting), then the tagged sketch payloads exactly as computed
//! (`'W'`/`'H'`/`'T'`/`'I'`/`'G'`), named `run-<fnv64(key)>.svaf`.

use crate::store::{ExperimentSpec, RunResult};
use stats::artifact::{fnv1a64, seal, Artifact};
use stats::codec::{self, CodecError, Reader};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Section tag for the canonical spec key.
pub const KEY_TAG: u8 = b'K';
/// Section tag for the scalar run accounting.
pub const META_TAG: u8 = b'R';

/// The canonical identity of a run: every [`ExperimentSpec`] field,
/// rendered so two specs share a key iff they are bit-identical (floats
/// by exact bit pattern).
#[must_use]
pub fn cache_key(spec: &ExperimentSpec) -> String {
    let (hlo, hhi, hbins) = spec.histogram;
    let (pshift, pscale) = spec.proposal;
    format!(
        "circuit={};analysis={};seed={};offset={};len={};total={};\
         sinks={}{}{}{}{};histogram={:016x}:{:016x}:{hbins};tdigest={:016x};\
         proposal={:016x}:{:016x};threshold={:016x}",
        spec.circuit,
        spec.analysis,
        spec.seed,
        spec.offset,
        spec.len,
        spec.total.map_or(-1i64, |t| t as i64),
        u8::from(spec.want_welford),
        u8::from(spec.want_histogram),
        u8::from(spec.want_tdigest),
        u8::from(spec.want_wmoments),
        u8::from(spec.want_whistogram),
        hlo.to_bits(),
        hhi.to_bits(),
        spec.tdigest_compression.to_bits(),
        pshift.to_bits(),
        pscale.to_bits(),
        spec.threshold.to_bits(),
    )
}

/// A directory of sealed run artifacts keyed by canonical spec.
#[derive(Debug)]
pub struct ReplayCache {
    dir: PathBuf,
}

impl ReplayCache {
    /// Opens (creating if needed) the cache directory.
    ///
    /// # Errors
    ///
    /// Propagates the directory-creation failure.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(ReplayCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.dir
            .join(format!("run-{:016x}.svaf", fnv1a64(key.as_bytes())))
    }

    /// Spills one finished result durably (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures; callers treat the cache as
    /// best-effort and may ignore them.
    pub fn store(&self, spec: &ExperimentSpec, result: &RunResult) -> io::Result<()> {
        let key = cache_key(spec);
        let bytes = seal(entry_sections(&key, result));
        let path = self.entry_path(&key);
        let tmp = path.with_extension("svaf.tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Replays a stored result for `spec`, if a fully verified entry
    /// exists. Every failure mode — no file, broken seal, checksum
    /// mismatch, key collision, malformed meta — is a miss (`None`).
    #[must_use]
    pub fn load(&self, spec: &ExperimentSpec) -> Option<RunResult> {
        let key = cache_key(spec);
        let bytes = fs::read(self.entry_path(&key)).ok()?;
        let artifact = Artifact::from_bytes(&bytes).ok()?;
        result_from_artifact(&key, &artifact).ok()
    }
}

/// Encodes one cache entry's sections.
fn entry_sections(key: &str, result: &RunResult) -> Vec<Vec<u8>> {
    let mut key_section = Vec::new();
    codec::put_header(&mut key_section, KEY_TAG);
    codec::put_bytes(&mut key_section, key.as_bytes());

    let mut meta = Vec::new();
    codec::put_header(&mut meta, META_TAG);
    codec::put_u64(&mut meta, result.observed);
    codec::put_u64(&mut meta, result.failures);
    codec::put_u64(&mut meta, result.count);
    codec::put_f64(&mut meta, result.mean);
    codec::put_f64(&mut meta, result.variance);

    let mut sections = vec![key_section, meta];
    for bytes in [
        &result.welford_bytes,
        &result.histogram_bytes,
        &result.tdigest_bytes,
        &result.wmoments_bytes,
        &result.whistogram_bytes,
    ]
    .into_iter()
    .flatten()
    {
        sections.push(bytes.clone());
    }
    sections
}

/// Decodes and verifies one cache entry against the expected key.
fn result_from_artifact(key: &str, artifact: &Artifact) -> Result<RunResult, CodecError> {
    let key_section = artifact
        .sections
        .first()
        .ok_or(CodecError::Invalid("cache entry has no sections"))?;
    let mut r = Reader::with_header(key_section, KEY_TAG)?;
    if r.take_bytes()? != key.as_bytes() {
        // The file name hash collided with a different spec; serving it
        // would be silently wrong, so it is merely a miss.
        return Err(CodecError::Mismatch("cache entry key differs"));
    }
    r.finish()?;

    let meta = artifact
        .sections
        .get(1)
        .ok_or(CodecError::Invalid("cache entry lacks a meta section"))?;
    let mut r = Reader::with_header(meta, META_TAG)?;
    let observed = r.take_u64()?;
    let failures = r.take_u64()?;
    let count = r.take_u64()?;
    let mean = r.take_f64()?;
    let variance = r.take_f64()?;
    r.finish()?;

    let sketch = |tag: u8| artifact.section_with_tag(tag).map(<[u8]>::to_vec);
    Ok(RunResult {
        observed,
        failures,
        count,
        mean,
        variance,
        welford_bytes: sketch(b'W'),
        histogram_bytes: sketch(b'H'),
        tdigest_bytes: sketch(b'T'),
        wmoments_bytes: sketch(b'I'),
        whistogram_bytes: sketch(b'G'),
        cached: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            circuit: "device_idsat".to_string(),
            analysis: "dc".to_string(),
            seed: 3,
            offset: 0,
            len: 20,
            total: Some(100),
            want_welford: true,
            want_histogram: true,
            want_tdigest: false,
            histogram: (0.0, 1.0, 8),
            tdigest_compression: 100.0,
            proposal: (0.0, 1.0),
            threshold: 3.0,
            want_wmoments: false,
            want_whistogram: false,
        }
    }

    fn result() -> RunResult {
        RunResult {
            observed: 19,
            failures: 1,
            count: 19,
            mean: 0.42,
            variance: 0.01,
            welford_bytes: Some(vec![b'W', 1, 9, 9]),
            histogram_bytes: Some(vec![b'H', 1, 3]),
            tdigest_bytes: None,
            wmoments_bytes: None,
            whistogram_bytes: None,
            cached: false,
        }
    }

    fn temp_cache(name: &str) -> ReplayCache {
        let dir = std::env::temp_dir().join(format!("statvs_cache_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ReplayCache::open(&dir).unwrap()
    }

    #[test]
    fn store_then_load_replays_bit_identically_with_cached_true() {
        let cache = temp_cache("roundtrip");
        let spec = spec();
        assert!(cache.load(&spec).is_none(), "cold cache must miss");
        cache.store(&spec, &result()).unwrap();
        let replay = cache.load(&spec).expect("warm cache must hit");
        assert!(replay.cached);
        let expected = RunResult {
            cached: true,
            ..result()
        };
        assert_eq!(replay, expected);

        // A reopened cache over the same directory still hits — the
        // restart scenario.
        let reopened = ReplayCache::open(cache.dir()).unwrap();
        assert_eq!(reopened.load(&spec).unwrap(), expected);
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn any_spec_difference_misses() {
        let cache = temp_cache("misses");
        let base = spec();
        cache.store(&base, &result()).unwrap();
        for f in [
            |s: &mut ExperimentSpec| s.seed += 1,
            |s: &mut ExperimentSpec| s.offset += 1,
            |s: &mut ExperimentSpec| s.len += 1,
            |s: &mut ExperimentSpec| s.total = None,
            |s: &mut ExperimentSpec| s.want_tdigest = true,
            |s: &mut ExperimentSpec| s.histogram = (0.0, 2.0, 8),
            |s: &mut ExperimentSpec| s.threshold = 4.0,
        ] {
            let mut other = base.clone();
            f(&mut other);
            assert!(cache.load(&other).is_none());
        }
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn corruption_is_a_miss_never_a_served_result() {
        let cache = temp_cache("corrupt");
        let spec = spec();
        cache.store(&spec, &result()).unwrap();
        let path = cache.entry_path(&cache_key(&spec));
        let mut bytes = fs::read(&path).unwrap();
        for i in 0..bytes.len() {
            bytes[i] ^= 0xa5;
            fs::write(&path, &bytes).unwrap();
            assert!(
                cache.load(&spec).is_none(),
                "flipped byte {i} was served from cache"
            );
            bytes[i] ^= 0xa5;
        }
        // Restored bytes hit again — the loop really was exercising the
        // corruption path, not a stale miss.
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load(&spec).is_some());
        fs::remove_dir_all(cache.dir()).unwrap();
    }

    #[test]
    fn key_collisions_are_detected_by_the_stored_key() {
        let cache = temp_cache("collision");
        let a = spec();
        cache.store(&a, &result()).unwrap();
        // Simulate a (cosmically unlikely) file-name hash collision by
        // renaming a's entry to b's slot.
        let mut b = a.clone();
        b.seed = 77;
        fs::rename(
            cache.entry_path(&cache_key(&a)),
            cache.entry_path(&cache_key(&b)),
        )
        .unwrap();
        assert!(
            cache.load(&b).is_none(),
            "a colliding entry with a different key must miss"
        );
        fs::remove_dir_all(cache.dir()).unwrap();
    }
}
