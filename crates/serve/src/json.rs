//! A minimal in-repo JSON codec: parse and serialize, no external deps.
//!
//! This is the wire vocabulary of the `statvs serve` protocol, built in
//! the same spirit as the repo's in-repo RNG and sketch byte codec: small,
//! fully validated, and owned by the workspace. The parser is a
//! recursive-descent reader over `&str` with a hard nesting-depth limit;
//! every malformed input — truncation, bad escapes, numbers that overflow
//! `f64`, trailing garbage — returns a typed [`JsonError`], never a panic,
//! which is what lets the HTTP layer promise structured error envelopes
//! for arbitrary request bodies.
//!
//! Numbers are IEEE `f64` (the only number JSON interchange guarantees);
//! integers round-trip exactly up to 2⁵³. Object member order is
//! preserved, so serialization is deterministic.

use std::fmt;

/// Maximum nesting depth the parser accepts. Far beyond any legitimate
/// experiment spec, and small enough that recursion cannot overflow the
/// stack of a connection-handler thread.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. Always finite: the parser rejects overflow, and the
    /// serializer writes non-finite values (which JSON cannot represent)
    /// as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (serialization is deterministic).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a number holding one
    /// exactly (rejects fractions and anything beyond 2⁵³, where `f64`
    /// stops being exact).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes the value to compact JSON text. Deterministic: object
    /// members keep insertion order, numbers print in Rust's shortest
    /// round-trip form. Non-finite numbers serialize as `null` (JSON has
    /// no representation for them; the protocol layer maps empty-state
    /// infinities through this deliberately).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document. The whole input must be a single value
    /// plus optional surrounding whitespace.
    ///
    /// # Errors
    ///
    /// A typed [`JsonError`] on any malformed input: truncation, invalid
    /// literals, bad string escapes, numbers outside `f64` range, nesting
    /// deeper than the documented limit, or trailing non-whitespace.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::Trailing { pos: p.pos });
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a JSON document failed to parse. Positions are byte offsets into
/// the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The input ended mid-value.
    Truncated,
    /// An unexpected byte where `what` was required.
    Unexpected {
        /// Byte offset of the offending input.
        pos: usize,
        /// What the parser needed at that position.
        what: &'static str,
    },
    /// A malformed `\` escape (or a bare control character) in a string.
    BadEscape {
        /// Byte offset of the offending escape.
        pos: usize,
    },
    /// A number token that violates the JSON grammar or overflows `f64`.
    BadNumber {
        /// Byte offset where the number starts.
        pos: usize,
    },
    /// Nesting exceeded the parser's depth limit.
    TooDeep,
    /// Non-whitespace input after the document.
    Trailing {
        /// Byte offset of the first trailing byte.
        pos: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Truncated => write!(f, "JSON input is truncated"),
            JsonError::Unexpected { pos, what } => {
                write!(f, "expected {what} at byte {pos}")
            }
            JsonError::BadEscape { pos } => write!(f, "bad string escape at byte {pos}"),
            JsonError::BadNumber { pos } => {
                write!(f, "malformed or out-of-range number at byte {pos}")
            }
            JsonError::TooDeep => write!(f, "JSON nesting exceeds {MAX_DEPTH} levels"),
            JsonError::Trailing { pos } => {
                write!(f, "trailing data after JSON document at byte {pos}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else if self.bytes.len() - self.pos < word.len()
            && word.as_bytes().starts_with(&self.bytes[self.pos..])
        {
            Err(JsonError::Truncated)
        } else {
            Err(JsonError::Unexpected {
                pos: self.pos,
                what: "a JSON value",
            })
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::Truncated),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::Unexpected {
                pos: self.pos,
                what: "a JSON value",
            }),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            if !self.eat(b',') {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::Unexpected {
                        pos: self.pos,
                        what: "',' or ']'",
                    }
                });
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.pos += 1; // '{'
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::Unexpected {
                        pos: self.pos,
                        what: "an object key string",
                    }
                });
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::Unexpected {
                        pos: self.pos,
                        what: "':'",
                    }
                });
            }
            self.skip_ws();
            members.push((key, self.value(depth + 1)?));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(members));
            }
            if !self.eat(b',') {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::Unexpected {
                        pos: self.pos,
                        what: "',' or '}'",
                    }
                });
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::Truncated),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(JsonError::Truncated),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape(start)?;
                            out.push(c);
                            continue;
                        }
                        Some(_) => return Err(JsonError::BadEscape { pos: start }),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    // Raw control characters must be escaped per the JSON
                    // grammar.
                    return Err(JsonError::BadEscape { pos: start });
                }
                Some(_) => {
                    // Consume one whole UTF-8 character (the input is a
                    // &str, so boundaries are already valid).
                    let rest = &self.text[self.pos..];
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (the `\u` itself is already
    /// consumed), combining surrogate pairs.
    fn unicode_escape(&mut self, start: usize) -> Result<char, JsonError> {
        let first = self.hex4(start)?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require an immediately following \uXXXX low
            // surrogate.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let second = self.hex4(start)?;
                if (0xDC00..0xE000).contains(&second) {
                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(c).ok_or(JsonError::BadEscape { pos: start });
                }
            }
            if self.pos >= self.bytes.len() {
                return Err(JsonError::Truncated);
            }
            return Err(JsonError::BadEscape { pos: start });
        }
        if (0xDC00..0xE000).contains(&first) {
            // A lone low surrogate is never valid.
            return Err(JsonError::BadEscape { pos: start });
        }
        char::from_u32(first).ok_or(JsonError::BadEscape { pos: start })
    }

    fn hex4(&mut self, start: usize) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or(JsonError::Truncated)?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a' + 10),
                b'A'..=b'F' => u32::from(b - b'A' + 10),
                _ => return Err(JsonError::BadEscape { pos: start }),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: `0` alone or a nonzero digit followed by digits
        // (the grammar forbids leading zeros).
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(JsonError::BadNumber { pos: start });
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) => return Err(JsonError::BadNumber { pos: start }),
            None => return Err(JsonError::Truncated),
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::BadNumber { pos: start }
                });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(if self.peek().is_none() {
                    JsonError::Truncated
                } else {
                    JsonError::BadNumber { pos: start }
                });
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = &self.text[start..self.pos];
        let n: f64 = token
            .parse()
            .map_err(|_| JsonError::BadNumber { pos: start })?;
        // `1e999` parses to infinity: out of interchange range, and a
        // value the serializer could not round-trip — reject it rather
        // than let it masquerade as data.
        if !n.is_finite() {
            return Err(JsonError::BadNumber { pos: start });
        }
        Ok(Json::Num(n))
    }
}

/// Builds an object value from `(key, value)` pairs — the protocol
/// layer's envelope constructor.
#[must_use]
pub fn obj(members: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A number value from anything float-convertible.
#[must_use]
pub fn num(n: f64) -> Json {
    Json::Num(n)
}

/// A string value.
#[must_use]
pub fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("0").unwrap(), Json::Num(0.0));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let a = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn unicode_escapes_and_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""\u00e9""#).unwrap(),
            Json::Str("é".to_string())
        );
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("😀".to_string())
        );
        // Lone surrogates are errors, not replacement characters.
        assert!(matches!(
            Json::parse(r#""\ud83d""#),
            Err(JsonError::BadEscape { .. })
        ));
        assert!(matches!(
            Json::parse(r#""\udc00""#),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in [
            "", "{", "[1,", "\"abc", "{\"a\":}", "[1 2]", "tru", "nul", "{1: 2}", "01", "1.", "1e",
            "- 1", "+1", ".5",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?} must not parse");
        }
        assert!(matches!(
            Json::parse("1 2"),
            Err(JsonError::Trailing { .. })
        ));
        assert!(matches!(
            Json::parse("\"\\q\""),
            Err(JsonError::BadEscape { .. })
        ));
    }

    #[test]
    fn rejects_overflowing_numbers() {
        assert!(matches!(
            Json::parse("1e999"),
            Err(JsonError::BadNumber { .. })
        ));
        assert!(matches!(
            Json::parse("-1e999"),
            Err(JsonError::BadNumber { .. })
        ));
        // Subnormal underflow to zero is fine — it is still finite.
        assert_eq!(Json::parse("1e-999").unwrap(), Json::Num(0.0));
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(80) + &"]".repeat(80);
        assert_eq!(Json::parse(&deep), Err(JsonError::TooDeep));
        let ok = "[".repeat(30) + &"]".repeat(30);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn serialization_round_trips() {
        let v = obj(vec![
            ("id", num(42.0)),
            ("name", s("shard \"a\"\n")),
            ("items", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_text(), "null");
        assert_eq!(Json::Num(f64::NAN).to_text(), "null");
    }

    #[test]
    fn u64_accessor_is_exact() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(9.1e15).as_u64(), None, "beyond exact range");
    }
}
