//! `statvs serve` — simulation-as-a-service over pooled [`spice::Session`]s.
//!
//! This crate turns the workspace's Monte Carlo engine into a long-running
//! HTTP service with zero external dependencies: a hand-rolled HTTP/1.1
//! layer ([`http`]), an in-repo JSON codec ([`json`]), structured error
//! envelopes ([`error`]), a template registry with per-circuit session
//! pools ([`pool`]), a run store plus bounded job queue ([`store`]), and
//! an optional disk-backed replay cache ([`cache`]) that survives
//! restarts, all on `std::net::TcpListener` and plain threads.
//!
//! The protocol is shard-oriented: a `POST /experiments` body names a
//! circuit template, a seed, and a `{offset, len}` shard of the sample
//! index space. Because every sample is a pure function of `(seed, index)`
//! (cold-started solves over [`vscore::mc::ParallelRunner::run_streaming_range`]),
//! disjoint shards posted to *different servers* return mergeable-sketch
//! bytes whose merge is bit-identical to one local run over the union —
//! the server is a fleet building block, not just a remote for-loop.
//!
//! ```no_run
//! use serve::{Server, ServerConfig};
//!
//! let server = Server::bind(&ServerConfig::default()).expect("bind");
//! println!("listening on {}", server.addr());
//! server.run(); // accept loop on this thread
//! ```

pub mod cache;
pub mod error;
pub mod http;
pub mod json;
pub mod pool;
pub mod routes;
pub mod store;

use cache::ReplayCache;
use error::ApiError;
use http::{read_request, write_json_response, HttpError};
use pool::Engine;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use store::{JobQueue, RunFailure, RunStore};

/// Per-connection socket timeout: a stalled peer cannot pin a connection
/// thread forever.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// Server tunables. `Default` binds an ephemeral loopback port — the bin
/// target overrides the port explicitly.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP port on `127.0.0.1`; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// Worker threads executing queued shards.
    pub workers: usize,
    /// Bounded job-queue capacity; submissions beyond it get `503`.
    pub queue_capacity: usize,
    /// Largest accepted shard length.
    pub max_samples: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// Artifact directory for the replay cache; `None` disables
    /// persistence (results live only in memory, as before).
    pub artifact_dir: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            port: 0,
            workers: 2,
            queue_capacity: 64,
            max_samples: 1_000_000,
            max_body: 64 * 1024,
            artifact_dir: None,
        }
    }
}

/// The state every connection and worker thread shares.
pub struct ServerCtx {
    /// Template registry and session pools.
    pub engine: Engine,
    /// Run id → record map.
    pub store: RunStore,
    /// Bounded FIFO feeding the workers.
    pub queue: JobQueue,
    /// Worker-thread count (reported by `/healthz`).
    pub workers: usize,
    /// Largest accepted shard length.
    pub max_samples: usize,
    /// Largest accepted request body, bytes.
    pub max_body: usize,
    /// The replay cache, when an artifact directory is configured.
    pub cache: Option<ReplayCache>,
}

impl ServerCtx {
    /// Builds the shared state, elaborating every template's master
    /// session and opening the replay cache when configured.
    ///
    /// # Errors
    ///
    /// [`StartError::Engine`] from template elaboration,
    /// [`StartError::Io`] when the artifact directory cannot be created.
    pub fn new(cfg: &ServerConfig) -> Result<Self, StartError> {
        let cache = match &cfg.artifact_dir {
            None => None,
            Some(dir) => Some(ReplayCache::open(dir).map_err(StartError::Io)?),
        };
        Ok(ServerCtx {
            engine: Engine::new().map_err(StartError::Engine)?,
            store: RunStore::new(),
            queue: JobQueue::new(cfg.queue_capacity),
            workers: cfg.workers.max(1),
            max_samples: cfg.max_samples,
            max_body: cfg.max_body,
            cache,
        })
    }
}

/// Why the server failed to start.
#[derive(Debug)]
pub enum StartError {
    /// The listener could not bind.
    Io(std::io::Error),
    /// A circuit template failed to elaborate.
    Engine(spice::SpiceError),
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::Io(e) => write!(f, "failed to bind listener: {e}"),
            StartError::Engine(e) => write!(f, "failed to elaborate circuit templates: {e}"),
        }
    }
}

impl std::error::Error for StartError {}

/// A bound (not yet accepting) server: listener plus running worker
/// threads. Consume it with [`Server::run`] (accept on the current
/// thread, for a bin target) or [`Server::start`] (accept on a background
/// thread, returning a [`ServerHandle`] — what tests use).
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerCtx>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, elaborates the templates, and spawns the
    /// worker threads. Jobs cannot arrive until accepting starts.
    ///
    /// # Errors
    ///
    /// [`StartError`] on bind or elaboration failure.
    pub fn bind(cfg: &ServerConfig) -> Result<Server, StartError> {
        let ctx = Arc::new(ServerCtx::new(cfg)?);
        let listener = TcpListener::bind(("127.0.0.1", cfg.port)).map_err(StartError::Io)?;
        let workers = (0..ctx.workers)
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || run_worker(&ctx))
            })
            .collect();
        Ok(Server {
            listener,
            ctx,
            shutdown: Arc::new(AtomicBool::new(false)),
            workers,
        })
    }

    /// The bound address (useful with an ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// Runs the accept loop on the current thread; never returns. The
    /// bin target's endpoint.
    pub fn run(self) {
        accept_loop(&self.listener, &self.ctx, &self.shutdown);
        // Unreachable without a shutdown signal, but drain cleanly if the
        // loop ever exits.
        self.ctx.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Runs the accept loop on a background thread and returns a handle
    /// for clean shutdown.
    #[must_use]
    pub fn start(self) -> ServerHandle {
        let addr = self.addr();
        let accept = {
            let ctx = Arc::clone(&self.ctx);
            let shutdown = Arc::clone(&self.shutdown);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &ctx, &shutdown))
        };
        ServerHandle {
            addr,
            ctx: self.ctx,
            shutdown: self.shutdown,
            accept: Some(accept),
            workers: self.workers,
        }
    }
}

/// A running server: address plus the threads to join on shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerCtx>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains queued jobs, and joins every thread.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept`; a loopback connection
        // wakes it so it can observe the flag.
        drop(TcpStream::connect(self.addr));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.ctx.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, ctx: &Arc<ServerCtx>, shutdown: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match conn {
            Ok(stream) => {
                let ctx = Arc::clone(ctx);
                std::thread::spawn(move || handle_connection(stream, &ctx));
            }
            // Transient accept failures (peer reset mid-handshake, fd
            // pressure) must not kill the server.
            Err(_) => continue,
        }
    }
}

/// One connection, one exchange: read a request, dispatch, write the
/// response. Panics in route handling are caught and answered with a
/// `500` envelope — the no-panic contract covers the whole request path.
fn handle_connection(stream: TcpStream, ctx: &ServerCtx) {
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut stream = stream;
    // On the success path `read_request` consumed the exact body, so the
    // socket can close cleanly. On request-level errors the peer may
    // still be sending a body we refused to buffer — drain it (bounded)
    // after responding, because closing with unread data pending can RST
    // the connection and destroy the error response in flight.
    let mut drain_before_close = false;
    let (status, body) = match read_request(&mut reader, ctx.max_body) {
        Ok(req) => {
            catch_unwind(AssertUnwindSafe(|| routes::handle(&req, ctx))).unwrap_or_else(|_| {
                let e = ApiError::internal();
                (e.status, e.to_json())
            })
        }
        // No usable peer to answer.
        Err(HttpError::Io(_) | HttpError::ConnectionClosed) => return,
        Err(e) => {
            drain_before_close = true;
            let api = ApiError::from(e);
            (api.status, api.to_json())
        }
    };
    let _ = write_json_response(&mut stream, status, &body.to_text());
    if drain_before_close {
        let _ = std::io::copy(
            &mut std::io::Read::take(reader, 1 << 20),
            &mut std::io::sink(),
        );
    }
}

/// The worker-thread loop: drain the queue until it closes. A panicking
/// shard (there should be none — the engine's error paths are `Result`s)
/// fails its run record instead of killing the worker.
fn run_worker(ctx: &ServerCtx) {
    while let Some(id) = ctx.queue.pop() {
        let Some(record) = ctx.store.get(id) else {
            continue;
        };
        ctx.store.mark_running(id);
        match catch_unwind(AssertUnwindSafe(|| ctx.engine.execute(&record.spec))) {
            Ok(Ok(result)) => {
                // Spill to the replay cache best-effort: a failed write
                // costs a future recomputation, never this result.
                if let Some(cache) = &ctx.cache {
                    let _ = cache.store(&record.spec, &result);
                }
                ctx.store.complete(id, result);
            }
            Ok(Err(failure)) => ctx.store.fail(id, failure),
            // A panic is a bug, but one this worker hit with this pool
            // state; re-issuing the pure (seed, offset, len) shard on a
            // healthy worker is safe and can succeed.
            Err(_) => ctx.store.fail(
                id,
                RunFailure::transient("worker panicked while executing the shard"),
            ),
        }
    }
}
