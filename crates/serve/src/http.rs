//! A hand-rolled HTTP/1.1 request/response layer on `std` I/O.
//!
//! `statvs serve` keeps the repo's zero-dependency stance, so this module
//! implements exactly the slice of HTTP/1.1 the wire protocol needs: parse
//! one request (request line, headers, `Content-Length` body) from a
//! stream, write one response, close the connection (`Connection: close`
//! on every response — the protocol is one exchange per connection).
//!
//! Every limit is explicit and every violation is a typed [`HttpError`]
//! the connection handler turns into a structured JSON error envelope:
//! oversized bodies are `413`, malformed framing is `400`, and nothing in
//! this module panics on hostile input.

use std::io::{BufRead, Write};

/// Upper bound on one header line (and the request line), bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The request method, uppercase as received (`GET`, `POST`, ...).
    pub method: String,
    /// The path component of the request target, percent-decoding *not*
    /// applied (the protocol's paths are plain ASCII).
    pub path: String,
    /// The raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lowercase name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps onto one HTTP
/// status so the connection handler can always answer with an envelope.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The client closed the connection before sending a full request.
    ConnectionClosed,
    /// Malformed framing: bad request line, bad header, bad
    /// `Content-Length`, unsupported transfer encoding. Maps to `400`.
    BadRequest(&'static str),
    /// The declared or actual body exceeds the configured cap. Maps to
    /// `413`.
    PayloadTooLarge,
    /// The underlying socket failed (timeout, reset); the connection is
    /// unusable, no response is possible.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::ConnectionClosed => write!(f, "connection closed before a full request"),
            HttpError::BadRequest(what) => write!(f, "malformed request: {what}"),
            HttpError::PayloadTooLarge => write!(f, "request body exceeds the configured limit"),
            HttpError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Reads one line terminated by `\n`, rejecting lines that exceed the
/// limit (a client streaming an unbounded header must not make the server
/// buffer it).
fn read_line<R: BufRead>(reader: &mut R) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Err(HttpError::ConnectionClosed);
                }
                return Err(HttpError::BadRequest("truncated line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header data"));
                }
                if line.len() >= MAX_LINE_BYTES {
                    return Err(HttpError::BadRequest("header line too long"));
                }
                line.push(byte[0]);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::Io(e.kind())),
        }
    }
}

/// Reads and parses one request from the stream.
///
/// `max_body` caps the accepted `Content-Length`; larger declarations
/// fail with [`HttpError::PayloadTooLarge`] *before* any body bytes are
/// buffered.
///
/// # Errors
///
/// See [`HttpError`]; the caller maps each variant onto a response (or
/// drops the connection for I/O errors).
pub fn read_request<R: BufRead>(reader: &mut R, max_body: usize) -> Result<Request, HttpError> {
    let request_line = read_line(reader)?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(HttpError::BadRequest("missing request target"))?;
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::BadRequest("unsupported HTTP version"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest("request target must be a path"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without ':'"))?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut request = Request {
        method,
        path,
        query,
        headers,
        body: Vec::new(),
    };

    if let Some(te) = request.header("transfer-encoding") {
        if !te.eq_ignore_ascii_case("identity") {
            return Err(HttpError::BadRequest("unsupported transfer encoding"));
        }
    }
    if let Some(raw) = request.header("content-length") {
        let declared: usize = raw
            .parse()
            .map_err(|_| HttpError::BadRequest("malformed Content-Length"))?;
        if declared > max_body {
            return Err(HttpError::PayloadTooLarge);
        }
        let mut body = vec![0u8; declared];
        let mut filled = 0;
        while filled < declared {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::BadRequest("body shorter than Content-Length")),
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(HttpError::Io(e.kind())),
            }
        }
        request.body = body;
    }
    Ok(request)
}

/// The reason phrase for the status codes the protocol emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete JSON response and flushes. Every response carries
/// `Connection: close`: the protocol is one exchange per connection, so
/// framing can never desynchronize.
///
/// # Errors
///
/// Propagates socket write errors (the caller just drops the connection).
pub fn write_json_response<W: Write>(
    stream: &mut W,
    status: u16,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw =
            b"POST /experiments?x=1 HTTP/1.1\r\nHost: localhost\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/experiments");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_bare_get() {
        let req = parse(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_none());
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_framing() {
        assert!(matches!(parse(b""), Err(HttpError::ConnectionClosed)));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET http://x HTTP/1.1\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nbad header\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_declarations_fail_before_buffering() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert!(matches!(parse(raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn response_has_complete_framing() {
        let mut out = Vec::new();
        write_json_response(&mut out, 200, "{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
