//! Route dispatch: maps parsed HTTP requests onto the run store, job
//! queue, and template registry, and renders every outcome — success or
//! failure — as a deterministic JSON envelope.
//!
//! The protocol surface:
//!
//! - `POST /experiments` — validate a spec, register a queued run, return
//!   `202` with the run id.
//! - `GET /runs/{id}` — the run's lifecycle snapshot; finished runs carry
//!   moments plus hex-encoded mergeable-sketch bytes.
//! - `GET /circuits` — the template registry.
//! - `GET /healthz` — liveness plus queue/pool gauges.
//!
//! Spec validation is strict: unknown fields are rejected, not ignored,
//! so a typo'd `"samlpes"` fails loudly instead of silently running a
//! default-sized experiment. Importance-sampling templates (analysis
//! `"is"`) accept `proposal`/`threshold` and the weighted sinks
//! `wmoments`/`whistogram`; plain templates reject them, and vice versa
//! — a spec cannot silently mix the weighted and unweighted worlds.

use crate::error::ApiError;
use crate::http::Request;
use crate::json::{num, obj, s, Json};
use crate::store::{hex_encode, ExperimentSpec, RunFailure, RunRecord, RunResult, RunStatus};
use crate::ServerCtx;

/// Largest accepted shard offset: far beyond any real fleet partition,
/// small enough that `offset + len` can never approach `usize` overflow.
const MAX_OFFSET: u64 = 1 << 40;
/// Histogram bin-count cap.
const MAX_BINS: u64 = 4096;

/// Handles one request end to end; infallible by construction — every
/// error path folds into its envelope here.
#[must_use]
pub fn handle(req: &Request, ctx: &ServerCtx) -> (u16, Json) {
    match dispatch(req, ctx) {
        Ok(reply) => reply,
        Err(e) => (e.status, e.to_json()),
    }
}

fn dispatch(req: &Request, ctx: &ServerCtx) -> Result<(u16, Json), ApiError> {
    let method = req.method.as_str();
    let path = req.path.as_str();
    match (method, path) {
        ("GET", "/healthz") => Ok((200, healthz(ctx))),
        ("GET", "/circuits") => Ok((200, circuits(ctx))),
        ("POST", "/experiments") => post_experiment(req, ctx),
        (_, "/healthz" | "/circuits" | "/experiments") => {
            Err(ApiError::method_not_allowed(method, path))
        }
        _ if path.starts_with("/runs/") => {
            if method != "GET" {
                return Err(ApiError::method_not_allowed(method, path));
            }
            get_run(path, ctx)
        }
        _ => Err(ApiError::not_found(format!("no route for {path}"))),
    }
}

fn healthz(ctx: &ServerCtx) -> Json {
    let pools = ctx
        .engine
        .pool_sizes()
        .into_iter()
        .map(|(id, idle)| (id, num(idle as f64)))
        .collect();
    obj(vec![
        ("status", s("ok")),
        ("runs", num(ctx.store.len() as f64)),
        ("queue_depth", num(ctx.queue.depth() as f64)),
        ("workers", num(ctx.workers as f64)),
        ("idle_sessions", obj(pools)),
    ])
}

fn circuits(ctx: &ServerCtx) -> Json {
    let list = ctx
        .engine
        .templates()
        .map(|t| {
            let (lo, hi, bins) = t.default_histogram;
            obj(vec![
                ("id", s(t.id)),
                ("description", s(t.description)),
                (
                    "analyses",
                    Json::Arr(t.analyses.iter().map(|a| s(a)).collect()),
                ),
                ("unit", s(t.unit)),
                (
                    "default_histogram",
                    obj(vec![
                        ("lo", num(lo)),
                        ("hi", num(hi)),
                        ("bins", num(bins as f64)),
                    ]),
                ),
            ])
        })
        .collect();
    obj(vec![("circuits", Json::Arr(list))])
}

fn post_experiment(req: &Request, ctx: &ServerCtx) -> Result<(u16, Json), ApiError> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let body =
        Json::parse(text).map_err(|e| ApiError::bad_request(format!("invalid JSON: {e}")))?;
    let spec = parse_spec(&body, ctx)?;
    // Replay-cache hit: an identical run (same template, spec, seed,
    // shard) already finished — possibly in a previous process over the
    // same artifact directory. Register the record as done immediately;
    // no queue, no worker, and the client sees `cached: true`.
    if let Some(result) = ctx.cache.as_ref().and_then(|cache| cache.load(&spec)) {
        let id = ctx.store.create(spec.clone());
        ctx.store.complete(id, result);
        return Ok((
            202,
            obj(vec![(
                "run",
                obj(vec![
                    ("id", num(id as f64)),
                    ("status", s(RunStatus::Done.as_str())),
                    ("cached", Json::Bool(true)),
                    ("circuit", s(&spec.circuit)),
                    ("analysis", s(&spec.analysis)),
                    ("seed", num(spec.seed as f64)),
                    (
                        "shard",
                        obj(vec![
                            ("offset", num(spec.offset as f64)),
                            ("len", num(spec.len as f64)),
                        ]),
                    ),
                ]),
            )]),
        ));
    }
    let id = ctx.store.create(spec.clone());
    if let Err(e) = ctx.queue.push(id) {
        // The record exists but will never run; make its state honest. A
        // full queue is load, not a spec problem — retryable.
        ctx.store.fail(
            id,
            RunFailure::transient(format!("rejected at submission: {e}")),
        );
        return Err(e);
    }
    Ok((
        202,
        obj(vec![(
            "run",
            obj(vec![
                ("id", num(id as f64)),
                ("status", s(RunStatus::Queued.as_str())),
                ("circuit", s(&spec.circuit)),
                ("analysis", s(&spec.analysis)),
                ("seed", num(spec.seed as f64)),
                (
                    "shard",
                    obj(vec![
                        ("offset", num(spec.offset as f64)),
                        ("len", num(spec.len as f64)),
                    ]),
                ),
            ]),
        )]),
    ))
}

fn get_run(path: &str, ctx: &ServerCtx) -> Result<(u16, Json), ApiError> {
    let raw = &path["/runs/".len()..];
    let id: u64 = raw
        .parse()
        .map_err(|_| ApiError::bad_request(format!("`{raw}` is not a run id")))?;
    let record = ctx
        .store
        .get(id)
        .ok_or_else(|| ApiError::not_found(format!("no run with id {id}")))?;
    Ok((200, obj(vec![("run", run_json(&record))])))
}

/// Renders one run record; shared by `GET /runs/{id}` and tests.
fn run_json(record: &RunRecord) -> Json {
    let spec = &record.spec;
    let mut members = vec![
        ("id", num(record.id as f64)),
        ("status", s(record.status.as_str())),
        ("circuit", s(&spec.circuit)),
        ("analysis", s(&spec.analysis)),
        ("seed", num(spec.seed as f64)),
        (
            "shard",
            obj(vec![
                ("offset", num(spec.offset as f64)),
                ("len", num(spec.len as f64)),
            ]),
        ),
    ];
    if let Some(failure) = &record.error {
        // Structured, not a bare string: a coordinator branches on
        // `retryable` to decide between re-issuing the shard and aborting
        // the whole campaign.
        members.push((
            "error",
            obj(vec![
                ("message", s(&failure.message)),
                ("retryable", Json::Bool(failure.retryable)),
            ]),
        ));
    }
    if let Some(result) = &record.result {
        members.push(("result", result_json(result)));
    }
    obj(members)
}

fn result_json(result: &RunResult) -> Json {
    let mut sketches = vec![("encoding", s("hex"))];
    if let Some(bytes) = &result.welford_bytes {
        sketches.push(("welford", s(&hex_encode(bytes))));
    }
    if let Some(bytes) = &result.histogram_bytes {
        sketches.push(("histogram", s(&hex_encode(bytes))));
    }
    if let Some(bytes) = &result.tdigest_bytes {
        sketches.push(("tdigest", s(&hex_encode(bytes))));
    }
    if let Some(bytes) = &result.wmoments_bytes {
        sketches.push(("wmoments", s(&hex_encode(bytes))));
    }
    if let Some(bytes) = &result.whistogram_bytes {
        sketches.push(("whistogram", s(&hex_encode(bytes))));
    }
    obj(vec![
        ("observed", num(result.observed as f64)),
        ("failures", num(result.failures as f64)),
        ("cached", Json::Bool(result.cached)),
        (
            "moments",
            obj(vec![
                ("count", num(result.count as f64)),
                ("mean", num(result.mean)),
                ("variance", num(result.variance)),
            ]),
        ),
        ("sketches", obj(sketches)),
    ])
}

/// Validates a `POST /experiments` body into an [`ExperimentSpec`].
///
/// # Errors
///
/// `400` envelopes naming the offending field for every violation.
fn parse_spec(body: &Json, ctx: &ServerCtx) -> Result<ExperimentSpec, ApiError> {
    let Json::Obj(members) = body else {
        return Err(ApiError::bad_request("experiment spec must be an object"));
    };
    const KNOWN: &[&str] = &[
        "circuit",
        "analysis",
        "seed",
        "samples",
        "shard",
        "total",
        "sinks",
        "histogram",
        "tdigest",
        "proposal",
        "threshold",
    ];
    for (key, _) in members {
        if !KNOWN.contains(&key.as_str()) {
            return Err(ApiError::bad_request(format!("unknown spec field `{key}`")));
        }
    }

    let circuit = body
        .get("circuit")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad_request("`circuit` (string) is required"))?;
    let template = ctx.engine.template(circuit).ok_or_else(|| {
        ApiError::bad_request(format!("unknown circuit `{circuit}` (see GET /circuits)"))
    })?;

    let analysis = match body.get("analysis") {
        None => template.analyses[0].to_string(),
        Some(v) => {
            let a = v
                .as_str()
                .ok_or_else(|| ApiError::bad_request("`analysis` must be a string"))?;
            if !template.analyses.contains(&a) {
                return Err(ApiError::bad_request(format!(
                    "circuit `{circuit}` does not support analysis `{a}`"
                )));
            }
            a.to_string()
        }
    };

    let seed = match body.get("seed") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| ApiError::bad_request("`seed` must be a non-negative integer"))?,
    };

    let (offset, len, total) = parse_shard(body, ctx.max_samples)?;

    // Importance-sampling templates take a different sink/parameter
    // surface than plain ones; the capability is declared by the
    // template's analysis list, not hard-coded template ids.
    let weighted = template.analyses.contains(&"is");
    if !weighted {
        for field in ["proposal", "threshold"] {
            if body.get(field).is_some() {
                return Err(ApiError::bad_request(format!(
                    "`{field}` applies only to importance-sampling templates; \
                     circuit `{circuit}` is not one"
                )));
            }
        }
    }
    let sinks = parse_sinks(body, weighted)?;

    let histogram = match body.get("histogram") {
        None => template.default_histogram,
        Some(v) => parse_histogram(v)?,
    };
    let tdigest_compression = match body.get("tdigest") {
        None => 100.0,
        Some(v) => parse_tdigest(v)?,
    };
    let proposal = match body.get("proposal") {
        None => (0.0, 1.0),
        Some(v) => parse_proposal(v)?,
    };
    let threshold = match body.get("threshold") {
        None => 3.0,
        Some(v) => {
            let t = v
                .as_f64()
                .ok_or_else(|| ApiError::bad_request("`threshold` must be a number"))?;
            if !t.is_finite() {
                return Err(ApiError::bad_request("`threshold` must be finite"));
            }
            t
        }
    };

    Ok(ExperimentSpec {
        circuit: circuit.to_string(),
        analysis,
        seed,
        offset,
        len,
        total,
        want_welford: sinks.welford,
        want_histogram: sinks.histogram,
        want_tdigest: sinks.tdigest,
        histogram,
        tdigest_compression,
        proposal,
        threshold,
        want_wmoments: sinks.wmoments,
        want_whistogram: sinks.whistogram,
    })
}

/// A Gaussian proposal `{shift, scale}`; both fields optional, bounded
/// to keep the exact log-weights within `f64` range.
fn parse_proposal(v: &Json) -> Result<(f64, f64), ApiError> {
    let Json::Obj(members) = v else {
        return Err(ApiError::bad_request("`proposal` must be an object"));
    };
    for (key, _) in members {
        if !matches!(key.as_str(), "shift" | "scale") {
            return Err(ApiError::bad_request(format!(
                "unknown proposal field `{key}`"
            )));
        }
    }
    let shift = match v.get("shift") {
        None => 0.0,
        Some(x) => x
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("`proposal.shift` must be a number"))?,
    };
    let scale = match v.get("scale") {
        None => 1.0,
        Some(x) => x
            .as_f64()
            .ok_or_else(|| ApiError::bad_request("`proposal.scale` must be a number"))?,
    };
    if !shift.is_finite() || shift.abs() > 50.0 {
        return Err(ApiError::bad_request(
            "`proposal.shift` must be finite with |shift| <= 50",
        ));
    }
    if !scale.is_finite() || !(scale > 0.0) || scale > 100.0 {
        return Err(ApiError::bad_request(
            "`proposal.scale` must be in (0, 100]",
        ));
    }
    Ok((shift, scale))
}

#[allow(clippy::type_complexity)]
fn parse_shard(body: &Json, max_samples: usize) -> Result<(usize, usize, Option<usize>), ApiError> {
    let samples = body.get("samples");
    let shard = body.get("shard");
    let (offset, len) = match (samples, shard) {
        (Some(_), Some(_)) => {
            return Err(ApiError::bad_request(
                "give either `samples` or `shard`, not both",
            ));
        }
        (None, None) => {
            return Err(ApiError::bad_request(
                "one of `samples` (integer) or `shard` ({offset, len}) is required",
            ));
        }
        (Some(n), None) => {
            let n = n
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("`samples` must be a non-negative integer"))?;
            (0, n)
        }
        (None, Some(v)) => {
            let Json::Obj(members) = v else {
                return Err(ApiError::bad_request("`shard` must be an object"));
            };
            for (key, _) in members {
                if key != "offset" && key != "len" {
                    return Err(ApiError::bad_request(format!(
                        "unknown shard field `{key}`"
                    )));
                }
            }
            let offset = v
                .get("offset")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request("`shard.offset` (integer) is required"))?;
            let len = v
                .get("len")
                .and_then(Json::as_u64)
                .ok_or_else(|| ApiError::bad_request("`shard.len` (integer) is required"))?;
            (offset, len)
        }
    };
    if len == 0 {
        return Err(ApiError::bad_request("shard length must be at least 1"));
    }
    if len > max_samples as u64 {
        return Err(ApiError::bad_request(format!(
            "shard length {len} exceeds the server's {max_samples}-sample cap"
        )));
    }
    if offset > MAX_OFFSET {
        return Err(ApiError::bad_request(format!(
            "shard offset {offset} exceeds the {MAX_OFFSET} cap"
        )));
    }
    // `offset + len` must index a real sample space: a shard whose end
    // overflows (or would collide with the runner's usize::MAX shutdown
    // sentinel) is a coordinator bug, rejected here instead of surfacing
    // as a worker panic.
    let end = offset
        .checked_add(len)
        .filter(|&end| end < u64::MAX)
        .ok_or_else(|| {
            ApiError::bad_request(format!(
                "shard offset {offset} + len {len} overflows the sample index space"
            ))
        })?;
    let total = match body.get("total") {
        None => None,
        Some(v) => {
            let total = v
                .as_u64()
                .ok_or_else(|| ApiError::bad_request("`total` must be a non-negative integer"))?;
            if end > total {
                return Err(ApiError::bad_request(format!(
                    "shard {offset}..{end} exceeds the declared total of {total} samples"
                )));
            }
            Some(total as usize)
        }
    };
    Ok((offset as usize, len as usize, total))
}

/// Which sink payloads a spec requests.
struct SinkChoice {
    welford: bool,
    histogram: bool,
    tdigest: bool,
    wmoments: bool,
    whistogram: bool,
}

fn parse_sinks(body: &Json, weighted: bool) -> Result<SinkChoice, ApiError> {
    let mut choice = SinkChoice {
        welford: false,
        histogram: false,
        tdigest: false,
        wmoments: false,
        whistogram: false,
    };
    let Some(v) = body.get("sinks") else {
        // Default: everything the template's world offers.
        if weighted {
            choice.wmoments = true;
            choice.whistogram = true;
        } else {
            choice.welford = true;
            choice.histogram = true;
            choice.tdigest = true;
        }
        return Ok(choice);
    };
    let items = v
        .as_arr()
        .ok_or_else(|| ApiError::bad_request("`sinks` must be an array of sink names"))?;
    for item in items {
        let name = item.as_str();
        let is_weighted_sink = matches!(name, Some("wmoments" | "whistogram"));
        if is_weighted_sink != weighted {
            return Err(ApiError::bad_request(if weighted {
                "importance-sampling templates take the weighted sinks \
                 \"wmoments\" and \"whistogram\" only"
            } else {
                "weighted sinks apply only to importance-sampling templates"
            }));
        }
        match name {
            Some("welford") => choice.welford = true,
            Some("histogram") => choice.histogram = true,
            Some("tdigest") => choice.tdigest = true,
            Some("wmoments") => choice.wmoments = true,
            Some("whistogram") => choice.whistogram = true,
            _ => {
                return Err(ApiError::bad_request(
                    "`sinks` entries must be \"welford\", \"histogram\", \"tdigest\", \
                     \"wmoments\", or \"whistogram\"",
                ));
            }
        }
    }
    if !(choice.welford
        || choice.histogram
        || choice.tdigest
        || choice.wmoments
        || choice.whistogram)
    {
        return Err(ApiError::bad_request("`sinks` must name at least one sink"));
    }
    Ok(choice)
}

fn parse_histogram(v: &Json) -> Result<(f64, f64, usize), ApiError> {
    let Json::Obj(members) = v else {
        return Err(ApiError::bad_request("`histogram` must be an object"));
    };
    for (key, _) in members {
        if !matches!(key.as_str(), "lo" | "hi" | "bins") {
            return Err(ApiError::bad_request(format!(
                "unknown histogram field `{key}`"
            )));
        }
    }
    let lo = v
        .get("lo")
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad_request("`histogram.lo` (number) is required"))?;
    let hi = v
        .get("hi")
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad_request("`histogram.hi` (number) is required"))?;
    let bins = v
        .get("bins")
        .and_then(Json::as_u64)
        .ok_or_else(|| ApiError::bad_request("`histogram.bins` (integer) is required"))?;
    if !(lo.is_finite() && hi.is_finite() && lo < hi) {
        return Err(ApiError::bad_request(
            "`histogram` bounds must be finite with lo < hi",
        ));
    }
    if bins == 0 || bins > MAX_BINS {
        return Err(ApiError::bad_request(format!(
            "`histogram.bins` must be in 1..={MAX_BINS}"
        )));
    }
    Ok((lo, hi, bins as usize))
}

fn parse_tdigest(v: &Json) -> Result<f64, ApiError> {
    let Json::Obj(members) = v else {
        return Err(ApiError::bad_request("`tdigest` must be an object"));
    };
    for (key, _) in members {
        if key != "compression" {
            return Err(ApiError::bad_request(format!(
                "unknown tdigest field `{key}`"
            )));
        }
    }
    let compression = v
        .get("compression")
        .and_then(Json::as_f64)
        .ok_or_else(|| ApiError::bad_request("`tdigest.compression` (number) is required"))?;
    if !compression.is_finite() || !(10.0..=10_000.0).contains(&compression) {
        return Err(ApiError::bad_request(
            "`tdigest.compression` must be in 10..=10000",
        ));
    }
    Ok(compression)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServerConfig;

    fn ctx() -> ServerCtx {
        ServerCtx::new(&ServerConfig::default()).expect("engine builds")
    }

    fn request(method: &str, path: &str, body: &str) -> Request {
        Request {
            method: method.to_string(),
            path: path.to_string(),
            query: None,
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn error_code(body: &Json) -> String {
        body.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .expect("error envelope")
            .to_string()
    }

    #[test]
    fn healthz_and_circuits_respond() {
        let ctx = ctx();
        let (status, body) = handle(&request("GET", "/healthz", ""), &ctx);
        assert_eq!(status, 200);
        assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
        let (status, body) = handle(&request("GET", "/circuits", ""), &ctx);
        assert_eq!(status, 200);
        let circuits = body.get("circuits").and_then(Json::as_arr).unwrap();
        assert_eq!(circuits.len(), 3);
        assert_eq!(
            circuits[0].get("id").and_then(Json::as_str),
            Some("sram6t_dc")
        );
    }

    #[test]
    fn post_registers_a_queued_run() {
        let ctx = ctx();
        let body = r#"{"circuit": "device_idsat", "seed": 9, "samples": 50}"#;
        let (status, reply) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 202, "{}", reply.to_text());
        let run = reply.get("run").unwrap();
        assert_eq!(run.get("id").and_then(Json::as_u64), Some(1));
        assert_eq!(run.get("status").and_then(Json::as_str), Some("queued"));
        assert_eq!(ctx.queue.depth(), 1);
        // The record is immediately resolvable.
        let (status, reply) = handle(&request("GET", "/runs/1", ""), &ctx);
        assert_eq!(status, 200);
        let run = reply.get("run").unwrap();
        assert_eq!(run.get("status").and_then(Json::as_str), Some("queued"));
        assert_eq!(
            run.get("shard")
                .and_then(|s| s.get("len"))
                .and_then(Json::as_u64),
            Some(50)
        );
    }

    #[test]
    fn malformed_specs_get_structured_400s() {
        let ctx = ctx();
        for (body, needle) in [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be an object"),
            ("{}", "`circuit`"),
            (r#"{"circuit": "nope", "samples": 5}"#, "unknown circuit"),
            (r#"{"circuit": "sram6t_dc"}"#, "`samples`"),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "shard": {"offset": 0, "len": 5}}"#,
                "not both",
            ),
            (r#"{"circuit": "sram6t_dc", "samples": 0}"#, "at least 1"),
            (r#"{"circuit": "sram6t_dc", "samples": 99999999}"#, "cap"),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "samlpes": 1}"#,
                "unknown spec field",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "sinks": ["median"]}"#,
                "sinks",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "histogram": {"lo": 1, "hi": 0, "bins": 4}}"#,
                "lo < hi",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "tdigest": {"compression": 1}}"#,
                "compression",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "analysis": "tran"}"#,
                "does not support",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "seed": -1}"#,
                "`seed`",
            ),
            (
                r#"{"circuit": "sram6t_dc", "shard": {"offset": 90, "len": 20}, "total": 100}"#,
                "declared total",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 120, "total": 100}"#,
                "declared total",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "total": -3}"#,
                "`total`",
            ),
            (
                r#"{"circuit": "sram6t_dc", "shard": {"offset": 0, "len": 0}, "total": 10}"#,
                "at least 1",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "proposal": {"shift": 3}}"#,
                "importance-sampling templates",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "threshold": 4.0}"#,
                "importance-sampling templates",
            ),
            (
                r#"{"circuit": "sram6t_dc", "samples": 5, "sinks": ["wmoments"]}"#,
                "importance-sampling templates",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "sinks": ["welford"]}"#,
                "weighted sinks",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "proposal": {"shift": 99}}"#,
                "|shift| <= 50",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "proposal": {"scale": 0}}"#,
                "(0, 100]",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "proposal": {"mean": 3}}"#,
                "unknown proposal field",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "threshold": "high"}"#,
                "`threshold` must be a number",
            ),
            (
                r#"{"circuit": "gauss_tail", "samples": 5, "analysis": "dc"}"#,
                "does not support",
            ),
        ] {
            let (status, reply) = handle(&request("POST", "/experiments", body), &ctx);
            assert_eq!(status, 400, "body {body:?} gave {}", reply.to_text());
            assert_eq!(error_code(&reply), "bad_request");
            let message = reply
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap()
                .to_string();
            assert!(
                message.contains(needle),
                "{body:?}: message {message:?} lacks {needle:?}"
            );
        }
    }

    #[test]
    fn weighted_spec_round_trips_through_submission() {
        let ctx = ctx();
        let body = r#"{"circuit": "gauss_tail", "seed": 5, "samples": 40,
                       "proposal": {"shift": 4.0}, "threshold": 4.0,
                       "sinks": ["wmoments", "whistogram"]}"#;
        let (status, reply) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 202, "{}", reply.to_text());
        let run = reply.get("run").unwrap();
        assert_eq!(run.get("analysis").and_then(Json::as_str), Some("is"));
        let spec = &ctx.store.get(1).unwrap().spec;
        assert_eq!(spec.proposal, (4.0, 1.0));
        assert_eq!(spec.threshold, 4.0);
        assert!(spec.want_wmoments && spec.want_whistogram);
        assert!(!spec.want_welford && !spec.want_histogram && !spec.want_tdigest);
    }

    #[test]
    fn unknown_routes_and_methods_are_enveloped() {
        let ctx = ctx();
        let (status, reply) = handle(&request("GET", "/nope", ""), &ctx);
        assert_eq!(status, 404);
        assert_eq!(error_code(&reply), "not_found");
        let (status, reply) = handle(&request("DELETE", "/healthz", ""), &ctx);
        assert_eq!(status, 405);
        assert_eq!(error_code(&reply), "method_not_allowed");
        let (status, reply) = handle(&request("POST", "/runs/1", ""), &ctx);
        assert_eq!(status, 405);
        assert_eq!(error_code(&reply), "method_not_allowed");
        let (status, reply) = handle(&request("GET", "/runs/99", ""), &ctx);
        assert_eq!(status, 404);
        assert_eq!(error_code(&reply), "not_found");
        let (status, reply) = handle(&request("GET", "/runs/abc", ""), &ctx);
        assert_eq!(status, 400);
        assert_eq!(error_code(&reply), "bad_request");
    }

    #[test]
    fn full_queue_rejects_with_503_and_fails_the_record() {
        let cfg = ServerConfig {
            queue_capacity: 1,
            ..ServerConfig::default()
        };
        let ctx = ServerCtx::new(&cfg).expect("engine builds");
        let body = r#"{"circuit": "device_idsat", "samples": 5}"#;
        let (status, _) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 202);
        let (status, reply) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 503);
        assert_eq!(error_code(&reply), "queue_full");
        // The second record exists but is honestly marked failed, with a
        // structured reason the coordinator can branch on: a full queue
        // is load, so the shard is worth re-issuing.
        let (_, reply) = handle(&request("GET", "/runs/2", ""), &ctx);
        let run = reply.get("run").unwrap();
        assert_eq!(run.get("status").and_then(Json::as_str), Some("failed"));
        let error = run.get("error").expect("failed runs carry a reason");
        assert!(error
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("rejected at submission"));
        assert_eq!(error.get("retryable").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn fatal_failures_are_marked_non_retryable() {
        let ctx = ctx();
        let body = r#"{"circuit": "device_idsat", "samples": 5}"#;
        let (status, _) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 202);
        // Simulate registry drift: the worker loop records the engine's
        // fatal classification verbatim.
        ctx.store
            .fail(1, RunFailure::fatal("unknown circuit template `gone`"));
        let (_, reply) = handle(&request("GET", "/runs/1", ""), &ctx);
        let run = reply.get("run").unwrap();
        let error = run.get("error").unwrap();
        assert_eq!(error.get("retryable").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn shard_total_consistency_is_accepted_when_it_holds() {
        let ctx = ctx();
        let body = r#"{"circuit": "device_idsat", "seed": 1,
                       "shard": {"offset": 80, "len": 20}, "total": 100}"#;
        let (status, reply) = handle(&request("POST", "/experiments", body), &ctx);
        assert_eq!(status, 202, "{}", reply.to_text());
    }
}
