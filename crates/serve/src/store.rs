//! Run lifecycle state: experiment specs, run records, the bounded job
//! queue, and the byte↔hex codec the wire protocol uses for sketch
//! payloads.
//!
//! The store is the only mutable state the server shares between its
//! connection threads and its worker threads: an `Arc<Mutex<_>>` map of
//! run id → [`RunRecord`]. Records move `queued → running → done|failed`
//! and are never removed — a run id handed to a client stays resolvable
//! for the server's lifetime.

use crate::error::ApiError;
use crate::pool::SinkSet;
use stats::sink::MergeableSink;
use stats::WeightedSink;
use std::collections::{HashMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// A validated experiment: which template to run, which shard of the
/// sample index space, and which sketch payloads to return.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Template id (see `GET /circuits`).
    pub circuit: String,
    /// Analysis kind; the built-in templates support `"dc"`.
    pub analysis: String,
    /// Base RNG seed. Shards of one experiment share the seed and
    /// partition the index range.
    pub seed: u64,
    /// First sample index of this shard.
    pub offset: usize,
    /// Number of samples in this shard.
    pub len: usize,
    /// Declared total sample count of the whole experiment, when the
    /// client stated one. Validation guarantees `offset + len <= total`,
    /// so a buggy coordinator cannot silently request work outside the
    /// experiment's index space.
    pub total: Option<usize>,
    /// Return the Welford moment-sketch bytes.
    pub want_welford: bool,
    /// Return the fixed-bin histogram bytes.
    pub want_histogram: bool,
    /// Return the t-digest quantile-sketch bytes.
    pub want_tdigest: bool,
    /// Histogram `(lo, hi, bins)` — must match across shards that will be
    /// merged (the fallible merge path rejects mismatches).
    pub histogram: (f64, f64, usize),
    /// t-digest compression — must likewise match across merged shards.
    pub tdigest_compression: f64,
    /// Gaussian proposal `(shift, scale)` for importance-sampled
    /// templates; `(0.0, 1.0)` is the plain nominal draw.
    pub proposal: (f64, f64),
    /// Tail threshold the weighted-moments sink estimates `P(X > t)` at.
    /// Must match across shards that will be merged.
    pub threshold: f64,
    /// Return the weighted-moments sketch bytes (IS templates only).
    pub want_wmoments: bool,
    /// Return the weighted-histogram sketch bytes (IS templates only).
    pub want_whistogram: bool,
}

/// Where a run is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing the shard.
    Running,
    /// Finished; the result is available.
    Done,
    /// Execution failed; the error message is available.
    Failed,
}

impl RunStatus {
    /// The wire name of the status.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            RunStatus::Queued => "queued",
            RunStatus::Running => "running",
            RunStatus::Done => "done",
            RunStatus::Failed => "failed",
        }
    }
}

/// Why a run failed, in coordinator-actionable form: the message plus
/// whether re-issuing the identical shard can succeed. Transient faults
/// (full queue at submission, a crashed worker thread, resource
/// exhaustion) are retryable; spec-level faults (a template the engine
/// cannot run) are not — retrying them would loop forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFailure {
    /// Human-readable failure detail.
    pub message: String,
    /// Whether re-issuing the same shard (here or on another worker) can
    /// succeed.
    pub retryable: bool,
}

impl RunFailure {
    /// A failure worth re-issuing.
    #[must_use]
    pub fn transient(message: impl Into<String>) -> Self {
        RunFailure {
            message: message.into(),
            retryable: true,
        }
    }

    /// A failure that will recur on every retry.
    #[must_use]
    pub fn fatal(message: impl Into<String>) -> Self {
        RunFailure {
            message: message.into(),
            retryable: false,
        }
    }
}

/// What a finished shard produced: the scalar report plus the requested
/// sketch byte payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Samples that produced a metric value.
    pub observed: u64,
    /// Samples whose solve failed (counted, not fatal).
    pub failures: u64,
    /// Streaming moment summary: observation count.
    pub count: u64,
    /// Streaming mean of the metric.
    pub mean: f64,
    /// Streaming sample variance of the metric.
    pub variance: f64,
    /// Serialized [`stats::Welford`] state, when requested.
    pub welford_bytes: Option<Vec<u8>>,
    /// Serialized [`stats::histogram::Histogram`] state, when requested.
    pub histogram_bytes: Option<Vec<u8>>,
    /// Serialized [`stats::TDigest`] state, when requested.
    pub tdigest_bytes: Option<Vec<u8>>,
    /// Serialized [`stats::WeightedMoments`] state, when requested.
    pub wmoments_bytes: Option<Vec<u8>>,
    /// Serialized [`stats::WeightedHistogram`] state, when requested.
    pub whistogram_bytes: Option<Vec<u8>>,
    /// Whether this result was replayed from the artifact cache instead
    /// of computed — surfaced on the wire so clients can tell.
    pub cached: bool,
}

impl RunResult {
    /// Assembles the result from a finished shard's sink bundle.
    #[must_use]
    pub fn collect(observed: u64, failures: u64, spec: &ExperimentSpec, sinks: SinkSet) -> Self {
        let moments = sinks.welford.moments();
        RunResult {
            observed,
            failures,
            count: moments.count(),
            mean: moments.mean(),
            variance: moments.variance(),
            welford_bytes: spec.want_welford.then(|| sinks.welford.to_bytes()),
            histogram_bytes: sinks.histogram.as_ref().map(MergeableSink::to_bytes),
            tdigest_bytes: sinks.tdigest.as_ref().map(MergeableSink::to_bytes),
            wmoments_bytes: None,
            whistogram_bytes: None,
            cached: false,
        }
    }

    /// Assembles the result from a finished importance-sampled shard's
    /// weighted sink bundle. The scalar `moments` block reports the tail
    /// estimator: `count` is the record count, `mean` the estimated
    /// nominal probability, `variance` the estimator variance.
    #[must_use]
    pub fn collect_weighted(
        observed: u64,
        failures: u64,
        spec: &ExperimentSpec,
        sinks: crate::pool::WeightedSinkSet,
    ) -> Self {
        RunResult {
            observed,
            failures,
            count: sinks.moments.count(),
            mean: sinks.moments.estimate(),
            variance: sinks.moments.variance(),
            welford_bytes: None,
            histogram_bytes: None,
            tdigest_bytes: None,
            wmoments_bytes: spec.want_wmoments.then(|| sinks.moments.to_bytes()),
            whistogram_bytes: sinks.histogram.as_ref().map(WeightedSink::to_bytes),
            cached: false,
        }
    }
}

/// One run's full record: the spec it was created from, where it is in
/// its lifecycle, and its outcome.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Server-assigned run id.
    pub id: u64,
    /// The validated spec the run was created from.
    pub spec: ExperimentSpec,
    /// Lifecycle position.
    pub status: RunStatus,
    /// Failure reason, when `status == Failed`.
    pub error: Option<RunFailure>,
    /// The result, when `status == Done`.
    pub result: Option<RunResult>,
}

/// The shared run-id → record map. Ids are dense and start at 1.
#[derive(Default)]
pub struct RunStore {
    inner: Mutex<StoreState>,
}

#[derive(Default)]
struct StoreState {
    next_id: u64,
    runs: HashMap<u64, RunRecord>,
}

impl RunStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        RunStore::default()
    }

    /// Registers a new queued run and returns its id.
    pub fn create(&self, spec: ExperimentSpec) -> u64 {
        let mut state = self.inner.lock().expect("no poisoned locks");
        state.next_id += 1;
        let id = state.next_id;
        state.runs.insert(
            id,
            RunRecord {
                id,
                spec,
                status: RunStatus::Queued,
                error: None,
                result: None,
            },
        );
        id
    }

    /// A snapshot of one run's record.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<RunRecord> {
        self.inner
            .lock()
            .expect("no poisoned locks")
            .runs
            .get(&id)
            .cloned()
    }

    /// Marks a run as picked up by a worker.
    pub fn mark_running(&self, id: u64) {
        self.update(id, |r| r.status = RunStatus::Running);
    }

    /// Records a successful result.
    pub fn complete(&self, id: u64, result: RunResult) {
        self.update(id, |r| {
            r.status = RunStatus::Done;
            r.result = Some(result);
        });
    }

    /// Records a failure reason.
    pub fn fail(&self, id: u64, failure: RunFailure) {
        self.update(id, |r| {
            r.status = RunStatus::Failed;
            r.error = Some(failure);
        });
    }

    /// Total runs ever created.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("no poisoned locks").runs.len()
    }

    /// Whether no runs have been created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn update(&self, id: u64, f: impl FnOnce(&mut RunRecord)) {
        if let Some(record) = self
            .inner
            .lock()
            .expect("no poisoned locks")
            .runs
            .get_mut(&id)
        {
            f(record);
        }
    }
}

/// The bounded FIFO of queued run ids feeding the worker threads.
///
/// `push` never blocks — a full queue is the client's problem (`503
/// queue_full`), not a reason to hold a connection thread hostage. `pop`
/// blocks until a job arrives or the queue is closed for shutdown.
pub struct JobQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

struct QueueState {
    jobs: VecDeque<u64>,
    closed: bool,
}

impl JobQueue {
    /// A queue holding at most `capacity` pending run ids.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a run id.
    ///
    /// # Errors
    ///
    /// [`ApiError::queue_full`] when the queue is at capacity, and a 503
    /// envelope when the server is shutting down.
    pub fn push(&self, id: u64) -> Result<(), ApiError> {
        let mut state = self.state.lock().expect("no poisoned locks");
        if state.closed {
            return Err(ApiError {
                status: 503,
                code: "shutting_down",
                message: "server is shutting down".to_string(),
            });
        }
        if state.jobs.len() >= self.capacity {
            return Err(ApiError::queue_full(self.capacity));
        }
        state.jobs.push_back(id);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next run id; `None` once the queue is closed and
    /// drained (the worker's signal to exit).
    pub fn pop(&self) -> Option<u64> {
        let mut state = self.state.lock().expect("no poisoned locks");
        loop {
            if let Some(id) = state.jobs.pop_front() {
                return Some(id);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("no poisoned locks");
        }
    }

    /// Closes the queue: queued jobs still drain, new pushes fail, and
    /// blocked `pop`s wake.
    pub fn close(&self) {
        self.state.lock().expect("no poisoned locks").closed = true;
        self.available.notify_all();
    }

    /// Jobs currently waiting.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.state.lock().expect("no poisoned locks").jobs.len()
    }
}

/// Lowercase hex encoding for sketch byte payloads — JSON-safe without
/// any base64 machinery, and trivially decodable from every client
/// language.
#[must_use]
pub fn hex_encode(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(DIGITS[(b >> 4) as usize] as char);
        out.push(DIGITS[(b & 0xf) as usize] as char);
    }
    out
}

/// Decodes the hex produced by [`hex_encode`] (either nibble case).
///
/// # Errors
///
/// A static message on odd length or a non-hex byte.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, &'static str> {
    if !text.len().is_multiple_of(2) {
        return Err("hex payload has odd length");
    }
    fn nibble(b: u8) -> Result<u8, &'static str> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            _ => Err("hex payload has a non-hex byte"),
        }
    }
    let raw = text.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push((nibble(pair[0])? << 4) | nibble(pair[1])?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> ExperimentSpec {
        ExperimentSpec {
            circuit: "device_idsat".to_string(),
            analysis: "dc".to_string(),
            seed: 1,
            offset: 0,
            len: 10,
            total: None,
            want_welford: true,
            want_histogram: false,
            want_tdigest: false,
            histogram: (0.0, 1.0, 8),
            tdigest_compression: 100.0,
            proposal: (0.0, 1.0),
            threshold: 3.0,
            want_wmoments: false,
            want_whistogram: false,
        }
    }

    #[test]
    fn records_progress_through_the_lifecycle() {
        let store = RunStore::new();
        assert!(store.is_empty());
        let id = store.create(spec());
        assert_eq!(store.get(id).unwrap().status, RunStatus::Queued);
        store.mark_running(id);
        assert_eq!(store.get(id).unwrap().status, RunStatus::Running);
        store.fail(id, RunFailure::transient("boom"));
        let record = store.get(id).unwrap();
        assert_eq!(record.status, RunStatus::Failed);
        let failure = record.error.unwrap();
        assert_eq!(failure.message, "boom");
        assert!(failure.retryable);
        assert_eq!(store.len(), 1);
        assert!(store.get(id + 1).is_none());
    }

    #[test]
    fn queue_is_bounded_and_closable() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3).unwrap_err().code, "queue_full");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.push(4).unwrap_err().code, "shutting_down");
        // Queued jobs still drain after close; then pop signals exit.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_wakes_a_blocked_worker() {
        let q = std::sync::Arc::new(JobQueue::new(4));
        let waiter = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(waiter.join().unwrap(), Some(7));
    }

    #[test]
    fn hex_round_trips_and_rejects_garbage() {
        let bytes: Vec<u8> = (0..=255).collect();
        let text = hex_encode(&bytes);
        assert_eq!(hex_decode(&text).unwrap(), bytes);
        assert_eq!(hex_decode(&text.to_uppercase()).unwrap(), bytes);
        assert_eq!(hex_encode(&[0xde, 0xad]), "dead");
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
        assert!(hex_decode("").unwrap().is_empty());
    }

    #[test]
    fn run_status_wire_names_are_stable() {
        assert_eq!(RunStatus::Queued.as_str(), "queued");
        assert_eq!(RunStatus::Running.as_str(), "running");
        assert_eq!(RunStatus::Done.as_str(), "done");
        assert_eq!(RunStatus::Failed.as_str(), "failed");
    }
}
