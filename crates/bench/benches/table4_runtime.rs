//! Table IV microbenchmark: one Monte Carlo sample of each paper workload
//! (NAND2 transient, DFF transient, SRAM static) per model family.
//!
//! The `repro table4` experiment measures the full-scale wall-clock totals;
//! this bench gives statistically robust per-sample numbers.

use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use circuits::dff::{DffBench, DffSizing};
use circuits::sram::{read_disturb_ac, SramDevices, SramSizing};
use criterion::{criterion_group, criterion_main, Criterion};
use mosfet::{bsim::BsimParams, vs::VsParams, MismatchSpec};
use stats::Sampler;
use vscore::mc::McFactory;

fn factory(family: &str, seed: u64) -> McFactory {
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    match family {
        "vs" => McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(seed),
        ),
        _ => McFactory::bsim(
            BsimParams::nmos_40nm(),
            BsimParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(seed),
        ),
    }
}

fn bench_table4(c: &mut Criterion) {
    for family in ["vs", "bsim"] {
        let mut group = c.benchmark_group(format!("table4_{family}"));
        group.sample_size(12);
        group.bench_function("nand2_tran_sample", |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut f = factory(family, seed);
                DelayBench::fo3(
                    GateKind::Nand2,
                    InverterSizing::from_nm(300.0, 300.0, 40.0),
                    0.9,
                    &mut f,
                )
                .measure_delay(2e-12)
            })
        });
        group.bench_function("dff_tran_sample", |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut f = factory(family, seed);
                DffBench::new(DffSizing::default(), 0.9, 150e-12, &mut f).captures(4e-12)
            })
        });
        group.bench_function("sram_ac_sample", |b| {
            let freqs = spice::ac::log_sweep(1e6, 1e11, 5);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                let mut f = factory(family, seed);
                let devices = SramDevices::draw(SramSizing::default(), &mut f);
                read_disturb_ac(&devices, 0.9, &freqs)
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_table4
}
criterion_main!(benches);
