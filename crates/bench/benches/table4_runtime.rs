//! Table IV microbenchmark: one Monte Carlo sample of each paper workload
//! (NAND2 transient, DFF transient, SRAM AC) per model family, all through
//! persistent sessions with in-place device resampling — the SRAM AC
//! samples run on the batched path (`ReadDisturbBench::run` →
//! `Session::ac_batch`), so consecutive samples amortize the guessed
//! operating-point solve and reuse one AC workspace.
//!
//! The `repro table4` experiment measures the full-scale wall-clock totals;
//! this bench gives statistically robust per-sample numbers.

use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use circuits::dff::{DffBench, DffSizing};
use circuits::sram::{ReadDisturbBench, SramSizing};
use mosfet::{bsim::BsimParams, vs::VsParams, MismatchSpec};
use stats::Sampler;
use vsbench::microbench::{maybe_write_json, measure};
use vscore::mc::McFactory;

fn factory(family: &str, seed: u64) -> McFactory {
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    match family {
        "vs" => McFactory::vs(
            VsParams::nmos_40nm(),
            VsParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(seed),
        ),
        _ => McFactory::bsim(
            BsimParams::nmos_40nm(),
            BsimParams::pmos_40nm(),
            spec,
            spec,
            Sampler::from_seed(seed),
        ),
    }
}

fn main() {
    let mut results = Vec::new();
    for family in ["vs", "bsim"] {
        {
            let mut f0 = factory(family, 0);
            let mut bench = DelayBench::fo3(
                GateKind::Nand2,
                InverterSizing::from_nm(300.0, 300.0, 40.0),
                0.9,
                &mut f0,
            );
            let mut seed = 0;
            results.push(measure(
                &format!("table4_{family}/nand2_tran_sample"),
                || {
                    seed += 1;
                    let mut f = factory(family, seed);
                    bench.resample(&mut f);
                    // Extreme mismatch draws may fail functionally; that
                    // is part of the measured workload, not a bench error.
                    let _ = bench.measure_delay(2e-12);
                },
            ));
        }
        {
            let mut f0 = factory(family, 0);
            let mut bench = DffBench::new(DffSizing::default(), 0.9, 150e-12, &mut f0);
            let mut seed = 0;
            results.push(measure(&format!("table4_{family}/dff_tran_sample"), || {
                seed += 1;
                let mut f = factory(family, seed);
                bench.resample(&mut f);
                let _ = bench.captures(4e-12);
            }));
        }
        {
            let freqs = spice::ac::log_sweep(1e6, 1e11, 5);
            let mut f0 = factory(family, 0);
            let mut bench =
                ReadDisturbBench::new(SramSizing::default(), 0.9, &mut f0).expect("well-formed");
            let mut seed = 0;
            results.push(measure(&format!("table4_{family}/sram_ac_sample"), || {
                seed += 1;
                let mut f = factory(family, seed);
                bench
                    .resample(SramSizing::default(), &mut f)
                    .expect("known instances");
                let _ = bench.run(&freqs);
            }));
        }
    }
    maybe_write_json(&results);
}
