//! Monte Carlo throughput.
//!
//! Two levels:
//!
//! * **Device level** (Table III's workload): samples of
//!   `{Idsat, log10 Ioff, Cgg}` under Pelgrom mismatch, both model
//!   families.
//! * **Circuit level** (Figs. 5–9's workload): repeated solves of one SRAM
//!   topology with resampled devices, comparing the legacy shape (rebuild +
//!   re-elaborate every sample) against the session shape
//!   (`Session::swap_devices` + warm-started re-solve).
//!
//! Run `cargo bench --bench mc_throughput -- --json BENCH_mc_throughput.json`
//! to refresh the perf-trajectory baseline at the repo root.

use circuits::sram::{SnmBench, SnmMode, SramDevices, SramSizing};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use spice::Session;
use stats::Sampler;
use vsbench::microbench::{maybe_write_json, measure, Measurement};
use vscore::mc::{device_metric_samples, McFactory, ParallelRunner};
use vscore::sensitivity::{BsimBuilder, VsBuilder};

fn mc_factory(seed: u64) -> McFactory {
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec,
        spec,
        Sampler::from_seed(seed),
    )
}

fn main() {
    let mut results = Vec::new();

    // ---- device level ---------------------------------------------------
    let geom = Geometry::from_nm(600.0, 40.0);
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let vs = VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };
    let kit = BsimBuilder {
        params: mosfet::bsim::BsimParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };
    results.push(measure("device_mc_100_samples/vs", || {
        let mut s = Sampler::from_seed(1);
        device_metric_samples(&vs, &spec, 0.9, 100, &mut s);
    }));
    results.push(measure("device_mc_100_samples/bsim", || {
        let mut s = Sampler::from_seed(1);
        device_metric_samples(&kit, &spec, 0.9, 100, &mut s);
    }));

    // ---- circuit level: full-cell DC operating point --------------------
    // The inner solve of every SRAM Monte Carlo sample. "rebuild" is the
    // pre-session architecture: construct the netlist and elaborate a fresh
    // workspace per sample. "session" swaps the six devices into one live
    // elaboration and warm-starts Newton from the previous sample's
    // operating point.
    let sz = SramSizing::default();
    {
        let mut seed = 0u64;
        results.push(measure("sram_dc_sample/rebuild", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let devices = SramDevices::draw(sz, &mut f);
            let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
            let mut s = Session::elaborate(c).expect("well-formed");
            // Extreme mismatch draws may settle in either stable state or
            // fail to converge; both are part of the measured workload.
            if let Ok(op) = s.dc_owned_with_guess(&[(l, 0.0), (r, 0.9)]) {
                assert!(op.voltage(r).is_finite());
            }
        }));
    }
    {
        let mut seed = 0u64;
        let mut f0 = mc_factory(0);
        let devices = SramDevices::draw(sz, &mut f0);
        let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
        let mut session = Session::elaborate(c).expect("well-formed");
        // Select the basin once; subsequent samples warm-start from the
        // previous sample's operating point instead of re-running the
        // guessed continuation.
        let _ = session
            .dc_owned_with_guess(&[(l, 0.0), (r, 0.9)])
            .expect("solves");
        let _ = l;
        results.push(measure("sram_dc_sample/session_swap", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
            let [pd0, pd1] = pd;
            let [pu0, pu1] = pu;
            let [pg0, pg1] = pg;
            session
                .swap_devices([
                    ("PD1", pd0),
                    ("PD2", pd1),
                    ("PU1", pu0),
                    ("PU2", pu1),
                    ("PG1", pg0),
                    ("PG2", pg1),
                ])
                .expect("known instances");
            if let Ok(op) = session.dc_owned() {
                assert!(op.voltage(r).is_finite());
            }
        }));
    }

    // ---- circuit level: parallel SRAM DC Monte Carlo --------------------
    // The same per-sample workload as sram_dc_sample/session_swap, sharded
    // with ParallelRunner: one replicated session per worker, per-sample
    // device swaps from deterministically derived streams, warm-started
    // solves. One measured iteration = a PAR_BATCH-sample run (including
    // worker spawn + Session::replicate setup); the recorded entry is
    // normalized per sample, so aggregate throughput across threads is
    // directly comparable with the single-session baseline above.
    {
        const PAR_BATCH: usize = 512;
        let mut f0 = mc_factory(0);
        let devices = SramDevices::draw(sz, &mut f0);
        let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
        let master = Session::elaborate(c).expect("well-formed");
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let mut thread_counts = vec![1, 4, avail];
        thread_counts.sort_unstable();
        thread_counts.dedup();
        for threads in thread_counts {
            let mut run_seed = 0u64;
            let m = measure(&format!("sram_dc_mc_batch512/aggregate_{threads}t"), || {
                run_seed += 1;
                let out = ParallelRunner::new(run_seed)
                    .workers(threads)
                    .run(
                        PAR_BATCH,
                        |_, _| {
                            let mut s = master.replicate()?;
                            // Select the basin once per worker; samples then
                            // warm-start from the previous operating point.
                            let op = s.dc_owned_with_guess(&[(l, 0.0), (r, 0.9)])?;
                            assert!(op.voltage(r).is_finite());
                            Ok(s)
                        },
                        |session, sampler, _| {
                            let mut f = mc_factory(0);
                            f.set_sampler(sampler.clone());
                            let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                            let [pd0, pd1] = pd;
                            let [pu0, pu1] = pu;
                            let [pg0, pg1] = pg;
                            session
                                .swap_devices([
                                    ("PD1", pd0),
                                    ("PD2", pd1),
                                    ("PU1", pu0),
                                    ("PU2", pu1),
                                    ("PG1", pg0),
                                    ("PG2", pg1),
                                ])
                                .expect("known instances");
                            // Extreme draws may fail to converge; counted,
                            // not fatal — part of the measured workload.
                            session.dc_owned().map(|op| op.voltage(r))
                        },
                    )
                    .expect("replication succeeds");
                assert_eq!(out.len() + out.failures, PAR_BATCH);
            });
            results.push(Measurement {
                label: format!("sram_dc_sample/parallel_{threads}t"),
                secs_per_iter: m.secs_per_iter / PAR_BATCH as f64,
                iters: m.iters * PAR_BATCH as u64,
            });
        }
    }

    // ---- circuit level: READ SNM (butterfly sweeps) ---------------------
    {
        let mut seed = 0u64;
        results.push(measure("sram_read_snm_sample/rebuild", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let mut bench = SnmBench::new(sz, 0.9, SnmMode::Read, 31, &mut f).expect("well-formed");
            if let Ok(s) = bench.snm() {
                assert!(s.is_finite());
            }
        }));
    }
    {
        let mut seed = 0u64;
        let mut f0 = mc_factory(0);
        let mut bench = SnmBench::new(sz, 0.9, SnmMode::Read, 31, &mut f0).expect("well-formed");
        results.push(measure("sram_read_snm_sample/session_swap", || {
            seed += 1;
            let mut f = mc_factory(seed);
            bench.resample(sz, &mut f).expect("known instances");
            if let Ok(s) = bench.snm() {
                assert!(s.is_finite());
            }
        }));
    }

    maybe_write_json(&results);
}
