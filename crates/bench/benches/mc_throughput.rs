//! Device-level Monte Carlo throughput (Table III's workload): samples of
//! `{Idsat, log10 Ioff, Cgg}` under Pelgrom mismatch, both model families.

use criterion::{criterion_group, criterion_main, Criterion};
use mosfet::{bsim::BsimParams, vs::VsParams, Geometry, Polarity};
use stats::Sampler;
use vscore::mc::device_metric_samples;
use vscore::sensitivity::{BsimBuilder, VsBuilder};

fn bench_mc(c: &mut Criterion) {
    let geom = Geometry::from_nm(600.0, 40.0);
    let spec = mosfet::MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let vs = VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };
    let kit = BsimBuilder {
        params: BsimParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };

    let mut group = c.benchmark_group("device_mc_100_samples");
    group.bench_function("vs", |b| {
        b.iter(|| {
            let mut s = Sampler::from_seed(1);
            device_metric_samples(&vs, &spec, 0.9, 100, &mut s)
        })
    });
    group.bench_function("bsim", |b| {
        b.iter(|| {
            let mut s = Sampler::from_seed(1);
            device_metric_samples(&kit, &spec, 0.9, 100, &mut s)
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mc
}
criterion_main!(benches);
