//! Monte Carlo throughput.
//!
//! Two levels:
//!
//! * **Device level** (Table III's workload): samples of
//!   `{Idsat, log10 Ioff, Cgg}` under Pelgrom mismatch, both model
//!   families.
//! * **Circuit level** (Figs. 5–9's and Table IV's workload): repeated
//!   solves of one SRAM topology with resampled devices, comparing the
//!   legacy shape (rebuild + re-elaborate every sample; per-point AC
//!   matrices) against the session shape (`Session::swap_devices` +
//!   warm-started re-solve; `Session::ac_batch` + reused `AcWorkspace`)
//!   and the K-lane batched DC shape (`Session::dc_batch` via
//!   `ParallelRunner::run_streaming_batched`).
//!
//! Run `cargo bench --bench mc_throughput -- --json BENCH_mc_throughput.json`
//! to refresh the perf-trajectory baseline at the repo root.

use circuits::sram::{SnmBench, SnmMode, SramDevices, SramSizing};
use mosfet::{vs::VsParams, Geometry, MismatchSpec, MosfetModel, Polarity};
use numerics::complex::{CMatrix, C64};
use spice::Session;
use stats::Sampler;
use std::num::NonZeroUsize;
use vsbench::microbench::{maybe_write_json, measure, Measurement};
use vscore::mc::{device_metric_samples, McFactory, P2Quantiles, ParallelRunner, WelfordSink};
use vscore::sensitivity::{BsimBuilder, VsBuilder};

fn mc_factory(seed: u64) -> McFactory {
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    McFactory::vs(
        VsParams::nmos_40nm(),
        VsParams::pmos_40nm(),
        spec,
        spec,
        Sampler::from_seed(seed),
    )
}

/// The seed's consuming complex solve, reproduced verbatim for the
/// `sram_ac_sample/per_point` "before" arm: `hypot` pivot selection, a full
/// Smith division per multiplier, and the right-hand side folded through
/// the elimination — the kernel the pre-batching AC path ran per frequency
/// point (the library kernel has since been optimized, so using it here
/// would understate the before/after gap).
fn legacy_complex_solve(mut m: CMatrix, b: &[C64]) -> Option<Vec<C64>> {
    let n = m.order();
    let mut x = b.to_vec();
    for k in 0..n {
        let mut p = k;
        let mut pmax = m.at(k, k).abs();
        for i in (k + 1)..n {
            let v = m.at(i, k).abs();
            if v > pmax {
                pmax = v;
                p = i;
            }
        }
        if !(pmax > 1e-300) || !pmax.is_finite() {
            return None;
        }
        if p != k {
            for j in 0..n {
                let tmp = m.at(k, j);
                *m.at_mut(k, j) = m.at(p, j);
                *m.at_mut(p, j) = tmp;
            }
            x.swap(k, p);
        }
        let pivot = m.at(k, k);
        for i in (k + 1)..n {
            let mult = m.at(i, k) / pivot;
            if mult != C64::ZERO {
                for j in (k + 1)..n {
                    let v = m.at(k, j);
                    *m.at_mut(i, j) = m.at(i, j) - mult * v;
                }
                x[i] = x[i] - mult * x[k];
            }
            *m.at_mut(i, k) = mult;
        }
    }
    for i in (0..n).rev() {
        let mut s = x[i];
        for j in (i + 1)..n {
            s = s - m.at(i, j) * x[j];
        }
        x[i] = s / m.at(i, i);
    }
    Some(x)
}

fn main() {
    let mut results = Vec::new();

    // ---- device level ---------------------------------------------------
    let geom = Geometry::from_nm(600.0, 40.0);
    let spec = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let vs = VsBuilder {
        params: VsParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };
    let kit = BsimBuilder {
        params: mosfet::bsim::BsimParams::nmos_40nm(),
        polarity: Polarity::Nmos,
        geom,
    };
    results.push(measure("device_mc_100_samples/vs", || {
        let mut s = Sampler::from_seed(1);
        device_metric_samples(&vs, &spec, 0.9, 100, &mut s);
    }));
    results.push(measure("device_mc_100_samples/bsim", || {
        let mut s = Sampler::from_seed(1);
        device_metric_samples(&kit, &spec, 0.9, 100, &mut s);
    }));

    // ---- circuit level: full-cell DC operating point --------------------
    // The inner solve of every SRAM Monte Carlo sample. "rebuild" is the
    // pre-session architecture: construct the netlist and elaborate a fresh
    // workspace per sample. "session" swaps the six devices into one live
    // elaboration and warm-starts Newton from the previous sample's
    // operating point.
    let sz = SramSizing::default();
    {
        let mut seed = 0u64;
        results.push(measure("sram_dc_sample/rebuild", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let devices = SramDevices::draw(sz, &mut f);
            let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
            let mut s = Session::elaborate(c).expect("well-formed");
            // Extreme mismatch draws may settle in either stable state or
            // fail to converge; both are part of the measured workload.
            if let Ok(op) = s.dc_owned_with_guess(&[(l, 0.0), (r, 0.9)]) {
                assert!(op.voltage(r).is_finite());
            }
        }));
    }
    {
        let mut seed = 0u64;
        let mut f0 = mc_factory(0);
        let devices = SramDevices::draw(sz, &mut f0);
        let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
        let mut session = Session::elaborate(c).expect("well-formed");
        // Select the basin once; subsequent samples warm-start from the
        // previous sample's operating point instead of re-running the
        // guessed continuation.
        let _ = session
            .dc_owned_with_guess(&[(l, 0.0), (r, 0.9)])
            .expect("solves");
        let _ = l;
        results.push(measure("sram_dc_sample/session_swap", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
            let [pd0, pd1] = pd;
            let [pu0, pu1] = pu;
            let [pg0, pg1] = pg;
            session
                .swap_devices([
                    ("PD1", pd0),
                    ("PD2", pd1),
                    ("PU1", pu0),
                    ("PU2", pu1),
                    ("PG1", pg0),
                    ("PG2", pg1),
                ])
                .expect("known instances");
            if let Ok(op) = session.dc_owned() {
                assert!(op.voltage(r).is_finite());
            }
        }));
    }

    // ---- circuit level: parallel + streaming SRAM DC Monte Carlo --------
    // The same per-sample workload as sram_dc_sample/session_swap, sharded
    // with ParallelRunner: one replicated session per worker, per-sample
    // device swaps from deterministically derived streams, warm-started
    // solves. One measured iteration = a PAR_BATCH-sample run (including
    // worker spawn + Session::replicate setup); the recorded entries are
    // normalized per sample, so aggregate throughput across threads is
    // directly comparable with the single-session baseline above.
    //
    // The `streaming_1t` entry runs the *identical* build/sample closures
    // through ParallelRunner::run_streaming into realistic sinks (live
    // Welford moments + a three-level P² quantile sketch) instead of the
    // buffered per-sample slots. Peak sample storage drops from O(n) slots
    // to O(workers + check_every) in-flight records; the per-sample cost
    // must stay within noise of the buffered `parallel_1t` entry (the sink
    // fold is nanoseconds against a ~20 µs DC solve).
    {
        const PAR_BATCH: usize = 512;
        let mut f0 = mc_factory(0);
        let devices = SramDevices::draw(sz, &mut f0);
        let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
        let master = Session::elaborate(c).expect("well-formed");
        // One shared pair of workload closures: the buffered and streaming
        // entries must measure exactly the same per-sample work.
        let build = |_: usize, _: &mut Sampler| {
            let mut s = master.replicate()?;
            // Select the basin once per worker; samples then warm-start
            // from the previous operating point.
            let op = s.dc_owned_with_guess(&[(l, 0.0), (r, 0.9)])?;
            assert!(op.voltage(r).is_finite());
            Ok(s)
        };
        let sample = |session: &mut Session, sampler: &mut Sampler, _: usize| {
            let mut f = mc_factory(0);
            f.set_sampler(sampler.clone());
            let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
            let [pd0, pd1] = pd;
            let [pu0, pu1] = pu;
            let [pg0, pg1] = pg;
            session
                .swap_devices([
                    ("PD1", pd0),
                    ("PD2", pd1),
                    ("PU1", pu0),
                    ("PU2", pu1),
                    ("PG1", pg0),
                    ("PG2", pg1),
                ])
                .expect("known instances");
            // Extreme draws may fail to converge; counted, not fatal —
            // part of the measured workload.
            session.dc_owned().map(|op| op.voltage(r))
        };
        let avail = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
        let mut thread_counts = vec![1, 4, avail];
        thread_counts.sort_unstable();
        thread_counts.dedup();
        for threads in thread_counts {
            let mut run_seed = 0u64;
            let m = measure(&format!("sram_dc_mc_batch512/aggregate_{threads}t"), || {
                run_seed += 1;
                let out = ParallelRunner::new(run_seed)
                    .workers(threads)
                    .run(PAR_BATCH, build, sample)
                    .expect("replication succeeds");
                assert_eq!(out.len() + out.failures, PAR_BATCH);
            });
            results.push(Measurement {
                label: format!("sram_dc_sample/parallel_{threads}t"),
                secs_per_iter: m.secs_per_iter / PAR_BATCH as f64,
                iters: m.iters * PAR_BATCH as u64,
            });
        }
        let mut run_seed = 0u64;
        let m = measure("sram_dc_mc_batch512/aggregate_streaming_1t", || {
            run_seed += 1;
            let mut sink = (WelfordSink::new(), P2Quantiles::new(&[0.01, 0.5, 0.99]));
            let out = ParallelRunner::new(run_seed)
                .workers(1)
                .run_streaming(PAR_BATCH, build, sample, &mut sink)
                .expect("replication succeeds");
            assert_eq!(out.observed + out.failures, PAR_BATCH);
            assert!(sink.0.moments().count() == out.observed as u64);
        });
        results.push(Measurement {
            label: "sram_dc_sample/streaming_1t".to_string(),
            secs_per_iter: m.secs_per_iter / PAR_BATCH as f64,
            iters: m.iters * PAR_BATCH as u64,
        });

        // The `batched_k{4,8}` entries route the same workload through
        // `run_streaming_batched` + `Session::dc_batch`: one structure-of-
        // arrays stamp traversal evaluates all K mismatch lanes and a
        // batched LU factors them together, amortizing the per-sample
        // assemble/factor bookkeeping that dominates a ~10-unknown cell.
        // The device draws are the identical `(seed, index)` streams; the
        // batch warm-starts every lane from the previous batch's operating
        // point, the batched analogue of `parallel_1t`'s warm chaining.
        // When a batch's *last* lane fails, the warm start is lost for the
        // whole next batch (all K lanes would restart from zeros and pay K
        // continuation ladders where the scalar chain pays one), so the
        // closure recovers by re-entering from the basin guess instead.
        let guess = [(l, 0.0), (r, 0.9)];
        let batch = |session: &mut Session, _base: usize, samplers: &mut [Sampler]| {
            let lanes: Vec<Vec<(&'static str, Box<dyn MosfetModel>)>> = samplers
                .iter()
                .map(|sampler| {
                    let mut f = mc_factory(0);
                    f.set_sampler(sampler.clone());
                    let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                    let [pd0, pd1] = pd;
                    let [pu0, pu1] = pu;
                    let [pg0, pg1] = pg;
                    vec![
                        ("PD1", pd0),
                        ("PD2", pd1),
                        ("PU1", pu0),
                        ("PU2", pu1),
                        ("PG1", pg0),
                        ("PG2", pg1),
                    ]
                })
                .collect();
            let entry = if session.warm_start().is_some() {
                None
            } else {
                Some(&guess[..])
            };
            match session.dc_batch(lanes, entry) {
                Ok(ops) => ops
                    .into_iter()
                    .map(|lane| lane.map(|op| op.voltage(r)))
                    .collect(),
                Err(e) => samplers.iter().map(|_| Err(e.clone())).collect(),
            }
        };
        for k in [4usize, 8] {
            let lanes = NonZeroUsize::new(k).expect("nonzero lane count");
            let mut run_seed = 0u64;
            let m = measure(
                &format!("sram_dc_mc_batch512/aggregate_batched_k{k}"),
                || {
                    run_seed += 1;
                    let mut sink = (WelfordSink::new(), P2Quantiles::new(&[0.01, 0.5, 0.99]));
                    let out = ParallelRunner::new(run_seed)
                        .workers(1)
                        .run_streaming_batched(0, PAR_BATCH, lanes, build, batch, &mut sink)
                        .expect("replication succeeds");
                    assert_eq!(out.observed + out.failures, PAR_BATCH);
                    assert!(sink.0.moments().count() == out.observed as u64);
                },
            );
            results.push(Measurement {
                label: format!("sram_dc_sample/batched_k{k}"),
                secs_per_iter: m.secs_per_iter / PAR_BATCH as f64,
                iters: m.iters * PAR_BATCH as u64,
            });
        }
    }

    // ---- circuit level: SRAM AC (the paper's Table IV workload) ---------
    // One Monte Carlo sample = resample the six cell devices, solve the
    // "l low" operating point, linearize, sweep 26 log-spaced frequency
    // points. Three shapes of the same workload:
    //
    // * "per_point" — the pre-batching architecture: a guessed DC solve
    //   every sample, a freshly allocated linearization, and a freshly
    //   allocated + fully factored complex matrix per frequency point.
    // * "workspace_guessed" — `Session::ac_owned`: the cached AcWorkspace
    //   removes the per-point/per-sample allocation, but the operating
    //   point still re-runs the guessed solve every sample.
    // * "batched" — `ReadDisturbBench::run` → `Session::ac_batch`: the
    //   operating point additionally warm-starts from the previous sample.
    {
        let freqs = spice::ac::log_sweep(1e6, 1e11, 5);
        let sz = SramSizing::default();
        {
            let mut seed = 0u64;
            let mut f0 = mc_factory(0);
            let devices = SramDevices::draw(sz, &mut f0);
            let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
            let mut session = Session::elaborate(c).expect("well-formed");
            let guess = [(l, 0.0), (r, 0.9)];
            let nn = session.circuit().node_count() - 1;
            let src_idx = session.circuit().vsource_index("VBL").expect("VBL exists");
            let li = l.unknown().expect("storage node is not ground");
            results.push(measure("sram_ac_sample/per_point", || {
                seed += 1;
                let mut f = mc_factory(seed);
                let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                let [pd0, pd1] = pd;
                let [pu0, pu1] = pu;
                let [pg0, pg1] = pg;
                session
                    .swap_devices([
                        ("PD1", pd0),
                        ("PD2", pd1),
                        ("PU1", pu0),
                        ("PU2", pu1),
                        ("PG1", pg0),
                        ("PG2", pg1),
                    ])
                    .expect("known instances");
                // A guessed solve ignores the warm start — exactly the
                // pre-batching per-sample behaviour.
                let Ok(op) = session.dc_owned_with_guess(&guess) else {
                    return; // extreme draws may fail; part of the workload
                };
                let lin = session.circuit().linearize(op.raw());
                let n = lin.g.rows();
                let mut b = vec![C64::ZERO; n];
                b[nn + src_idx] = C64::ONE;
                for &fr in &freqs {
                    let omega = 2.0 * std::f64::consts::PI * fr;
                    let m = CMatrix::from_gc(&lin.g, &lin.c, omega);
                    let x = legacy_complex_solve(m, &b).expect("AC point solves");
                    assert!(x[li].abs().is_finite());
                }
            }));
        }
        {
            let mut seed = 0u64;
            let mut f0 = mc_factory(0);
            let devices = SramDevices::draw(sz, &mut f0);
            let (c, l, r) = circuits::sram::full_cell(&devices, 0.9);
            let mut session = Session::elaborate(c).expect("well-formed");
            let guess = [(l, 0.0), (r, 0.9)];
            results.push(measure("sram_ac_sample/workspace_guessed", || {
                seed += 1;
                let mut f = mc_factory(seed);
                let SramDevices { pd, pu, pg } = SramDevices::draw(sz, &mut f);
                let [pd0, pd1] = pd;
                let [pu0, pu1] = pu;
                let [pg0, pg1] = pg;
                session
                    .swap_devices([
                        ("PD1", pd0),
                        ("PD2", pd1),
                        ("PU1", pu0),
                        ("PU2", pu1),
                        ("PG1", pg0),
                        ("PG2", pg1),
                    ])
                    .expect("known instances");
                if let Ok(ac) = session.ac_owned("VBL", &freqs, &guess) {
                    assert!(ac.magnitudes(l)[0].is_finite());
                }
            }));
        }
        {
            let mut seed = 0u64;
            let mut f0 = mc_factory(0);
            let mut bench =
                circuits::sram::ReadDisturbBench::new(sz, 0.9, &mut f0).expect("well-formed");
            results.push(measure("sram_ac_sample/batched", || {
                seed += 1;
                let mut f = mc_factory(seed);
                bench.resample(sz, &mut f).expect("known instances");
                if let Ok(mags) = bench.run(&freqs) {
                    assert!(mags[0].is_finite());
                }
            }));
        }
    }

    // ---- circuit level: READ SNM (butterfly sweeps) ---------------------
    {
        let mut seed = 0u64;
        results.push(measure("sram_read_snm_sample/rebuild", || {
            seed += 1;
            let mut f = mc_factory(seed);
            let mut bench = SnmBench::new(sz, 0.9, SnmMode::Read, 31, &mut f).expect("well-formed");
            if let Ok(s) = bench.snm() {
                assert!(s.is_finite());
            }
        }));
    }
    {
        let mut seed = 0u64;
        let mut f0 = mc_factory(0);
        let mut bench = SnmBench::new(sz, 0.9, SnmMode::Read, 31, &mut f0).expect("well-formed");
        results.push(measure("sram_read_snm_sample/session_swap", || {
            seed += 1;
            let mut f = mc_factory(seed);
            bench.resample(sz, &mut f).expect("known instances");
            if let Ok(s) = bench.snm() {
                assert!(s.is_finite());
            }
        }));
    }

    maybe_write_json(&results);
}
