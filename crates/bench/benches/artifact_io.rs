//! Artifact container I/O cost: sealing a shard-sized result, the fully
//! verified decode (per-section + whole-file FNV-1a checks), streaming
//! writes through [`stats::artifact::ArtifactWriter`], and the raw
//! checksum throughput that bounds all of them.
//!
//! The persistence layer runs once per completed shard, so the figure of
//! merit is "cheap next to a shard's Monte Carlo work" — these numbers
//! make the overhead visible instead of assumed.

use stats::artifact::{fnv1a64, seal, Artifact, ArtifactWriter};
use stats::histogram::Histogram;
use stats::sink::{MergeableSink, Sink, WelfordSink};
use stats::TDigest;
use vsbench::microbench::{maybe_write_json, measure};

/// Sketch payloads sized like a real shard result: a Welford state, a
/// 256-bin histogram, and a compression-200 t-digest over 10k samples.
fn shard_sections() -> Vec<Vec<u8>> {
    let mut welford = WelfordSink::new();
    let mut hist = Histogram::new(-4.0, 4.0, 256);
    let mut digest = TDigest::new(200.0);
    let mut x = 0x9e37_79b9_7f4a_7c15_u64;
    for i in 0..10_000 {
        // xorshift64* — deterministic, dependency-free sample stream.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let u = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let v = 8.0 * u - 4.0;
        welford.observe(i, v);
        hist.add(v);
        digest.push(v);
    }
    vec![welford.to_bytes(), hist.to_bytes(), digest.to_bytes()]
}

fn main() {
    let sections = shard_sections();
    let sealed = seal(&sections);
    let payload_bytes: usize = sections.iter().map(Vec::len).sum();

    let mut results = Vec::new();
    results.push(measure("artifact_seal/shard_result", || {
        let bytes = seal(&sections);
        assert!(!bytes.is_empty());
    }));
    results.push(measure("artifact_decode_verified/shard_result", || {
        let artifact = Artifact::from_bytes(&sealed).expect("sealed bytes decode");
        assert_eq!(artifact.sections.len(), sections.len());
    }));
    results.push(measure("artifact_stream_write/shard_result", || {
        let mut writer = ArtifactWriter::new(std::io::sink()).expect("sink writes");
        for section in &sections {
            writer.append(section).expect("sink writes");
        }
        writer.finish().expect("sink writes");
    }));

    let megabyte = vec![0xa5_u8; 1 << 20];
    results.push(measure("fnv1a64_checksum/1MiB", || {
        assert_ne!(fnv1a64(&megabyte), 0);
    }));

    eprintln!(
        "shard payload {payload_bytes} B, sealed container {} B ({} B framing overhead)",
        sealed.len(),
        sealed.len() - payload_bytes
    );
    for m in &results {
        println!(
            "{}: {:.3e} s/iter ({} iters)",
            m.label, m.secs_per_iter, m.iters
        );
    }
    maybe_write_json(&results);
}
