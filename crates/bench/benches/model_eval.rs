//! Compact-model evaluation cost: VS vs the BSIM-like kit.
//!
//! The microscopic root of the paper's Table IV runtime claim — the VS
//! model needs fewer operations per (I, Q) evaluation than a full-featured
//! BSIM4-class model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mosfet::{bsim::BsimModel, vs::VsModel, Bias, Geometry, MosfetModel};

fn bench_models(c: &mut Criterion) {
    let geom = Geometry::from_nm(600.0, 40.0);
    let vs = VsModel::nominal_nmos_40nm(geom);
    let kit = BsimModel::nominal_nmos_40nm(geom);
    let biases: Vec<Bias> = (0..64)
        .map(|i| Bias {
            vgs: (i % 8) as f64 * 0.12,
            vds: (i / 8) as f64 * 0.12,
            vbs: 0.0,
        })
        .collect();

    let mut group = c.benchmark_group("ids_eval");
    group.bench_function("vs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &bias in &biases {
                acc += vs.ids(black_box(bias));
            }
            acc
        })
    });
    group.bench_function("bsim", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &bias in &biases {
                acc += kit.ids(black_box(bias));
            }
            acc
        })
    });
    group.finish();

    let mut group = c.benchmark_group("charge_eval");
    group.bench_function("vs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &bias in &biases {
                acc += vs.charges(black_box(bias)).qg;
            }
            acc
        })
    });
    group.bench_function("bsim", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &bias in &biases {
                acc += kit.charges(black_box(bias)).qg;
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_models
}
criterion_main!(benches);
