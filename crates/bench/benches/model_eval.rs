//! Compact-model evaluation cost: VS vs the BSIM-like kit.
//!
//! The microscopic root of the paper's Table IV runtime claim — the VS
//! model needs fewer operations per (I, Q) evaluation than a full-featured
//! BSIM4-class model.

use mosfet::{bsim::BsimModel, vs::VsModel, Bias, Geometry, MosfetModel};
use vsbench::microbench::{maybe_write_json, measure};

fn main() {
    let geom = Geometry::from_nm(600.0, 40.0);
    let vs = VsModel::nominal_nmos_40nm(geom);
    let kit = BsimModel::nominal_nmos_40nm(geom);
    let biases: Vec<Bias> = (0..64)
        .map(|i| Bias {
            vgs: (i % 8) as f64 * 0.12,
            vds: (i / 8) as f64 * 0.12,
            vbs: 0.0,
        })
        .collect();

    let mut results = Vec::new();
    let mut sink = 0.0_f64;
    results.push(measure("ids_eval_64pts/vs", || {
        for &bias in &biases {
            sink += vs.ids(bias);
        }
    }));
    results.push(measure("ids_eval_64pts/bsim", || {
        for &bias in &biases {
            sink += kit.ids(bias);
        }
    }));
    results.push(measure("charge_eval_64pts/vs", || {
        for &bias in &biases {
            sink += vs.charges(bias).qg;
        }
    }));
    results.push(measure("charge_eval_64pts/bsim", || {
        for &bias in &biases {
            sink += kit.charges(bias).qg;
        }
    }));
    // Keep the accumulator observable so the model calls are not dead code.
    assert!(sink.is_finite());

    maybe_write_json(&results);
}
