//! BPV extraction cost: sensitivity matrices + stacked NNLS solve
//! (paper Eq. (10)), and the NNLS-vs-clamped-LS ablation the design calls
//! out (negative variances must not escape).

use mosfet::{vs::VsParams, Geometry, MismatchSpec, Polarity};
use numerics::{nnls::nnls, qr, Matrix};
use vsbench::microbench::{maybe_write_json, measure};
use vscore::bpv::{predict_variances, solve_bpv, BpvConfig, MeasuredVariance};
use vscore::sensitivity::{VariedModel, VsBuilder};

fn builders() -> Vec<VsBuilder> {
    [120.0, 300.0, 600.0, 1000.0, 1500.0]
        .into_iter()
        .map(|w| VsBuilder {
            params: VsParams::nmos_40nm(),
            polarity: Polarity::Nmos,
            geom: Geometry::from_nm(w, 40.0),
        })
        .collect()
}

fn main() {
    let bs = builders();
    let truth = MismatchSpec::from_paper_units(2.3, 3.71, 3.71, 944.0, 0.29);
    let measured: Vec<MeasuredVariance> = bs
        .iter()
        .map(|b| MeasuredVariance {
            geom: b.geom,
            var: predict_variances(b, &truth, 0.9),
        })
        .collect();
    let cfg = BpvConfig {
        vdd: 0.9,
        a_cinv: truth.a_cinv,
    };

    let mut results = Vec::new();
    results.push(measure("bpv_full_extraction", || {
        let refs: Vec<&dyn VariedModel> = bs.iter().map(|x| x as &dyn VariedModel).collect();
        solve_bpv(&refs, &measured, &cfg).expect("consistent data solves");
    }));

    // Ablation: raw NNLS vs clamped least squares on a representative
    // ill-scaled system.
    let a = Matrix::from_rows(&[
        &[1e-18, 2e-17, 9e-21],
        &[5e-19, 3e-17, 4e-21],
        &[2e-18, 1e-17, 8e-21],
        &[8e-19, 2.5e-17, 6e-21],
    ]);
    let x_true = [4.0, 0.5, 2.0e5];
    let b_vec: Vec<f64> = (0..4)
        .map(|i| (0..3).map(|j| a[(i, j)] * x_true[j]).sum())
        .collect();
    results.push(measure("alpha_squared_solvers/nnls", || {
        nnls(&a, &b_vec).expect("solvable");
    }));
    results.push(measure("alpha_squared_solvers/clamped_lstsq", || {
        let x = qr::lstsq(&a, &b_vec).expect("solvable");
        let _: Vec<f64> = x.into_iter().map(|v| v.max(0.0)).collect();
    }));

    maybe_write_json(&results);
}
