//! Circuit transient cost: FO3 inverter delay runs per model family (the
//! inner loop of the paper's Figs. 5-7 Monte Carlo), comparing per-run
//! netlist rebuilds against one persistent session.

use circuits::cells::{InverterSizing, NominalBsimFactory, NominalVsFactory};
use circuits::delay::{DelayBench, GateKind};
use vsbench::microbench::{maybe_write_json, measure};

fn main() {
    let sz = InverterSizing::from_nm(600.0, 300.0, 40.0);
    let mut results = Vec::new();

    results.push(measure("inv_fo3_delay/vs_rebuild", || {
        let mut f = NominalVsFactory;
        let mut bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
        bench
            .measure_delay(1.5e-12)
            .expect("nominal delay converges");
    }));
    {
        let mut f = NominalVsFactory;
        let mut bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
        results.push(measure("inv_fo3_delay/vs_session", || {
            bench.resample(&mut NominalVsFactory);
            bench
                .measure_delay(1.5e-12)
                .expect("nominal delay converges");
        }));
    }
    results.push(measure("inv_fo3_delay/bsim_rebuild", || {
        let mut f = NominalBsimFactory;
        let mut bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
        bench
            .measure_delay(1.5e-12)
            .expect("nominal delay converges");
    }));
    {
        let mut f = NominalBsimFactory;
        let mut bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
        results.push(measure("inv_fo3_delay/bsim_session", || {
            bench.resample(&mut NominalBsimFactory);
            bench
                .measure_delay(1.5e-12)
                .expect("nominal delay converges");
        }));
    }

    maybe_write_json(&results);
}
