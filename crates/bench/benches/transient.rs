//! Circuit transient cost: one FO3 inverter delay run per model family
//! (the inner loop of the paper's Figs. 5-7 Monte Carlo).

use circuits::cells::{InverterSizing, NominalBsimFactory, NominalVsFactory};
use circuits::delay::{DelayBench, GateKind};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_transient(c: &mut Criterion) {
    let sz = InverterSizing::from_nm(600.0, 300.0, 40.0);
    let mut group = c.benchmark_group("inv_fo3_delay");
    group.bench_function("vs", |b| {
        b.iter(|| {
            let mut f = NominalVsFactory;
            let bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
            bench.measure_delay(1.5e-12).expect("nominal delay converges")
        })
    });
    group.bench_function("bsim", |b| {
        b.iter(|| {
            let mut f = NominalBsimFactory;
            let bench = DelayBench::fo3(GateKind::Inverter, sz, 0.9, &mut f);
            bench.measure_delay(1.5e-12).expect("nominal delay converges")
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_transient
}
criterion_main!(benches);
