//! Fig. 7 — NAND2 FO3 delay PDFs and QQ plots at Vdd = 0.9 / 0.7 / 0.55 V:
//! the statistical VS model must capture the growing non-Gaussianity at low
//! supply voltage even though all its variation parameters are Gaussian.

use super::fig5::delay_samples;
use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::GateKind;
use stats::corners::upper_corner;
use stats::kde::Kde;
use stats::qq::QqPlot;
use stats::Summary;

/// Regenerates the low-Vdd delay distributions.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(2500);
    let sz = InverterSizing::from_nm(300.0, 300.0, 40.0);
    let supplies = [0.9, 0.7, 0.55];
    let mut table = TextTable::new(&[
        "Vdd (V)",
        "model",
        "mean",
        "sigma",
        "skewness",
        "QQ linearity r",
        "3σ corner err (%)",
        "fails",
    ]);
    let mut report =
        format!("Fig. 7 — NAND2 FO3 delay distributions, {n} MC samples per point\n\n");
    let mut vs_skews = Vec::new();
    let mut kit_skews = Vec::new();

    for (vi, &vdd) in supplies.iter().enumerate() {
        for family in ["bsim", "vs"] {
            let (samples, failures) = delay_samples(
                ctx,
                GateKind::Nand2,
                sz,
                vdd,
                n,
                family,
                7000 + vi as u64 * 10,
            );
            let s = Summary::from_slice(&samples);
            let qq = QqPlot::from_sample(&samples);
            let kde = Kde::from_sample(&samples);
            let tag = format!("{}mv_{family}", (vdd * 1000.0) as u32);
            write_csv(
                &ctx.out_dir,
                &format!("fig7_pdf_{tag}.csv"),
                &["delay_s", "density"],
                kde.curve(160).into_iter().map(|(x, y)| vec![x, y]),
            )?;
            write_csv(
                &ctx.out_dir,
                &format!("fig7_qq_{tag}.csv"),
                &["normal_quantile", "delay_quantile_s"],
                qq.points.iter().map(|p| vec![p.theoretical, p.sample]),
            )?;
            let corner = upper_corner(&samples, 3.0);
            table.row(vec![
                format!("{vdd}"),
                family.to_string(),
                eng(s.mean, "s"),
                eng(s.std, "s"),
                format!("{:+.3}", s.skewness),
                format!("{:.5}", qq.linearity_r),
                format!("{:+.1}", 100.0 * corner.corner_error),
                failures.to_string(),
            ]);
            if family == "vs" {
                vs_skews.push(s.skewness);
            } else {
                kit_skews.push(s.skewness);
            }
        }
    }
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nshape: skewness grows as Vdd drops (kit: {kit_skews:.3?}; VS: {vs_skews:.3?}) —\n\
         the QQ plot bends away from linear at 0.7V and strongly at 0.55V, with the VS model\n\
         tracking the kit despite purely Gaussian input parameters (paper Fig. 7d-f).\n\
         CSV: fig7_pdf_<vdd>_<model>.csv, fig7_qq_<vdd>_<model>.csv\n"
    ));
    Ok(report)
}
