//! Fig. 6 — total leakage vs frequency (1/delay) scatter for an INV FO3
//! bench, VS vs kit (5000 Monte Carlo samples).

use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use circuits::leakage::leakage_frequency_of;
use stats::Summary;

/// Regenerates the leakage/frequency scatter.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(5000);
    // The 1x inverter (paper Fig. 5's smallest size): small devices carry
    // the largest per-device σ, which is what produces the paper's ~37x
    // leakage spread. Note the extreme-spread metrics (max/min, max-min)
    // grow with sample count; reduced-scale runs report smaller spreads.
    let sz = InverterSizing::from_nm(300.0, 150.0, 40.0);
    let mut table = TextTable::new(&[
        "model",
        "leakage spread (x)",
        "freq spread (% of mean)",
        "mean freq",
        "fails",
    ]);
    let mut report = format!("Fig. 6 — leakage vs frequency scatter, INV FO3, {n} MC samples\n\n");

    for family in ["bsim", "vs"] {
        // One elaborated bench per worker; samples swap devices in place.
        let out = ctx
            .runner(0xf16_6000)
            .run(
                n,
                |_, setup| {
                    let mut f = ctx.factory(family, setup.clone());
                    Ok::<_, spice::SpiceError>(DelayBench::fo3(
                        GateKind::Inverter,
                        sz,
                        ctx.vdd(),
                        &mut f,
                    ))
                },
                |bench, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    bench.resample(&mut f);
                    leakage_frequency_of(bench).map(|lf| (lf.leakage, lf.frequency))
                },
            )
            .expect("bench elaboration is infallible");
        let failures = out.failures;
        let (leaks, freqs): (Vec<f64>, Vec<f64>) = out.values().copied().unzip();
        write_csv(
            &ctx.out_dir,
            &format!("fig6_scatter_{family}.csv"),
            &["leakage_a", "frequency_hz"],
            leaks.iter().zip(&freqs).map(|(&l, &f)| vec![l, f]),
        )?;
        let leak_spread = leaks.iter().fold(0.0_f64, |m, &v| m.max(v))
            / leaks.iter().fold(f64::INFINITY, |m, &v| m.min(v));
        let fs = Summary::from_slice(&freqs);
        // Paper quotes "impact of within-die variation on frequency" as the
        // full spread relative to the mean.
        let freq_spread_pct = 100.0 * (fs.max - fs.min) / fs.mean;
        table.row(vec![
            family.to_string(),
            format!("{leak_spread:.1}"),
            format!("{freq_spread_pct:.1}"),
            eng(fs.mean, "Hz"),
            failures.to_string(),
        ]);
        report.push_str(&format!(
            "{family}: leakage spread {leak_spread:.1}x (paper: ~37x), frequency spread {freq_spread_pct:.1}% of mean (paper: 45-50%)\n"
        ));
    }
    report.push('\n');
    report.push_str(&table.render());
    report.push_str("\nCSV: fig6_scatter_bsim.csv, fig6_scatter_vs.csv\n");
    Ok(report)
}
