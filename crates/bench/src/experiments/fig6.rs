//! Fig. 6 — total leakage vs frequency (1/delay) scatter for an INV FO3
//! bench, VS vs kit (5000 Monte Carlo samples).
//!
//! This is the repo's canonical streaming experiment: each
//! `(leakage, frequency)` pair flows straight from the Monte Carlo run
//! into an incremental CSV file and two constant-size moment accumulators
//! through [`vscore::mc::ParallelRunner::run_streaming_records`] — no
//! per-sample buffering, so the scatter scales to paper-size (and larger)
//! sample counts in O(workers) memory.

use super::ExpResult;
use crate::report::{eng, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use circuits::leakage::leakage_frequency_of;
use stats::Welford;
use std::fs;
use std::io::BufWriter;
use vscore::mc::{CsvSink, Sink};

/// Streaming moments of the scatter: one [`Welford`] per axis, fed record
/// by record — the spread/mean metrics the report quotes need nothing else.
#[derive(Default)]
struct ScatterMoments {
    leak: Welford,
    freq: Welford,
}

impl Sink<(f64, f64)> for ScatterMoments {
    fn observe(&mut self, _index: usize, (leak, freq): (f64, f64)) {
        self.leak.push(leak);
        self.freq.push(freq);
    }
}

/// Regenerates the leakage/frequency scatter.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(5000);
    // The 1x inverter (paper Fig. 5's smallest size): small devices carry
    // the largest per-device σ, which is what produces the paper's ~37x
    // leakage spread. Note the extreme-spread metrics (max/min, max-min)
    // grow with sample count; reduced-scale runs report smaller spreads.
    let sz = InverterSizing::from_nm(300.0, 150.0, 40.0);
    let mut table = TextTable::new(&[
        "model",
        "leakage spread (x)",
        "freq spread (% of mean)",
        "mean freq",
        "fails",
    ]);
    let mut report = format!("Fig. 6 — leakage vs frequency scatter, INV FO3, {n} MC samples\n\n");

    for family in ["bsim", "vs"] {
        fs::create_dir_all(&ctx.out_dir)?;
        let csv_path = ctx.out_dir.join(format!("fig6_scatter_{family}.csv"));
        let file = BufWriter::new(fs::File::create(&csv_path)?);
        let mut sink = (
            CsvSink::with_header(file, &["sample", "leakage_a", "frequency_hz"]),
            ScatterMoments::default(),
        );
        // One elaborated bench per worker; samples swap devices in place.
        // Records stream to the CSV file and the moment sinks in sample-
        // index order as rounds complete.
        let out = ctx
            .runner(0xf16_6000)
            .run_streaming_records(
                n,
                |_, setup| {
                    let mut f = ctx.factory(family, setup.clone());
                    Ok::<_, spice::SpiceError>(DelayBench::fo3(
                        GateKind::Inverter,
                        sz,
                        ctx.vdd(),
                        &mut f,
                    ))
                },
                |bench, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    bench.resample(&mut f);
                    leakage_frequency_of(bench).map(|lf| (lf.leakage, lf.frequency))
                },
                &mut sink,
            )
            .expect("bench elaboration is infallible");
        let (_, moments) = sink;
        let leak_spread = moments.leak.max() / moments.leak.min();
        // Paper quotes "impact of within-die variation on frequency" as the
        // full spread relative to the mean.
        let freq_spread_pct =
            100.0 * (moments.freq.max() - moments.freq.min()) / moments.freq.mean();
        table.row(vec![
            family.to_string(),
            format!("{leak_spread:.1}"),
            format!("{freq_spread_pct:.1}"),
            eng(moments.freq.mean(), "Hz"),
            out.failures.to_string(),
        ]);
        report.push_str(&format!(
            "{family}: leakage spread {leak_spread:.1}x (paper: ~37x), frequency spread {freq_spread_pct:.1}% of mean (paper: 45-50%)\n"
        ));
    }
    report.push('\n');
    report.push_str(&table.render());
    report.push_str("\nCSV: fig6_scatter_bsim.csv, fig6_scatter_vs.csv (streamed incrementally)\n");
    Ok(report)
}
