//! Fig. 1 — VS model fitting against the golden kit (Id-Vd and Id-Vg).

use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use mosfet::{vs::VsModel, Bias, Geometry, MosfetModel, Polarity};

/// Regenerates the I-V overlay data and reports fit quality.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let kit = &ctx.extraction.kit;
    let geom = Geometry::from_nm(300.0, 40.0); // paper: W = 300 nm
    let mut table = TextTable::new(&[
        "polarity",
        "rms ln error",
        "Idsat kit",
        "Idsat VS",
        "Ioff kit",
        "Ioff VS",
    ]);
    let mut report =
        String::from("Fig. 1 — nominal VS fit to the golden kit (W=300nm, L=40nm)\n\n");

    for (polarity, rep) in [
        (Polarity::Nmos, &ctx.extraction.nmos),
        (Polarity::Pmos, &ctx.extraction.pmos),
    ] {
        let vs = VsModel::new(rep.fit.params, polarity, geom);
        let kit_dev = mosfet::bsim::BsimModel::new(kit.corner(polarity).params, polarity, geom);
        let s = polarity.sign();
        let iv = kit.nominal_iv(polarity, geom);
        let rows: Vec<Vec<f64>> = iv
            .points
            .iter()
            .map(|&(vgs, vds, id_kit)| {
                let id_vs = vs
                    .ids(Bias {
                        vgs: s * vgs,
                        vds: s * vds,
                        vbs: 0.0,
                    })
                    .abs();
                vec![vgs, vds, id_kit, id_vs]
            })
            .collect();
        let name = format!("fig1_iv_{}.csv", polarity.to_string().to_lowercase());
        write_csv(
            &ctx.out_dir,
            &name,
            &["vgs", "vds", "id_kit", "id_vs"],
            rows,
        )?;

        let vdd = ctx.vdd();
        let idsat_kit = kit_dev
            .ids(Bias {
                vgs: s * vdd,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs();
        let idsat_vs = vs
            .ids(Bias {
                vgs: s * vdd,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs();
        let ioff_kit = kit_dev
            .ids(Bias {
                vgs: 0.0,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs();
        let ioff_vs = vs
            .ids(Bias {
                vgs: 0.0,
                vds: s * vdd,
                vbs: 0.0,
            })
            .abs();
        table.row(vec![
            polarity.to_string(),
            format!("{:.4}", rep.fit.rms_log_error),
            eng(idsat_kit, "A"),
            eng(idsat_vs, "A"),
            eng(ioff_kit, "A"),
            eng(ioff_vs, "A"),
        ]);
    }
    report.push_str(&table.render());
    report.push_str("\nCSV: fig1_iv_nmos.csv, fig1_iv_pmos.csv (vgs, vds, id_kit, id_vs)\n");
    Ok(report)
}
