//! Fig. 9 — 6T SRAM butterfly curves and READ/HOLD static noise margins
//! (2500 Monte Carlo samples), including the slightly non-Gaussian HOLD SNM
//! distribution.

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use circuits::sram::{SnmBench, SnmMode, SramSizing};
use stats::kde::Kde;
use stats::qq::QqPlot;
use stats::Summary;

/// Regenerates butterfly curves and SNM distributions.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(2500);
    let sz = SramSizing::default();
    let mut table = TextTable::new(&[
        "mode",
        "model",
        "mean SNM (mV)",
        "sigma (mV)",
        "skewness",
        "QQ r",
        "fails",
    ]);
    let mut report =
        format!("Fig. 9 — 6T SRAM butterfly and SNM, {n} MC samples per mode/model\n\n");

    // Nominal butterfly curves (the characteristic pattern of Fig. 9a/d)
    // plus a handful of Monte Carlo traces from the VS model.
    for (mode, tag) in [(SnmMode::Read, "read"), (SnmMode::Hold, "hold")] {
        let mut f = ctx.vs_factory(ctx.seed ^ 0x5afe);
        // Half-cell sessions elaborate once; each trace swaps fresh devices.
        let mut bench = SnmBench::new(sz, ctx.vdd(), mode, 61, &mut f)?;
        for trace in 0..6 {
            if trace > 0 {
                bench.resample(sz, &mut f)?;
            }
            let (c1, c2) = bench.curves()?;
            write_csv(
                &ctx.out_dir,
                &format!("fig9_butterfly_{tag}_vs_trace{trace}.csv"),
                &["v_l", "v_r_curve1", "v_r_curve2"],
                c1.iter()
                    .zip(&c2)
                    .map(|(&(x1, y1), &(_, y2))| vec![x1, y1, y2]),
            )?;
        }
    }

    for (mode, tag) in [(SnmMode::Read, "read"), (SnmMode::Hold, "hold")] {
        for family in ["bsim", "vs"] {
            let mut samples = Vec::with_capacity(n);
            let mut failures = 0;
            let mut bench: Option<SnmBench> = None;
            for trial in 0..n {
                let seed = ctx.seed.wrapping_add(0x54a8).wrapping_add(trial as u64);
                let mut f = match family {
                    "vs" => ctx.vs_factory(seed),
                    _ => ctx.kit_factory(seed),
                };
                let result = match bench.as_mut() {
                    Some(b) => b.resample(sz, &mut f).and_then(|()| b.snm()),
                    None => match SnmBench::new(sz, ctx.vdd(), mode, 61, &mut f) {
                        Ok(b) => bench.insert(b).snm(),
                        Err(e) => Err(e),
                    },
                };
                match result {
                    Ok(s) => samples.push(s),
                    Err(_) => failures += 1,
                }
            }
            let s = Summary::from_slice(&samples);
            let kde = Kde::from_sample(&samples);
            let qq = QqPlot::from_sample(&samples);
            write_csv(
                &ctx.out_dir,
                &format!("fig9_snm_pdf_{tag}_{family}.csv"),
                &["snm_v", "density"],
                kde.curve(140).into_iter().map(|(x, y)| vec![x, y]),
            )?;
            if tag == "hold" {
                write_csv(
                    &ctx.out_dir,
                    &format!("fig9_qq_hold_{family}.csv"),
                    &["normal_quantile", "snm_quantile_v"],
                    qq.points.iter().map(|p| vec![p.theoretical, p.sample]),
                )?;
            }
            table.row(vec![
                tag.to_uppercase(),
                family.to_string(),
                format!("{:.1}", s.mean * 1e3),
                format!("{:.2}", s.std * 1e3),
                format!("{:+.3}", s.skewness),
                format!("{:.5}", qq.linearity_r),
                failures.to_string(),
            ]);
        }
    }
    report.push_str(&table.render());
    report.push_str(
        "\nshape: READ SNM well below HOLD SNM; VS matches the kit on both; the HOLD\n\
         SNM QQ plot shows the slight non-Gaussianity of paper Fig. 9(f).\n\
         CSV: fig9_butterfly_*.csv, fig9_snm_pdf_*.csv, fig9_qq_hold_*.csv\n",
    );
    Ok(report)
}
