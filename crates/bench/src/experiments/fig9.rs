//! Fig. 9 — 6T SRAM butterfly curves and READ/HOLD static noise margins
//! (2500 Monte Carlo samples), including the slightly non-Gaussian HOLD SNM
//! distribution. The SNM loops run through the streaming pipeline: a
//! t-digest sketch reports the 5th-percentile yield margin in O(δ) memory —
//! and, being mergeable, lets independent shards of a scaled-up run
//! combine their tail estimates (see `examples/fleet_merge.rs`) — fanned
//! out next to the explicit sample buffer the KDE/QQ curves need.

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use circuits::sram::{SnmBench, SnmMode, SramSizing};
use stats::kde::Kde;
use stats::qq::QqPlot;
use stats::Summary;
use vscore::mc::{TDigest, VecSink};

/// Regenerates butterfly curves and SNM distributions.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(2500);
    let sz = SramSizing::default();
    let mut table = TextTable::new(&[
        "mode",
        "model",
        "mean SNM (mV)",
        "sigma (mV)",
        "p5 SNM (mV)",
        "skewness",
        "QQ r",
        "fails",
    ]);
    let mut report =
        format!("Fig. 9 — 6T SRAM butterfly and SNM, {n} MC samples per mode/model\n\n");

    // Nominal butterfly curves (the characteristic pattern of Fig. 9a/d)
    // plus a handful of Monte Carlo traces from the VS model.
    for (mode, tag) in [(SnmMode::Read, "read"), (SnmMode::Hold, "hold")] {
        let mut f = ctx.vs_factory(ctx.seed ^ 0x5afe);
        // Half-cell sessions elaborate once; each trace swaps fresh devices.
        let mut bench = SnmBench::new(sz, ctx.vdd(), mode, 61, &mut f)?;
        for trace in 0..6 {
            if trace > 0 {
                bench.resample(sz, &mut f)?;
            }
            let (c1, c2) = bench.curves()?;
            write_csv(
                &ctx.out_dir,
                &format!("fig9_butterfly_{tag}_vs_trace{trace}.csv"),
                &["v_l", "v_r_curve1", "v_r_curve2"],
                c1.iter()
                    .zip(&c2)
                    .map(|(&(x1, y1), &(_, y2))| vec![x1, y1, y2]),
            )?;
        }
    }

    for (mode, tag) in [(SnmMode::Read, "read"), (SnmMode::Hold, "hold")] {
        for family in ["bsim", "vs"] {
            // Both half-cell sessions elaborate once per worker; every
            // sample swaps six freshly drawn devices in place and
            // re-sweeps with warm starts. A non-convergent construction
            // draw retries with a fresh one (as the sequential loop did by
            // rolling to the next trial) — the initial devices are
            // overwritten by the first sample anyway.
            //
            // SNM records stream into a t-digest for the 5th-percentile
            // yield figure (O(δ) memory at any sample count, and mergeable
            // with other runs' digests) next to an explicit VecSink — the
            // KDE curve, QQ plot, and skewness are genuinely whole-sample
            // statistics.
            let mut sink = (VecSink::new(), TDigest::new(100.0));
            let out = ctx.runner(0x54a8).run_streaming(
                n,
                |_, setup| {
                    let mut last_err = None;
                    for attempt in 0..8 {
                        let mut f = ctx.factory(family, setup.fork(attempt));
                        match SnmBench::new(sz, ctx.vdd(), mode, 61, &mut f) {
                            Ok(b) => return Ok(b),
                            Err(e) => last_err = Some(e),
                        }
                    }
                    Err(last_err.expect("eight attempts made"))
                },
                |bench, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    bench.resample(sz, &mut f)?;
                    bench.snm()
                },
                &mut sink,
            )?;
            let failures = out.failures;
            let (values, sketch) = sink;
            let p5 = sketch.quantile(0.05).unwrap_or(f64::NAN);
            let samples = values.into_values();
            let s = Summary::from_slice(&samples);
            let kde = Kde::from_sample(&samples);
            let qq = QqPlot::from_sample(&samples);
            write_csv(
                &ctx.out_dir,
                &format!("fig9_snm_pdf_{tag}_{family}.csv"),
                &["snm_v", "density"],
                kde.curve(140).into_iter().map(|(x, y)| vec![x, y]),
            )?;
            if tag == "hold" {
                write_csv(
                    &ctx.out_dir,
                    &format!("fig9_qq_hold_{family}.csv"),
                    &["normal_quantile", "snm_quantile_v"],
                    qq.points.iter().map(|p| vec![p.theoretical, p.sample]),
                )?;
            }
            table.row(vec![
                tag.to_uppercase(),
                family.to_string(),
                format!("{:.1}", s.mean * 1e3),
                format!("{:.2}", s.std * 1e3),
                format!("{:.1}", p5 * 1e3),
                format!("{:+.3}", s.skewness),
                format!("{:.5}", qq.linearity_r),
                failures.to_string(),
            ]);
        }
    }
    report.push_str(&table.render());
    report.push_str(
        "\nshape: READ SNM well below HOLD SNM; VS matches the kit on both; the HOLD\n\
         SNM QQ plot shows the slight non-Gaussianity of paper Fig. 9(f).\n\
         CSV: fig9_butterfly_*.csv, fig9_snm_pdf_*.csv, fig9_qq_hold_*.csv\n",
    );
    Ok(report)
}
