//! Extension experiment — Vdd-range validity of the statistical model.
//!
//! The paper stresses that BPV extraction is performed *only at the nominal
//! Vdd*, yet "the resulting statistical model is valid over a whole range
//! of Vdd's, thus enabling the efficient analysis of power-delay tradeoffs"
//! (Section I). This experiment quantifies that claim: device-metric σ from
//! the statistical VS model (extracted at 0.9 V) is compared against the
//! golden kit at supplies the extraction never saw.

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use mosfet::{Bias, Geometry, MosfetModel, Polarity};
use stats::{Sampler, Summary};

/// Idsat and log10(Ioff) at an arbitrary supply.
fn metrics_at(model: &dyn MosfetModel, vdd: f64) -> (f64, f64) {
    let s = model.polarity().sign();
    let idsat = model
        .ids(Bias {
            vgs: s * vdd,
            vds: s * vdd,
            vbs: 0.0,
        })
        .abs();
    let ioff = model
        .ids(Bias {
            vgs: 0.0,
            vds: s * vdd,
            vbs: 0.0,
        })
        .abs()
        .max(1e-30);
    (idsat, ioff.log10())
}

/// Runs the Vdd-scaling validation.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(1500);
    let geom = Geometry::from_nm(600.0, 40.0);
    let rep = &ctx.extraction.nmos;
    let mut table = TextTable::new(&[
        "Vdd (V)",
        "σ(Idsat) kit (uA)",
        "σ(Idsat) VS (uA)",
        "ratio",
        "σ(logIoff) kit",
        "σ(logIoff) VS",
        "ratio",
    ]);
    let mut rows = Vec::new();
    let mut worst = 1.0_f64;

    for vdd in [0.9, 0.8, 0.7, 0.6, 0.55] {
        let mut sampler = Sampler::from_seed(ctx.seed ^ 0xdd5ca1e);
        let mut collect = |family: &str| -> (Vec<f64>, Vec<f64>) {
            let mut idsat = Vec::with_capacity(n);
            let mut ioff = Vec::with_capacity(n);
            for _ in 0..n {
                let model: Box<dyn MosfetModel> = match family {
                    "vs" => {
                        let delta = rep.extracted.sample(geom, || sampler.standard_normal());
                        Box::new(mosfet::vs::VsModel::with_variation(
                            rep.fit.params,
                            Polarity::Nmos,
                            geom,
                            delta,
                        ))
                    }
                    _ => {
                        let delta = rep.truth.sample(geom, || sampler.standard_normal());
                        Box::new(mosfet::bsim::BsimModel::with_variation(
                            ctx.extraction.kit.nmos.params,
                            Polarity::Nmos,
                            geom,
                            delta,
                        ))
                    }
                };
                let (i_on, l_off) = metrics_at(model.as_ref(), vdd);
                idsat.push(i_on);
                ioff.push(l_off);
            }
            (idsat, ioff)
        };
        let (kit_on, kit_off) = collect("bsim");
        let (vs_on, vs_off) = collect("vs");
        let s_kit_on = Summary::from_slice(&kit_on).std;
        let s_vs_on = Summary::from_slice(&vs_on).std;
        let s_kit_off = Summary::from_slice(&kit_off).std;
        let s_vs_off = Summary::from_slice(&vs_off).std;
        let r_on = s_vs_on / s_kit_on;
        let r_off = s_vs_off / s_kit_off;
        worst = worst.max(r_on.max(1.0 / r_on)).max(r_off.max(1.0 / r_off));
        rows.push(vec![
            vdd,
            s_kit_on * 1e6,
            s_vs_on * 1e6,
            r_on,
            s_kit_off,
            s_vs_off,
            r_off,
        ]);
        table.row(vec![
            format!("{vdd}"),
            format!("{:.2}", s_kit_on * 1e6),
            format!("{:.2}", s_vs_on * 1e6),
            format!("{r_on:.3}"),
            format!("{s_kit_off:.3}"),
            format!("{s_vs_off:.3}"),
            format!("{r_off:.3}"),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "vddscale_sigma_validity.csv",
        &[
            "vdd_v",
            "sigma_idsat_kit_ua",
            "sigma_idsat_vs_ua",
            "ratio_on",
            "sigma_logioff_kit",
            "sigma_logioff_vs",
            "ratio_off",
        ],
        rows,
    )?;
    let mut report = format!(
        "Extension — Vdd-range validity of the statistical VS model (NMOS 600/40, {n} samples per point)\n\
         The mismatch coefficients were extracted at Vdd = 0.9 V only.\n\n"
    );
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nworst σ ratio across supplies: {worst:.3}. σ(log10 Ioff) stays within ~10% over\n\
         the full range; σ(Idsat) drifts low as Vdd approaches threshold (the VS\n\
         moderate-inversion VT sensitivity is softer than the kit's — the same effect\n\
         that narrows the 0.55 V delay σ in Fig. 7). The paper's Section I claim holds\n\
         with that caveat quantified.\n\
         CSV: vddscale_sigma_validity.csv\n"
    ));
    Ok(report)
}
