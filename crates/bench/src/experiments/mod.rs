//! One module per paper artifact.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod highsigma;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod vddscale;

/// Result type shared by experiment runners: a rendered text report.
pub type ExpResult = Result<String, Box<dyn std::error::Error + Send + Sync>>;

/// All experiment names: the paper's artifacts in order, then extensions.
pub const ALL: [&str; 14] = [
    "fig1",
    "fig2",
    "table2",
    "fig3",
    "table3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table4",
    "vddscale",
    "highsigma",
];

/// Dispatches an experiment by name.
///
/// # Errors
///
/// Returns an error for unknown names or failing experiments.
pub fn run(name: &str, ctx: &crate::ExperimentContext) -> ExpResult {
    match name {
        "fig1" => fig1::run(ctx),
        "fig2" => fig2::run(ctx),
        "fig3" => fig3::run(ctx),
        "fig4" => fig4::run(ctx),
        "fig5" => fig5::run(ctx),
        "fig6" => fig6::run(ctx),
        "fig7" => fig7::run(ctx),
        "fig8" => fig8::run(ctx),
        "fig9" => fig9::run(ctx),
        "highsigma" => highsigma::run(ctx),
        "table2" => table2::run(ctx),
        "table3" => table3::run(ctx),
        "table4" => table4::run(ctx),
        "vddscale" => vddscale::run(ctx),
        other => Err(format!("unknown experiment '{other}' (expected one of {ALL:?})").into()),
    }
}
