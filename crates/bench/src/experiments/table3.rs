//! Table III — standard deviation of device metrics: statistical VS model
//! vs the golden kit, for wide/medium/short devices.

use super::ExpResult;
use crate::report::TextTable;
use crate::ExperimentContext;
use mosfet::{Geometry, Polarity};
use stats::Sampler;
use vscore::mc::device_metric_samples;
use vscore::sensitivity::{BsimBuilder, VsBuilder};

/// Regenerates the σ(Idsat) / σ(log10 Ioff) comparison.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(1500);
    let sizes = [
        ("Wide", Geometry::from_nm(1500.0, 40.0)),
        ("Medium", Geometry::from_nm(600.0, 40.0)),
        ("Short", Geometry::from_nm(120.0, 40.0)),
    ];
    let mut table = TextTable::new(&[
        "device",
        "metric",
        "NMOS kit σ",
        "NMOS VS σ",
        "PMOS kit σ",
        "PMOS VS σ",
        "unit",
    ]);
    let mut sampler = Sampler::from_seed(ctx.seed ^ 0x7ab1e3);
    let mut max_rel_err = 0.0_f64;

    for (label, geom) in sizes {
        // Per polarity: kit MC (truth) and VS MC (extracted).
        let mut sig = [[0.0_f64; 2]; 4]; // [nmos_kit, nmos_vs, pmos_kit, pmos_vs][idsat, ioff]
        for (pi, polarity) in [Polarity::Nmos, Polarity::Pmos].into_iter().enumerate() {
            let rep = match polarity {
                Polarity::Nmos => &ctx.extraction.nmos,
                Polarity::Pmos => &ctx.extraction.pmos,
            };
            let kit_builder = BsimBuilder {
                params: ctx.extraction.kit.corner(polarity).params,
                polarity,
                geom,
            };
            let vs_builder = VsBuilder {
                params: rep.fit.params,
                polarity,
                geom,
            };
            let kit_samples =
                device_metric_samples(&kit_builder, &rep.truth, ctx.vdd(), n, &mut sampler);
            let vs_samples =
                device_metric_samples(&vs_builder, &rep.extracted, ctx.vdd(), n, &mut sampler);
            let v_kit = vscore::mc::variances(&kit_samples);
            let v_vs = vscore::mc::variances(&vs_samples);
            for m in 0..2 {
                sig[2 * pi][m] = v_kit[m].sqrt();
                sig[2 * pi + 1][m] = v_vs[m].sqrt();
                let rel = (v_vs[m].sqrt() / v_kit[m].sqrt() - 1.0).abs();
                max_rel_err = max_rel_err.max(rel);
            }
        }
        table.row(vec![
            format!("{label} ({:.0}/{:.0})", geom.w_nm(), geom.l_nm()),
            "Idsat".into(),
            format!("{:.2}", sig[0][0] * 1e6),
            format!("{:.2}", sig[1][0] * 1e6),
            format!("{:.2}", sig[2][0] * 1e6),
            format!("{:.2}", sig[3][0] * 1e6),
            "uA".into(),
        ]);
        table.row(vec![
            String::new(),
            "log10Ioff".into(),
            format!("{:.3}", sig[0][1]),
            format!("{:.3}", sig[1][1]),
            format!("{:.3}", sig[2][1]),
            format!("{:.3}", sig[3][1]),
            String::new(),
        ]);
    }
    let mut report = format!(
        "Table III — Monte Carlo σ comparison, statistical VS vs golden kit ({n} samples each)\n\n"
    );
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nworst-case σ disagreement: {:.1}% (paper shows ~1-4% agreement)\n",
        100.0 * max_rel_err
    ));
    Ok(report)
}
