//! Table II — extracted standard-deviation coefficients α1..α5.

use super::ExpResult;
use crate::report::TextTable;
use crate::ExperimentContext;

/// Renders the extracted (and truth) Pelgrom coefficients.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let mut table = TextTable::new(&[
        "coefficient",
        "NMOS extracted",
        "NMOS truth",
        "PMOS extracted",
        "PMOS truth",
        "unit",
    ]);
    let labels = [
        ("alpha1", "V.nm"),
        ("alpha2", "nm"),
        ("alpha3", "nm"),
        ("alpha4", "nm.cm2/V.s"),
        ("alpha5", "nm.uF/cm2"),
    ];
    let ne = ctx.extraction.nmos.extracted.to_paper_units();
    let nt = ctx.extraction.nmos.truth.to_paper_units();
    let pe = ctx.extraction.pmos.extracted.to_paper_units();
    let pt = ctx.extraction.pmos.truth.to_paper_units();
    for (i, (name, unit)) in labels.iter().enumerate() {
        table.row(vec![
            name.to_string(),
            format!("{:.3}", ne[i]),
            format!("{:.3}", nt[i]),
            format!("{:.3}", pe[i]),
            format!("{:.3}", pt[i]),
            unit.to_string(),
        ]);
    }
    let mut report = String::from(
        "Table II — extracted standard-deviation coefficients (BPV) vs foundry truth\n\
         (the truth column is the oracle of the synthetic kit; the paper's kit keeps it hidden.\n\
          alpha5 is measured directly, not extracted — per the paper's oxide measurement.)\n\n",
    );
    report.push_str(&table.render());
    report.push_str(&format!(
        "\npaper Table II for reference (real 40-nm kit): NMOS 2.3/3.71/3.71/944/0.29, PMOS 2.86/3.66/3.66/781/0.81\n\
         joint BPV weighted residual: NMOS {:.3}, PMOS {:.3}\n",
        ctx.extraction.nmos.bpv.residual, ctx.extraction.pmos.bpv.residual
    ));
    Ok(report)
}
