//! Fig. 5 — INV FO3 delay probability densities for three sizes, VS vs kit
//! (2500 Monte Carlo runs each, Vdd = 0.9 V).

use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use stats::kde::Kde;
use stats::Summary;

/// Collects Monte Carlo delay samples for one gate/size/model combination.
///
/// The testbench is elaborated into one persistent session; every trial
/// swaps freshly drawn devices in place ([`DelayBench::resample`]) and
/// re-runs warm-started — no per-sample netlist rebuild.
///
/// Functional failures (missing output edges under extreme mismatch) are
/// skipped, matching standard Monte Carlo practice; the skip count is
/// returned so reports can surface it.
pub fn delay_samples(
    ctx: &ExperimentContext,
    kind: GateKind,
    sz: InverterSizing,
    vdd: f64,
    n: usize,
    family: &str,
    seed_salt: u64,
) -> (Vec<f64>, usize) {
    let mut out = Vec::with_capacity(n);
    let mut failures = 0;
    let mut bench: Option<DelayBench> = None;
    for trial in 0..n {
        let seed = ctx
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed_salt)
            .wrapping_add(trial as u64);
        let mut f = match family {
            "vs" => ctx.vs_factory(seed),
            _ => ctx.kit_factory(seed),
        };
        // First trial builds (and draws through the factory); later trials
        // swap devices into the same elaboration.
        let b = match bench.as_mut() {
            Some(b) => {
                b.resample(&mut f);
                b
            }
            None => bench.insert(DelayBench::fo3(kind, sz, vdd, &mut f)),
        };
        let dt = b.default_dt();
        match b.measure_delay(dt) {
            Ok(d) => out.push(d),
            Err(_) => failures += 1,
        }
    }
    (out, failures)
}

/// Regenerates the delay PDFs of Fig. 5.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(2500);
    let sizes = InverterSizing::paper_fig5_sizes();
    let size_labels = ["300/150", "600/300", "1200/600"];
    let mut table = TextTable::new(&[
        "P/N size (nm)",
        "model",
        "mean delay",
        "sigma",
        "sigma/mean (%)",
        "fails",
    ]);
    let mut report =
        format!("Fig. 5 — INV FO3 delay PDFs, {n} MC samples per size/model, Vdd=0.9V\n\n");
    let mut worst_sigma_ratio = 1.0_f64;

    for (si, (&sz, label)) in sizes.iter().zip(size_labels).enumerate() {
        let mut sigmas = [0.0; 2];
        for (mi, family) in ["bsim", "vs"].into_iter().enumerate() {
            let (samples, failures) = delay_samples(
                ctx,
                GateKind::Inverter,
                sz,
                ctx.vdd(),
                n,
                family,
                si as u64 * 100,
            );
            let s = Summary::from_slice(&samples);
            sigmas[mi] = s.std;
            // KDE curve for the PDF plot.
            let kde = Kde::from_sample(&samples);
            write_csv(
                &ctx.out_dir,
                &format!("fig5_pdf_{}_{}.csv", label.replace('/', "x"), family),
                &["delay_s", "density"],
                kde.curve(160).into_iter().map(|(x, y)| vec![x, y]),
            )?;
            table.row(vec![
                label.to_string(),
                family.to_string(),
                eng(s.mean, "s"),
                eng(s.std, "s"),
                format!("{:.2}", 100.0 * s.std / s.mean),
                failures.to_string(),
            ]);
        }
        let ratio = (sigmas[1] / sigmas[0]).max(sigmas[0] / sigmas[1]);
        worst_sigma_ratio = worst_sigma_ratio.max(ratio);
    }
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nshape: VS and kit PDFs overlay; worst σ(delay) ratio across sizes = {worst_sigma_ratio:.3}\nCSV: fig5_pdf_<size>_<model>.csv\n"
    ));
    Ok(report)
}
