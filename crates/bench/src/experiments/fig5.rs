//! Fig. 5 — INV FO3 delay probability densities for three sizes, VS vs kit
//! (2500 Monte Carlo runs each, Vdd = 0.9 V).

use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use stats::kde::Kde;
use stats::Summary;

/// Collects Monte Carlo delay samples for one gate/size/model combination.
///
/// The samples shard across a [`vscore::mc::ParallelRunner`]: every worker
/// elaborates its own persistent bench once, then each sample swaps freshly
/// drawn devices in place ([`DelayBench::resample`]) with a sampler stream
/// derived purely from `(seed, sample index)` and re-runs warm-started — no
/// per-sample netlist rebuild, and the drawn devices are identical for any
/// worker count.
///
/// Functional failures (missing output edges under extreme mismatch) are
/// skipped, matching standard Monte Carlo practice; the skip count is
/// returned so reports can surface it.
pub fn delay_samples(
    ctx: &ExperimentContext,
    kind: GateKind,
    sz: InverterSizing,
    vdd: f64,
    n: usize,
    family: &str,
    seed_salt: u64,
) -> (Vec<f64>, usize) {
    let out = ctx
        .runner(seed_salt)
        .run_scalar(
            n,
            |_, setup| {
                let mut f = ctx.factory(family, setup.clone());
                Ok::<_, spice::SpiceError>(DelayBench::fo3(kind, sz, vdd, &mut f))
            },
            |bench, sampler, _| {
                let mut f = ctx.factory(family, sampler.clone());
                bench.resample(&mut f);
                let dt = bench.default_dt();
                bench.measure_delay(dt)
            },
        )
        .expect("bench elaboration is infallible for well-formed sizings");
    let failures = out.failures;
    (out.into_values(), failures)
}

/// Regenerates the delay PDFs of Fig. 5.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(2500);
    let sizes = InverterSizing::paper_fig5_sizes();
    let size_labels = ["300/150", "600/300", "1200/600"];
    let mut table = TextTable::new(&[
        "P/N size (nm)",
        "model",
        "mean delay",
        "sigma",
        "sigma/mean (%)",
        "fails",
    ]);
    let mut report =
        format!("Fig. 5 — INV FO3 delay PDFs, {n} MC samples per size/model, Vdd=0.9V\n\n");
    let mut worst_sigma_ratio = 1.0_f64;

    for (si, (&sz, label)) in sizes.iter().zip(size_labels).enumerate() {
        let mut sigmas = [0.0; 2];
        for (mi, family) in ["bsim", "vs"].into_iter().enumerate() {
            let (samples, failures) = delay_samples(
                ctx,
                GateKind::Inverter,
                sz,
                ctx.vdd(),
                n,
                family,
                si as u64 * 100,
            );
            let s = Summary::from_slice(&samples);
            sigmas[mi] = s.std;
            // KDE curve for the PDF plot.
            let kde = Kde::from_sample(&samples);
            write_csv(
                &ctx.out_dir,
                &format!("fig5_pdf_{}_{}.csv", label.replace('/', "x"), family),
                &["delay_s", "density"],
                kde.curve(160).into_iter().map(|(x, y)| vec![x, y]),
            )?;
            table.row(vec![
                label.to_string(),
                family.to_string(),
                eng(s.mean, "s"),
                eng(s.std, "s"),
                format!("{:.2}", 100.0 * s.std / s.mean),
                failures.to_string(),
            ]);
        }
        let ratio = (sigmas[1] / sigmas[0]).max(sigmas[0] / sigmas[1]);
        worst_sigma_ratio = worst_sigma_ratio.max(ratio);
    }
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nshape: VS and kit PDFs overlay; worst σ(delay) ratio across sizes = {worst_sigma_ratio:.3}\nCSV: fig5_pdf_<size>_<model>.csv\n"
    ));
    Ok(report)
}
