//! `highsigma` — 6T SRAM READ-SNM failure probability at the 5σ design
//! point via two-phase importance sampling.
//!
//! Production sign-off asks for failure probabilities near 1e-7 (5σ),
//! where the fig9 Monte Carlo sees nothing: at 5×10⁴ samples the expected
//! hit count below a 5σ threshold is ~0.01, so the plain estimator is
//! exactly zero almost surely. This experiment rides the rare-event
//! engine instead:
//!
//! 1. **Explore.** A plain Monte Carlo pass over pinned mismatch draws
//!    (`McFactory::set_pinned` replays explicit standardized vectors)
//!    estimates the SNM mean and sigma of the cell — the body statistics
//!    that anchor the report and the histogram ranges.
//! 2. **Fit the shift.** The SNM is `min(eye1, eye2)` of the two
//!    butterfly eyes. At the symmetric nominal point the two eyes tie,
//!    so the gradient of their min mixes both eyes' sensitivities and
//!    aims at the useless common mode; *eye 1 alone* is smooth with a
//!    clean antisymmetric gradient (one half-cell weak, the other
//!    strong). The worst-case direction is therefore the steepest
//!    descent of eye 1, probed by central differences and refined by a
//!    damped fixed-radius iteration (the worst-case-distance search of
//!    high-sigma yield analysis). The **5σ design point** is the
//!    radius-5 point of the standardized mismatch space along that
//!    direction, and the failure threshold is the eye margin *at* the
//!    design point — failure demands a ≥ 5σ input-space excursion, and
//!    the proposal mean sits exactly on the failure boundary, so about
//!    half the weighted samples hit the tail.
//! 3. **Importance-sample.** `ParallelRunner::run_streaming_is` draws
//!    every mismatch dimension from the mean-shifted proposal (via
//!    `McFactory::set_proposal_shifts`), streaming `(eye1, log w)`
//!    records into a `WeightedMoments` tail estimator and a
//!    `WeightedHistogram` of the reweighted *nominal* eye-margin
//!    distribution.
//!
//! The single-eye tail converts to the SNM tail by symmetry: the cell's
//! left/right halves draw from identical device specs, so the two eye
//! margins are exchangeable and `P(SNM < t) = 2·P(eye1 < t) − P(both)`.
//! The both-eyes term needs two simultaneous ~5σ degradations pulling in
//! opposite mismatch directions and is negligible at this depth, so the
//! report quotes `p ≈ 2·p₁` (an upper bound, tight to `O(P(both))`).
//!
//! The report carries the failure-probability estimate with its 95% CI,
//! the Kish ESS diagnostic, and the measured variance-reduction factor
//! against the plain-MC binomial bound `p(1−p)/n` on the same budget.
//! Two calibration readouts fall out for free: the design-point margin
//! against the Gaussian extrapolation `μ − 5σ` (how Gaussian the SNM
//! left tail is along the dominant failure mode), and `p₁` against the
//! analytic halfspace mass `Φ̄(5)` (how curved the failure boundary is).

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use circuits::sram::{SnmBench, SnmMode, SramSizing};
use stats::Welford;
use std::sync::Arc;
use vscore::mc::{WeightedHistogram, WeightedMoments};

/// Butterfly sweep resolution — shared by every phase so exploratory
/// statistics, probe evaluations, and IS samples measure the same metric.
const SWEEP_POINTS: usize = 41;

/// Runs the 5σ SNM yield experiment.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let sz = SramSizing::default();
    let mode = SnmMode::Read;
    let n_explore = ctx.samples(2000);
    let n_is = ctx.samples(50_000);
    let mut report = format!(
        "highsigma — 6T SRAM READ SNM failure probability at the 5-sigma threshold\n\
         two-phase importance sampling: {n_explore} exploratory + {n_is} weighted samples\n\n"
    );

    // ---- Phase 1: exploratory plain MC over pinned draws --------------
    // A probe bench on the calling thread evaluates chosen points of the
    // standardized mismatch space; feeding it freshly drawn vectors *is*
    // plain Monte Carlo, while recording the vectors for the shift fit.
    let mut probe_f = ctx.vs_factory(ctx.seed ^ 0x9c0be5);
    let mut probe = SnmBench::new(sz, ctx.vdd(), mode, SWEEP_POINTS, &mut probe_f)?;
    // Dimensionality of one resample, discovered by counting draws.
    probe_f.clear_draw_mode();
    probe.resample(sz, &mut probe_f)?;
    let dims = probe_f.draws_taken();
    let mut eval_margins = |pt: &[f64]| -> Result<(f64, f64), spice::SpiceError> {
        probe_f.set_pinned(Arc::from(pt));
        probe.resample(sz, &mut probe_f)?;
        probe.eye_margins()
    };

    let mut draw_stream = stats::Sampler::from_seed(ctx.seed ^ 0xe589);
    let mut snm_stats = Welford::new();
    let mut explore_failures = 0usize;
    for _ in 0..n_explore {
        let v: Vec<f64> = (0..dims).map(|_| draw_stream.standard_normal()).collect();
        match eval_margins(&v) {
            Ok((e1, e2)) => snm_stats.push(e1.min(e2)),
            Err(_) => explore_failures += 1,
        }
    }
    let (mu, sigma) = (snm_stats.mean(), snm_stats.std());
    if !(sigma > 0.0) {
        return Err("exploratory pass produced zero SNM variance".into());
    }
    // Gaussian extrapolation of the 5-sigma margin level, reported for
    // contrast only: the measured tail is far lighter than Gaussian, so
    // the actual 5-sigma design-point margin sits well above this.
    let gauss_5s = mu - 5.0 * sigma;

    // ---- Phase 2: fit the proposal shift ------------------------------
    // Worst-case direction of *eye 1* (smooth, unlike min-of-eyes) by
    // central-difference gradient probes. The SNM itself is useless for
    // this: at the symmetric nominal point the two eyes tie, so the
    // gradient of their min mixes both eyes' sensitivities and aims at
    // the common mode. Eye 1 alone has a clean antisymmetric gradient.
    let normalize = |v: &mut [f64]| -> f64 {
        let n = v.iter().map(|d| d * d).sum::<f64>().sqrt();
        if n > 0.0 {
            for d in v.iter_mut() {
                *d /= n;
            }
        }
        n
    };
    // Steepest-descent direction at the origin, then damped fixed-radius
    // refinement: re-probe the gradient at the current design point and
    // blend it in, tracking the direction with the lowest margin (the
    // worst-case-distance iteration of high-sigma yield analysis — the
    // response is sublinear, so the origin gradient alone overestimates
    // which mode stays worst at radius 5).
    let mut direction = eye_gradient(&mut eval_margins, &vec![0.0; dims])?;
    for d in &mut direction {
        *d = -*d;
    }
    if !(normalize(&mut direction) > 0.0) {
        return Err("eye-margin gradient vanished at nominal; cannot aim the proposal".into());
    }
    // The 5-sigma design point: the radius-5 point of the standardized
    // mismatch space along the fitted worst-case direction. The failure
    // threshold is the eye margin *at* that point, so a failing cell
    // requires a >= 5-sigma input-space excursion — the standard
    // high-sigma formulation. It is self-calibrating: the proposal mean
    // sits exactly on the failure boundary (about half the weighted
    // samples hit the tail), with no ray search whose failure to bracket
    // would leave the proposal aimed short of — or absurdly beyond — the
    // threshold.
    let beta_star = 5.0;
    let scale_dir = |u: &[f64], beta: f64| -> Vec<f64> { u.iter().map(|d| beta * d).collect() };
    let mut best_margin = eval_margins(&scale_dir(&direction, beta_star))?.0;
    for _ in 0..3 {
        let mut g = eye_gradient(&mut eval_margins, &scale_dir(&direction, beta_star))?;
        let gn = normalize(&mut g);
        if !(gn > 0.0) {
            break;
        }
        let mut blended: Vec<f64> = direction.iter().zip(&g).map(|(u, gi)| u - gi).collect();
        if !(normalize(&mut blended) > 0.0) {
            break;
        }
        let margin = eval_margins(&scale_dir(&blended, beta_star))?.0;
        if margin < best_margin {
            best_margin = margin;
            direction = blended;
        } else {
            break;
        }
    }
    let design_point = scale_dir(&direction, beta_star);
    let threshold = best_margin;
    if !(threshold > 0.0 && threshold < mu) {
        return Err(format!(
            "margin at the 5-sigma design point ({threshold:.4} V) is outside \
             (0, mean = {mu:.4} V); the fitted direction does not degrade the eye"
        )
        .into());
    }
    let shifts: Arc<[f64]> = design_point.into();

    // ---- Phase 3: weighted tail estimation ----------------------------
    let hist_lo = (threshold - 3.0 * sigma).max(0.0);
    let hist_hi = mu + 4.0 * sigma;
    let mut sinks = (
        WeightedMoments::below(threshold),
        WeightedHistogram::new(hist_lo, hist_hi, 44),
    );
    let is_out = ctx.runner(0x15b0).run_streaming_is(
        0,
        n_is,
        |_, setup| build_bench(ctx, sz, mode, setup),
        |bench, sampler, _| {
            let mut f = ctx.factory("vs", sampler.clone());
            f.set_proposal_shifts(shifts.clone());
            bench.resample(sz, &mut f)?;
            let eye1 = bench.eye_margins()?.0;
            Ok((eye1, f.take_log_weight()))
        },
        &mut sinks,
    )?;
    let (moments, hist) = sinks;

    // Symmetrize the single-eye tail into the SNM tail (module docs):
    // p = 2·p1 − P(both) ≈ 2·p1, so the estimate, its standard error, and
    // the CI all scale by 2, and the estimator variance by 4.
    let p1 = moments.estimate();
    let p = 2.0 * p1;
    let se = 2.0 * moments.std_error();
    let half95 = 2.0 * moments.ci_half_width(1.96);
    let ci_excludes_zero = p - half95 > 0.0;
    // Plain MC on the same budget: binomial per-sample variance p(1-p).
    let plain_var = p * (1.0 - p);
    let vrf = plain_var / (4.0 * moments.variance());
    let expected_plain_hits = p * n_is as f64;
    let gaussian_p = stats::gaussian::tail(5.0);

    write_csv(
        &ctx.out_dir,
        "highsigma_weighted_hist.csv",
        &[
            "eye_margin_v",
            "proposal_count",
            "nominal_mass",
            "nominal_density",
        ],
        hist.counts()
            .iter()
            .zip(hist.masses())
            .zip(hist.nominal_density())
            .enumerate()
            .map(|(i, ((&c, mass), dens))| vec![hist.bin_center(i), c as f64, mass, dens]),
    )?;
    write_csv(
        &ctx.out_dir,
        "highsigma_summary.csv",
        &[
            "threshold_v",
            "p_fail",
            "p_one_eye",
            "std_error",
            "ci95_half",
            "vrf",
            "ess",
            "beta",
            "gauss_mu_minus_5sigma",
            "samples",
        ],
        std::iter::once(vec![
            threshold,
            p,
            p1,
            se,
            half95,
            vrf,
            moments.ess(),
            beta_star,
            gauss_5s,
            n_is as f64,
        ]),
    )?;

    let mut table = TextTable::new(&["quantity", "value"]);
    table.row(vec![
        "exploratory mean SNM (mV)".into(),
        format!("{:.2}", mu * 1e3),
    ]);
    table.row(vec![
        "exploratory sigma (mV)".into(),
        format!("{:.3}", sigma * 1e3),
    ]);
    table.row(vec![
        "threshold: margin at 5-sigma design point (mV)".into(),
        format!("{:.2}", threshold * 1e3),
    ]);
    table.row(vec![
        "Gaussian-extrapolated mu - 5 sigma (mV)".into(),
        format!("{:.2}", gauss_5s * 1e3),
    ]);
    table.row(vec![
        "design-point radius beta".into(),
        format!("{beta_star:.1}"),
    ]);
    table.row(vec!["mismatch dimensions".into(), dims.to_string()]);
    table.row(vec!["P(eye1 < threshold)".into(), format!("{p1:.3e}")]);
    table.row(vec!["P(SNM < threshold) = 2 p1".into(), format!("{p:.3e}")]);
    table.row(vec![
        "95% CI".into(),
        format!("[{:.3e}, {:.3e}]", (p - half95).max(0.0), p + half95),
    ]);
    table.row(vec![
        "CI excludes zero".into(),
        if ci_excludes_zero { "yes" } else { "NO" }.into(),
    ]);
    table.row(vec![
        "variance reduction vs plain MC".into(),
        format!("{vrf:.1}x"),
    ]);
    table.row(vec![
        "expected plain-MC hits at this budget".into(),
        format!("{expected_plain_hits:.2e}"),
    ]);
    table.row(vec![
        "Kish ESS (raw weights)".into(),
        format!("{:.1}", moments.ess()),
    ]);
    table.row(vec![
        "tail hits under proposal".into(),
        format!("{:.0}", moments.raw_sum()),
    ]);
    table.row(vec![
        "Gaussian reference tail(5)".into(),
        format!("{gaussian_p:.3e}"),
    ]);
    table.row(vec![
        "failures (explore / IS)".into(),
        format!("{} / {}", explore_failures, is_out.failures),
    ]);
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nshape: the weighted estimator resolves a ~1e-7 failure probability with a CI\n\
         that excludes zero at a budget where plain MC expects {expected_plain_hits:.2} hits.\n\
         Calibration: the design-point margin ({:.1} mV) against the Gaussian\n\
         extrapolation mu - 5 sigma ({:.1} mV) measures the tail's Gaussianity along\n\
         the dominant failure mode; p1/tail(5) = {:.2} measures the failure-boundary\n\
         curvature. CSV: highsigma_weighted_hist.csv, highsigma_summary.csv\n",
        threshold * 1e3,
        gauss_5s * 1e3,
        p1 / gaussian_p,
    ));
    Ok(report)
}

/// Central-difference gradient of the eye-1 margin at a standardized
/// mismatch point. The half-step of 0.5 sigma trades interpolation noise
/// in the piecewise-linear butterfly curves against curvature error.
fn eye_gradient(
    eval_margins: &mut impl FnMut(&[f64]) -> Result<(f64, f64), spice::SpiceError>,
    pt: &[f64],
) -> Result<Vec<f64>, spice::SpiceError> {
    let h = 0.5;
    let mut g = vec![0.0; pt.len()];
    for (i, gi) in g.iter_mut().enumerate() {
        let mut up = pt.to_vec();
        up[i] += h;
        let mut dn = pt.to_vec();
        dn[i] -= h;
        *gi = (eval_margins(&up)?.0 - eval_margins(&dn)?.0) / (2.0 * h);
    }
    Ok(g)
}

/// The fig9-style worker bench constructor: retry non-convergent
/// construction draws with fresh forks (initial devices are overwritten by
/// the first sample anyway).
fn build_bench(
    ctx: &ExperimentContext,
    sz: SramSizing,
    mode: SnmMode,
    setup: &mut stats::Sampler,
) -> Result<SnmBench, spice::SpiceError> {
    let mut last_err = None;
    for attempt in 0..8 {
        let mut f = ctx.factory("vs", setup.fork(attempt));
        match SnmBench::new(sz, ctx.vdd(), mode, SWEEP_POINTS, &mut f) {
            Ok(b) => return Ok(b),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.expect("eight attempts made"))
}
