//! Fig. 4 — Ion / log10(Ioff) bivariate scatter with 1σ/2σ/3σ confidence
//! ellipses for both models (medium device, 1000 Monte Carlo samples).

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use mosfet::{Geometry, Polarity};
use stats::ellipse::Bivariate;
use stats::Sampler;
use vscore::mc::device_metric_samples;
use vscore::sensitivity::{BsimBuilder, VsBuilder};

/// Regenerates the scatter and confidence ellipses.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(1000);
    let geom = Geometry::from_nm(600.0, 40.0);
    let polarity = Polarity::Nmos;
    let rep = &ctx.extraction.nmos;
    let mut sampler = Sampler::from_seed(ctx.seed ^ 0xf194);

    let kit_builder = BsimBuilder {
        params: ctx.extraction.kit.corner(polarity).params,
        polarity,
        geom,
    };
    let vs_builder = VsBuilder {
        params: rep.fit.params,
        polarity,
        geom,
    };
    let kit_samples = device_metric_samples(&kit_builder, &rep.truth, ctx.vdd(), n, &mut sampler);
    let vs_samples = device_metric_samples(&vs_builder, &rep.extracted, ctx.vdd(), n, &mut sampler);

    // Scatter CSV (kit points — the "1000 Monte Carlo Data" of the figure).
    write_csv(
        &ctx.out_dir,
        "fig4_scatter_kit.csv",
        &["ion_a", "log10_ioff"],
        kit_samples.iter().map(|s| vec![s.idsat, s.log10_ioff]),
    )?;
    write_csv(
        &ctx.out_dir,
        "fig4_scatter_vs.csv",
        &["ion_a", "log10_ioff"],
        vs_samples.iter().map(|s| vec![s.idsat, s.log10_ioff]),
    )?;

    let mut table = TextTable::new(&[
        "model",
        "µ(Ion) uA",
        "σ(Ion) uA",
        "µ(logIoff)",
        "σ(logIoff)",
        "corr",
    ]);
    let mut biv = Vec::new();
    for (label, samples) in [("kit", &kit_samples), ("vs", &vs_samples)] {
        let xs: Vec<f64> = samples.iter().map(|s| s.idsat).collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.log10_ioff).collect();
        let b = Bivariate::from_samples(&xs, &ys);
        // Ellipse CSVs for 1/2/3 sigma.
        for k in 1..=3 {
            let pts = b.confidence_ellipse(k as f64, 96)?;
            write_csv(
                &ctx.out_dir,
                &format!("fig4_ellipse_{label}_{k}sigma.csv"),
                &["ion_a", "log10_ioff"],
                pts.iter().map(|&(x, y)| vec![x, y]),
            )?;
        }
        table.row(vec![
            label.to_string(),
            format!("{:.2}", b.mean_x * 1e6),
            format!("{:.2}", b.var_x.sqrt() * 1e6),
            format!("{:.3}", b.mean_y),
            format!("{:.3}", b.var_y.sqrt()),
            format!("{:.3}", b.correlation()),
        ]);
        biv.push(b);
    }
    let mut report =
        format!("Fig. 4 — Ion/log10(Ioff) bivariate comparison (NMOS 600/40, {n} MC samples)\n\n");
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nellipse agreement: σ(Ion) ratio {:.3}, σ(logIoff) ratio {:.3}, corr kit {:.3} vs VS {:.3}\nCSV: fig4_scatter_*.csv, fig4_ellipse_*_{{1,2,3}}sigma.csv\n",
        (biv[1].var_x / biv[0].var_x).sqrt(),
        (biv[1].var_y / biv[0].var_y).sqrt(),
        biv[0].correlation(),
        biv[1].correlation(),
    ));
    Ok(report)
}
