//! Fig. 8 — D flip-flop setup-time distribution (250 Monte Carlo samples,
//! each requiring a binary search of transient simulations — the workload
//! where the compact VS model's speed advantage compounds).

use super::ExpResult;
use crate::report::{eng, write_csv, TextTable};
use crate::ExperimentContext;
use circuits::dff::{setup_time, DffBench, DffSizing};
use stats::kde::Kde;
use stats::Summary;

/// Transient step for the setup search (coarser than delay benches; the
/// pass/fail decision tolerates it).
const DT: f64 = 4e-12;
/// Binary-search window and resolution.
const T_MAX: f64 = 250e-12;
const RESOLUTION: f64 = 2e-12;

/// Regenerates the setup-time PDF.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let n = ctx.samples(250);
    let mut table = TextTable::new(&["model", "mean setup", "sigma", "min", "max", "fails"]);
    let mut report = format!(
        "Fig. 8 — DFF setup time, {n} MC samples, binary search to {} resolution\n\n",
        eng(RESOLUTION, "s")
    );

    for family in ["bsim", "vs"] {
        // One elaborated flip-flop session per worker. Each sample swaps a
        // fresh mismatch draw in place; the binary search then re-targets
        // only the data waveform — the same devices serve every candidate
        // setup time without a single rebuild (pre-session code had to
        // reconstruct the netlist from an identically seeded factory at
        // every probe). Sharding is deterministic: sample `i` draws from
        // the `(seed, i)` stream on every worker count.
        let out = ctx
            .runner(0xd1f_f000)
            .run_scalar(
                n,
                |_, setup| {
                    let mut f = ctx.factory(family, setup.clone());
                    Ok::<_, spice::SpiceError>(DffBench::new(
                        DffSizing::default(),
                        ctx.vdd(),
                        T_MAX,
                        &mut f,
                    ))
                },
                |bench, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    bench.resample(&mut f);
                    setup_time(bench, T_MAX, RESOLUTION, DT)
                },
            )
            .expect("bench elaboration is infallible");
        let failures = out.failures;
        let samples = out.into_values();
        let s = Summary::from_slice(&samples);
        let kde = Kde::from_sample(&samples);
        write_csv(
            &ctx.out_dir,
            &format!("fig8_setup_pdf_{family}.csv"),
            &["setup_s", "density"],
            kde.curve(120).into_iter().map(|(x, y)| vec![x, y]),
        )?;
        write_csv(
            &ctx.out_dir,
            &format!("fig8_setup_samples_{family}.csv"),
            &["setup_s"],
            samples.iter().map(|&x| vec![x]),
        )?;
        table.row(vec![
            family.to_string(),
            eng(s.mean, "s"),
            eng(s.std, "s"),
            eng(s.min, "s"),
            eng(s.max, "s"),
            failures.to_string(),
        ]);
    }
    report.push_str(&table.render());
    report.push_str(
        "\nshape: both models yield overlapping setup-time PDFs in the tens-of-ps range\n\
         (paper Fig. 8c: ~15-50 ps). Each sample costs ~20x the SPICE runs of a\n\
         combinational cell — the paper's argument for ultra-compact models.\n\
         CSV: fig8_setup_pdf_<model>.csv, fig8_setup_samples_<model>.csv\n",
    );
    Ok(report)
}
