//! Fig. 2 — relative error in σVT0 / σLeff / σWeff between per-geometry and
//! joint BPV solutions.

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use mosfet::StatParam;

/// Regenerates the per-geometry-vs-joint comparison.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let rep = &ctx.extraction.nmos;
    let joint = rep.extracted;
    let mut rows = Vec::new();
    let mut table = TextTable::new(&["width (nm)", "dVT0 (%)", "dLeff (%)", "dWeff (%)"]);
    for (meas, pg) in rep.measured.iter().zip(&rep.bpv.per_geometry) {
        let geom = meas.geom;
        let pct = |p: StatParam| {
            let j = joint.sigma(p, geom);
            if j == 0.0 {
                0.0
            } else {
                100.0 * (pg.sigma(p, geom) - j) / j
            }
        };
        let (dv, dl, dw) = (
            pct(StatParam::Vt0),
            pct(StatParam::Leff),
            pct(StatParam::Weff),
        );
        rows.push(vec![geom.w_nm(), dv, dl, dw]);
        table.row(vec![
            format!("{:.0}", geom.w_nm()),
            format!("{dv:+.2}"),
            format!("{dl:+.2}"),
            format!("{dw:+.2}"),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "fig2_individual_vs_joint.csv",
        &["width_nm", "dvt0_pct", "dleff_pct", "dweff_pct"],
        rows.clone(),
    )?;

    let max_abs = rows
        .iter()
        .flat_map(|r| r[1..].iter())
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    let mut report = String::from(
        "Fig. 2 — relative error between per-geometry and joint BPV solutions (NMOS)\n\n",
    );
    report.push_str(&table.render());
    report.push_str(&format!(
        "\nmax |difference| = {max_abs:.2}% (paper observes < 10%)\nCSV: fig2_individual_vs_joint.csv\n"
    ));
    Ok(report)
}
