//! Fig. 3 — Idsat mismatch σ/µ vs width with per-parameter contributions
//! (L = 40 nm).

use super::ExpResult;
use crate::report::{write_csv, TextTable};
use crate::ExperimentContext;
use mosfet::Geometry;
use vscore::bpv::decompose_idsat;
use vscore::sensitivity::VsBuilder;

/// Regenerates the variance decomposition across widths.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let rep = &ctx.extraction.nmos;
    let widths = [120.0, 200.0, 300.0, 450.0, 600.0, 900.0, 1200.0, 1500.0];
    let mut rows = Vec::new();
    let mut table = TextTable::new(&[
        "width (nm)",
        "sigma(Id)/Id (%)",
        "VT0 (%)",
        "Leff (%)",
        "Weff (%)",
        "mu (%)",
        "Cinv (%)",
    ]);
    for w in widths {
        let builder = VsBuilder {
            params: rep.fit.params,
            polarity: rep.polarity,
            geom: Geometry::from_nm(w, 40.0),
        };
        let (total, parts) = decompose_idsat(&builder, &rep.extracted, ctx.vdd());
        rows.push(vec![
            w,
            100.0 * total,
            100.0 * parts[0],
            100.0 * parts[1],
            100.0 * parts[2],
            100.0 * parts[3],
            100.0 * parts[4],
        ]);
        table.row(vec![
            format!("{w:.0}"),
            format!("{:.3}", 100.0 * total),
            format!("{:.3}", 100.0 * parts[0]),
            format!("{:.3}", 100.0 * parts[1]),
            format!("{:.3}", 100.0 * parts[2]),
            format!("{:.3}", 100.0 * parts[3]),
            format!("{:.3}", 100.0 * parts[4]),
        ]);
    }
    write_csv(
        &ctx.out_dir,
        "fig3_idsat_decomposition.csv",
        &[
            "width_nm",
            "total_pct",
            "vt0_pct",
            "leff_pct",
            "weff_pct",
            "mu_pct",
            "cinv_pct",
        ],
        rows.clone(),
    )?;
    let mut report = String::from(
        "Fig. 3 — Idsat mismatch and underlying parameter contributions (NMOS, L=40nm)\n\n",
    );
    report.push_str(&table.render());
    // Shape checks the paper makes visually.
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    report.push_str(&format!(
        "\nshape: total σ/µ falls from {:.2}% (W=120nm) to {:.2}% (W=1500nm); VT0 dominates at small W\nCSV: fig3_idsat_decomposition.csv\n",
        first[1], last[1]
    ));
    Ok(report)
}
