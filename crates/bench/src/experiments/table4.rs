//! Table IV — Monte Carlo runtime and model-state comparison between the
//! statistical VS model and the BSIM-like kit.
//!
//! The paper compares a Verilog-A VS implementation against BSIM4's
//! optimized C, reporting 4.2x runtime and 8.7x memory advantages. Here both
//! models run inside the *same* simulator, so the comparison isolates the
//! models themselves: evaluation cost (the VS model is ~2x fewer
//! floating-point operations and transcendentals) and per-instance state
//! (`size_of` the model structs). Absolute ratios are therefore smaller
//! than the paper's cross-runtime numbers; the *direction* (VS cheaper on
//! both axes) is the reproduced claim.

use super::ExpResult;
use crate::report::{eng, TextTable};
use crate::ExperimentContext;
use circuits::cells::InverterSizing;
use circuits::delay::{DelayBench, GateKind};
use circuits::dff::{DffBench, DffSizing};
use circuits::sram::{ReadDisturbBench, SramSizing};
use std::time::Instant;

/// Runs one family's workload through the parallel executor (one
/// persistent session per worker: elaborate once, swap devices per
/// sample); returns (elapsed wall-clock seconds, completed runs).
///
/// Both families run on the same worker count, so the VS-vs-kit runtime
/// ratio — the reproduced claim — is unaffected by the sharding.
///
/// # Errors
///
/// Propagates worker-setup (bench construction) failures; per-sample
/// failures are only counted against `completed`.
fn run_workload(
    ctx: &ExperimentContext,
    family: &str,
    cell: &str,
    n: usize,
) -> Result<(f64, usize), spice::SpiceError> {
    let t0 = Instant::now();
    let runner = ctx.runner(0x7ab4);
    let done = match cell {
        "nand2" => runner
            .run_scalar(
                n,
                |_, setup| {
                    let mut f = ctx.factory(family, setup.clone());
                    Ok::<_, spice::SpiceError>(DelayBench::fo3(
                        GateKind::Nand2,
                        InverterSizing::from_nm(300.0, 300.0, 40.0),
                        ctx.vdd(),
                        &mut f,
                    ))
                },
                |b, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    b.resample(&mut f);
                    b.measure_delay(2e-12)
                },
            )
            .map(|o| o.len()),
        "dff" => runner
            .run(
                n,
                |_, setup| {
                    let mut f = ctx.factory(family, setup.clone());
                    Ok::<_, spice::SpiceError>(DffBench::new(
                        DffSizing::default(),
                        ctx.vdd(),
                        150e-12,
                        &mut f,
                    ))
                },
                |b, sampler, _| {
                    let mut f = ctx.factory(family, sampler.clone());
                    b.resample(&mut f);
                    b.captures(4e-12)
                },
            )
            .map(|o| o.len()),
        _ => {
            // The paper's "SRAM AC": small-signal sweep of the read-
            // disturb transfer, 26 log-spaced points per sample, on the
            // batched AC path — each worker's ReadDisturbBench warm-starts
            // consecutive samples' operating points through
            // Session::ac_batch and reuses one AcWorkspace.
            let sram_freqs = spice::ac::log_sweep(1e6, 1e11, 5);
            let sz = SramSizing::default();
            runner
                .run(
                    n,
                    |_, setup| {
                        // Retry non-convergent construction draws; the
                        // first sample overwrites the devices regardless.
                        let mut last_err = None;
                        for attempt in 0..8 {
                            let mut f = ctx.factory(family, setup.fork(attempt));
                            match ReadDisturbBench::new(sz, ctx.vdd(), &mut f) {
                                Ok(b) => return Ok(b),
                                Err(e) => last_err = Some(e),
                            }
                        }
                        Err(last_err.expect("eight attempts made"))
                    },
                    |b, sampler, _| {
                        let mut f = ctx.factory(family, sampler.clone());
                        b.resample(sz, &mut f)?;
                        b.run(&sram_freqs)
                    },
                )
                .map(|o| o.len())
        }
    }?;
    Ok((t0.elapsed().as_secs_f64(), done))
}

/// Regenerates the runtime/state comparison.
pub fn run(ctx: &ExperimentContext) -> ExpResult {
    let workloads = [
        ("NAND2", "nand2", "tran", ctx.samples(2000)),
        ("DFF", "dff", "tran", ctx.samples(250)),
        ("SRAM", "sram", "AC", ctx.samples(2000)),
    ];
    let mut table = TextTable::new(&[
        "cell",
        "analysis",
        "samples",
        "VS runtime",
        "kit runtime",
        "speedup",
    ]);
    let mut report =
        String::from("Table IV — Monte Carlo runtime comparison (same simulator, both models)\n\n");
    let mut speedups = Vec::new();
    for (label, cell, analysis, n) in workloads {
        let (t_vs, _) = run_workload(ctx, "vs", cell, n)?;
        let (t_kit, _) = run_workload(ctx, "bsim", cell, n)?;
        let speedup = t_kit / t_vs;
        speedups.push(speedup);
        table.row(vec![
            label.to_string(),
            analysis.to_string(),
            n.to_string(),
            format!("{:.2}s", t_vs),
            format!("{:.2}s", t_kit),
            format!("{speedup:.2}x"),
        ]);
    }
    report.push_str(&table.render());

    // Per-instance model state (the paper's memory axis, normalized to the
    // shared simulator: only the device-model state differs).
    let vs_bytes = std::mem::size_of::<mosfet::vs::VsModel>();
    let kit_bytes = std::mem::size_of::<mosfet::bsim::BsimModel>();
    report.push_str(&format!(
        "\nper-instance model state: VS {vs_bytes} B, kit {kit_bytes} B\n\
         mean runtime advantage of the VS model: {:.2}x (paper: 4.2x across\n\
         Verilog-A-vs-C runtimes; within one runtime the model-only gap is smaller)\n",
        speedups.iter().sum::<f64>() / speedups.len() as f64
    ));
    let _ = eng(1.0, "");
    Ok(report)
}
