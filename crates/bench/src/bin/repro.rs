//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                 # every experiment, paper-scale sample counts
//! repro fig5 fig7 --fast    # selected experiments at ~8% sample counts
//! repro table2 --scale 0.5  # custom sample scale
//! repro --out results/      # output directory (default: results/)
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use vsbench::{experiments, ExperimentContext};

struct Args {
    names: Vec<String>,
    out: PathBuf,
    scale: f64,
    seed: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut names = Vec::new();
    let mut out = PathBuf::from("results");
    let mut scale = 1.0;
    let mut seed = 2013;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--fast" => scale = 0.08,
            "--scale" => {
                scale = argv
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [EXPERIMENT...] [--fast] [--scale X] [--seed N] [--out DIR]\n\
                     experiments: all, {}",
                    experiments::ALL.join(", ")
                ));
            }
            "all" => names.extend(experiments::ALL.iter().map(|s| s.to_string())),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names.extend(experiments::ALL.iter().map(|s| s.to_string()));
    }
    names.dedup();
    Ok(Args {
        names,
        out,
        scale,
        seed,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "[repro] extraction pipeline (fit + kit MC + BPV), scale {:.2} ...",
        args.scale
    );
    let t0 = Instant::now();
    let ctx = match ExperimentContext::prepare(args.out.clone(), args.scale, args.seed) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("extraction failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("[repro] extraction done in {:.1?}\n", t0.elapsed());

    let mut failed = false;
    for name in &args.names {
        let t = Instant::now();
        match experiments::run(name, &ctx) {
            Ok(report) => {
                println!(
                    "================ {name} ({:.1?}) ================",
                    t.elapsed()
                );
                println!("{report}");
                // Persist the text report next to the CSVs.
                let path = ctx.out_dir.join(format!("{name}.txt"));
                if let Err(e) = std::fs::write(&path, &report) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
            Err(e) => {
                eprintln!("[repro] {name} FAILED: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
