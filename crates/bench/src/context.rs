//! Shared experiment context: extraction products, sample budget, output
//! directory.

use std::path::PathBuf;
use vscore::mc::ParallelRunner;
use vscore::pipeline::{
    extract_statistical_vs_model, CoreError, ExtractionConfig, ExtractionReport,
};

/// Everything an experiment needs.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Extraction products (fitted VS params + extracted mismatch, both
    /// polarities, plus the kit).
    pub extraction: ExtractionReport,
    /// Directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Monte Carlo sample scale: 1.0 reproduces the paper's counts; smaller
    /// values shrink every experiment proportionally (`--fast` uses 0.08).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentContext {
    /// Runs the extraction pipeline and prepares an output directory.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn prepare(out_dir: PathBuf, scale: f64, seed: u64) -> Result<Self, CoreError> {
        let extraction = extract_statistical_vs_model(&ExtractionConfig::default())?;
        Ok(ExperimentContext {
            extraction,
            out_dir,
            scale,
            seed,
        })
    }

    /// Scales a paper sample count by the context's budget (min 20).
    pub fn samples(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(20)
    }

    /// Supply voltage used throughout.
    pub fn vdd(&self) -> f64 {
        self.extraction.config.vdd
    }

    /// A sampling factory for the statistical VS model (fitted parameters +
    /// extracted mismatch), seeded per Monte Carlo trial.
    pub fn vs_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::vs(
            self.extraction.nmos.fit.params,
            self.extraction.pmos.fit.params,
            self.extraction.nmos.extracted,
            self.extraction.pmos.extracted,
            stats::Sampler::from_seed(trial_seed),
        )
    }

    /// A sampling factory for the golden kit (nominal parameters + foundry
    /// truth mismatch), seeded per Monte Carlo trial.
    pub fn kit_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::bsim(
            self.extraction.kit.nmos.params,
            self.extraction.kit.pmos.params,
            self.extraction.nmos.truth,
            self.extraction.pmos.truth,
            stats::Sampler::from_seed(trial_seed),
        )
    }

    /// A [`ParallelRunner`] seeded from the context seed and an experiment
    /// salt. Worker count defaults to the machine's available parallelism;
    /// the `STATVS_MC_THREADS` environment variable overrides it (an
    /// invalid value is *not* silently ignored: a warning goes to stderr
    /// and the default is used). Every worker count draws the same mismatch
    /// samples; warm-started bench state can shift measured values by
    /// last-bit amounts between counts, so pin the variable when
    /// byte-stable artifacts matter.
    pub fn runner(&self, salt: u64) -> ParallelRunner {
        let runner = ParallelRunner::new(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt),
        );
        match parse_mc_threads(std::env::var("STATVS_MC_THREADS").ok().as_deref()) {
            Ok(Some(n)) => runner.workers(n),
            Ok(None) => runner,
            Err(msg) => {
                eprintln!("warning: {msg}; using machine parallelism");
                runner
            }
        }
    }

    /// A factory for either family (`"vs"` or anything else for the kit)
    /// driven by an externally derived sampler — the shape the parallel
    /// Monte Carlo sample closures need (`ParallelRunner` hands each sample
    /// its own stream).
    pub fn factory(&self, family: &str, sampler: stats::Sampler) -> vscore::mc::McFactory {
        let mut f = match family {
            "vs" => self.vs_factory(0),
            _ => self.kit_factory(0),
        };
        f.set_sampler(sampler);
        f
    }
}

/// Parses a `STATVS_MC_THREADS` override: `Ok(None)` when unset,
/// `Ok(Some(n))` for a positive integer (surrounding whitespace allowed),
/// and a human-readable `Err` for anything else — a typo like `fourr` or
/// `0` must not silently fall back to machine parallelism.
fn parse_mc_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(s) = raw else { return Ok(None) };
    match s.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "STATVS_MC_THREADS must be a positive worker count, got {s:?}"
        )),
        Ok(n) => Ok(Some(n)),
        Err(e) => Err(format!("invalid STATVS_MC_THREADS value {s:?}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::parse_mc_threads;

    #[test]
    fn thread_override_parses_positive_integers() {
        assert_eq!(parse_mc_threads(None), Ok(None));
        assert_eq!(parse_mc_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_mc_threads(Some("16")), Ok(Some(16)));
        assert_eq!(parse_mc_threads(Some("  4 ")), Ok(Some(4)));
    }

    #[test]
    fn thread_override_rejects_garbage_loudly() {
        // The PR-2 regression: "fourr" silently ran at machine parallelism.
        assert!(parse_mc_threads(Some("fourr")).is_err());
        assert!(parse_mc_threads(Some("")).is_err());
        assert!(parse_mc_threads(Some("4.0")).is_err());
        assert!(parse_mc_threads(Some("-2")).is_err());
        assert!(parse_mc_threads(Some("0")).is_err());
    }
}
