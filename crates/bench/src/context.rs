//! Shared experiment context: extraction products, sample budget, output
//! directory.

use std::path::PathBuf;
use vscore::mc::ParallelRunner;
use vscore::pipeline::{
    extract_statistical_vs_model, CoreError, ExtractionConfig, ExtractionReport,
};

/// Everything an experiment needs.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Extraction products (fitted VS params + extracted mismatch, both
    /// polarities, plus the kit).
    pub extraction: ExtractionReport,
    /// Directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Monte Carlo sample scale: 1.0 reproduces the paper's counts; smaller
    /// values shrink every experiment proportionally (`--fast` uses 0.08).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentContext {
    /// Runs the extraction pipeline and prepares an output directory.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn prepare(out_dir: PathBuf, scale: f64, seed: u64) -> Result<Self, CoreError> {
        let extraction = extract_statistical_vs_model(&ExtractionConfig::default())?;
        Ok(ExperimentContext {
            extraction,
            out_dir,
            scale,
            seed,
        })
    }

    /// Scales a paper sample count by the context's budget (min 20).
    pub fn samples(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(20)
    }

    /// Supply voltage used throughout.
    pub fn vdd(&self) -> f64 {
        self.extraction.config.vdd
    }

    /// A sampling factory for the statistical VS model (fitted parameters +
    /// extracted mismatch), seeded per Monte Carlo trial.
    pub fn vs_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::vs(
            self.extraction.nmos.fit.params,
            self.extraction.pmos.fit.params,
            self.extraction.nmos.extracted,
            self.extraction.pmos.extracted,
            stats::Sampler::from_seed(trial_seed),
        )
    }

    /// A sampling factory for the golden kit (nominal parameters + foundry
    /// truth mismatch), seeded per Monte Carlo trial.
    pub fn kit_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::bsim(
            self.extraction.kit.nmos.params,
            self.extraction.kit.pmos.params,
            self.extraction.nmos.truth,
            self.extraction.pmos.truth,
            stats::Sampler::from_seed(trial_seed),
        )
    }

    /// A [`ParallelRunner`] seeded from the context seed and an experiment
    /// salt. Worker count defaults to the machine's available parallelism;
    /// the `STATVS_MC_THREADS` environment variable overrides it. Every
    /// worker count draws the same mismatch samples; warm-started bench
    /// state can shift measured values by last-bit amounts between counts,
    /// so pin the variable when byte-stable artifacts matter.
    pub fn runner(&self, salt: u64) -> ParallelRunner {
        let runner = ParallelRunner::new(
            self.seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(salt),
        );
        match std::env::var("STATVS_MC_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            Some(n) => runner.workers(n),
            None => runner,
        }
    }

    /// A factory for either family (`"vs"` or anything else for the kit)
    /// driven by an externally derived sampler — the shape the parallel
    /// Monte Carlo sample closures need (`ParallelRunner` hands each sample
    /// its own stream).
    pub fn factory(&self, family: &str, sampler: stats::Sampler) -> vscore::mc::McFactory {
        let mut f = match family {
            "vs" => self.vs_factory(0),
            _ => self.kit_factory(0),
        };
        f.set_sampler(sampler);
        f
    }
}
