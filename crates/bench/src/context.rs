//! Shared experiment context: extraction products, sample budget, output
//! directory.

use std::path::PathBuf;
use vscore::pipeline::{
    extract_statistical_vs_model, CoreError, ExtractionConfig, ExtractionReport,
};

/// Everything an experiment needs.
#[derive(Debug)]
pub struct ExperimentContext {
    /// Extraction products (fitted VS params + extracted mismatch, both
    /// polarities, plus the kit).
    pub extraction: ExtractionReport,
    /// Directory for CSV artifacts.
    pub out_dir: PathBuf,
    /// Monte Carlo sample scale: 1.0 reproduces the paper's counts; smaller
    /// values shrink every experiment proportionally (`--fast` uses 0.08).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentContext {
    /// Runs the extraction pipeline and prepares an output directory.
    ///
    /// # Errors
    ///
    /// Propagates pipeline failures.
    pub fn prepare(out_dir: PathBuf, scale: f64, seed: u64) -> Result<Self, CoreError> {
        let extraction = extract_statistical_vs_model(&ExtractionConfig::default())?;
        Ok(ExperimentContext {
            extraction,
            out_dir,
            scale,
            seed,
        })
    }

    /// Scales a paper sample count by the context's budget (min 20).
    pub fn samples(&self, paper_count: usize) -> usize {
        ((paper_count as f64 * self.scale).round() as usize).max(20)
    }

    /// Supply voltage used throughout.
    pub fn vdd(&self) -> f64 {
        self.extraction.config.vdd
    }

    /// A sampling factory for the statistical VS model (fitted parameters +
    /// extracted mismatch), seeded per Monte Carlo trial.
    pub fn vs_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::vs(
            self.extraction.nmos.fit.params,
            self.extraction.pmos.fit.params,
            self.extraction.nmos.extracted,
            self.extraction.pmos.extracted,
            stats::Sampler::from_seed(trial_seed),
        )
    }

    /// A sampling factory for the golden kit (nominal parameters + foundry
    /// truth mismatch), seeded per Monte Carlo trial.
    pub fn kit_factory(&self, trial_seed: u64) -> vscore::mc::McFactory {
        vscore::mc::McFactory::bsim(
            self.extraction.kit.nmos.params,
            self.extraction.kit.pmos.params,
            self.extraction.nmos.truth,
            self.extraction.pmos.truth,
            stats::Sampler::from_seed(trial_seed),
        )
    }
}
