//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace is dependency-free, so the bench targets cannot use
//! criterion; this module provides the small slice of it they need:
//! warmup, batched timing until a time budget is met, and median-of-batches
//! reporting. Bench binaries are `harness = false` and call [`measure`]
//! directly from `main`.
//!
//! The per-case time budget defaults to 0.5 s and can be overridden with
//! the `STATVS_BENCH_SECONDS` environment variable (e.g. `0.05` for smoke
//! runs, `2` for stable numbers).

use std::time::Instant;

/// One benchmark case's result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Case label (e.g. "device_mc_100_samples/vs").
    pub label: String,
    /// Median seconds per iteration across batches.
    pub secs_per_iter: f64,
    /// Total iterations executed.
    pub iters: u64,
}

impl Measurement {
    /// Iterations per second (1 / secs_per_iter).
    pub fn per_sec(&self) -> f64 {
        1.0 / self.secs_per_iter
    }
}

/// The per-case wall-clock budget, s.
fn budget_secs() -> f64 {
    std::env::var("STATVS_BENCH_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5)
}

/// Times `f` in batches until the budget elapses (at least 3 batches) and
/// prints + returns the median batch rate.
pub fn measure<F: FnMut()>(label: &str, mut f: F) -> Measurement {
    // Warmup + batch sizing: grow the batch until it costs ~1/10 budget.
    let budget = budget_secs();
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed().as_secs_f64();
        if dt >= budget / 10.0 || batch >= 1 << 20 {
            break;
        }
        // Aim the next probe at ~1/8 of the budget.
        let scale = if dt > 0.0 {
            ((budget / 8.0 / dt).ceil() as u64).clamp(2, 64)
        } else {
            16
        };
        batch = batch.saturating_mul(scale);
    }

    let mut per_iter: Vec<f64> = Vec::new();
    let mut iters = 0u64;
    let t_all = Instant::now();
    while per_iter.len() < 3 || t_all.elapsed().as_secs_f64() < budget {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        per_iter.push(t0.elapsed().as_secs_f64() / batch as f64);
        iters += batch;
        if per_iter.len() >= 64 {
            break;
        }
    }
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter[per_iter.len() / 2];
    let m = Measurement {
        label: label.to_string(),
        secs_per_iter: median,
        iters,
    };
    println!(
        "{:<44} {:>12}/iter   ({:.2} iters/s, {} iters)",
        m.label,
        fmt_secs(median),
        m.per_sec(),
        m.iters
    );
    m
}

/// Pretty-prints a duration in engineering units.
fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Serializes measurements as a flat JSON object
/// `{ "<label>": {"secs_per_iter": ..., "per_sec": ...}, ... }` — the
/// format of the repo's `BENCH_*.json` perf-trajectory baselines.
pub fn to_json(measurements: &[Measurement]) -> String {
    let mut out = String::from("{\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "  \"{}\": {{ \"secs_per_iter\": {:.6e}, \"per_sec\": {:.3} }}{}\n",
            m.label,
            m.secs_per_iter,
            m.per_sec(),
            if i + 1 == measurements.len() { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    out
}

/// Writes the JSON report when the bench was invoked with `--json <path>`.
pub fn maybe_write_json(measurements: &[Measurement]) {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--json" {
            let path = args.next().expect("--json needs a path");
            std::fs::write(&path, to_json(measurements)).expect("writable json path");
            eprintln!("wrote {path}");
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        std::env::set_var("STATVS_BENCH_SECONDS", "0.01");
        let mut x = 0u64;
        let m = measure("smoke", || {
            x = x.wrapping_add(1);
        });
        assert!(m.secs_per_iter > 0.0);
        assert!(m.iters > 0);
        let json = to_json(&[m]);
        assert!(json.contains("\"smoke\""));
        assert!(json.trim_end().ends_with('}'));
    }
}
