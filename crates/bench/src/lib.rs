//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! Each experiment in [`experiments`] is a pure function from an
//! [`ExperimentContext`] (shared extraction products + output directory +
//! sample budget) to a text report, writing CSV series alongside. The
//! `repro` binary dispatches to them:
//!
//! ```text
//! cargo run --release -p vsbench --bin repro -- all
//! cargo run --release -p vsbench --bin repro -- fig5 --fast
//! ```
//!
//! | command  | paper artifact | content |
//! |----------|----------------|---------|
//! | `fig1`   | Fig. 1  | VS-vs-kit I-V overlay after nominal fit |
//! | `fig2`   | Fig. 2  | per-geometry vs joint BPV solution error |
//! | `table2` | Table II | extracted Pelgrom coefficients α1..α5 |
//! | `fig3`   | Fig. 3  | Idsat σ/µ vs width + parameter contributions |
//! | `table3` | Table III | device-level σ: VS vs golden kit |
//! | `fig4`   | Fig. 4  | Ion/Ioff scatter + confidence ellipses |
//! | `fig5`   | Fig. 5  | INV FO3 delay PDFs at 3 sizes |
//! | `fig6`   | Fig. 6  | leakage vs frequency scatter |
//! | `fig7`   | Fig. 7  | NAND2 delay PDFs + QQ at 0.9/0.7/0.55 V |
//! | `fig8`   | Fig. 8  | DFF setup-time PDF |
//! | `fig9`   | Fig. 9  | SRAM butterfly + READ/HOLD SNM PDFs + QQ |
//! | `table4` | Table IV | Monte Carlo runtime/memory, VS vs kit |
//! | `highsigma` | extension | 5σ SRAM SNM failure probability via two-phase importance sampling |
//!
//! Circuit-level Monte Carlo loops shard across cores through
//! `vscore::mc::ParallelRunner` (override the worker count with
//! `STATVS_MC_THREADS`). Every sample draws the same mismatch devices for
//! any worker count; measured values can drift in the last float bits
//! across worker counts because the benches keep their warm-started Newton
//! state between samples (see the `vscore::mc::parallel` module docs for
//! the exact scope of the bit-exactness guarantee). `ARCHITECTURE.md` at
//! the repo root diagrams the data flow.

pub mod context;
pub mod experiments;
pub mod microbench;
pub mod report;

pub use context::ExperimentContext;
