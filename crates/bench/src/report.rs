//! Output helpers: CSV writers and fixed-width text tables.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Writes a CSV file with a header row into the output directory.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut s = String::new();
    s.push_str(&header.join(","));
    s.push('\n');
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v:.8e}")).collect();
        s.push_str(&line.join(","));
        s.push('\n');
    }
    fs::write(&path, s)?;
    Ok(path)
}

/// A minimal fixed-width text table builder for terminal reports.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a pre-formatted row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(line, "{cell:<w$}  ");
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * ncols));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a number in engineering style with a unit.
pub fn eng(v: f64, unit: &str) -> String {
    let a = v.abs();
    let (scale, prefix) = if a == 0.0 {
        (1.0, "")
    } else if a >= 1e12 {
        (1e12, "T")
    } else if a >= 1e9 {
        (1e9, "G")
    } else if a >= 1e6 {
        (1e6, "M")
    } else if a >= 1e3 {
        (1e3, "k")
    } else if a >= 1.0 {
        (1.0, "")
    } else if a >= 1e-3 {
        (1e-3, "m")
    } else if a >= 1e-6 {
        (1e-6, "u")
    } else if a >= 1e-9 {
        (1e-9, "n")
    } else if a >= 1e-12 {
        (1e-12, "p")
    } else {
        (1e-15, "f")
    };
    format!("{:.3}{}{}", v / scale, prefix, unit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["b".into(), "22.5".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("alpha"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(1.5e-12, "s"), "1.500ps");
        assert_eq!(eng(3.2e9, "Hz"), "3.200GHz");
        assert_eq!(eng(0.0, "A"), "0.000A");
        assert_eq!(eng(2.5e-5, "A"), "25.000uA");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("vsbench_test_csv");
        let p = write_csv(&dir, "t.csv", &["a", "b"], vec![vec![1.0, 2.0]]).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert!(content.starts_with("a,b\n"));
        assert!(content.contains("1.00000000e0"));
    }
}
